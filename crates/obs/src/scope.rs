//! Instrumentation scopes: route the same `time`/`add`/`observe`/event
//! calls either to the process-global recorder (the batch CLI) or to a
//! private per-job registry (the serve daemon).
//!
//! The daemon's core isolation rule is that concurrent jobs must not write
//! each other's metrics or interleave on the global trace stream. Rather
//! than parameterizing the pipeline over two recorder types, stages take a
//! [`Scope`]:
//!
//! - [`Scope::global`] behaves exactly like the pre-existing free-function
//!   veneer — spans nest on the global stack, events hit stderr/trace — so
//!   the batch path stays byte-identical;
//! - [`Scope::job`] accumulates everything into a job-private
//!   [`LocalRecorder`] behind a mutex (span timings, counters, histograms;
//!   events become `job.events.<level>` counters and stay off the shared
//!   streams). [`Scope::finish`] closes the job's root span and yields the
//!   job's own [`MetricsSnapshot`], which the daemon renders into the
//!   per-job run report and merges into the global registry at job end —
//!   the one sanctioned join point, mirroring what `absorb` does for
//!   worker threads.
//!
//! The job mutex is held only for the duration of a metric write, never
//! across user closures, so pipeline workers absorbing their
//! `LocalRecorder`s mid-`time` cannot deadlock.

use crate::event::Field;
use crate::level::Level;
use crate::metrics::{MetricsSnapshot, LATENCY_US_BOUNDS};
use crate::recorder::LocalRecorder;
use std::sync::Mutex;
use std::time::Instant;

enum ScopeInner {
    Global,
    Job(Mutex<JobState>),
}

struct JobState {
    recorder: LocalRecorder,
    root: String,
    started: Instant,
}

/// Where instrumentation lands: the process-global recorder or a private
/// per-job registry. See the module docs.
pub struct Scope {
    inner: ScopeInner,
}

impl std::fmt::Debug for Scope {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match &self.inner {
            ScopeInner::Global => f.write_str("Scope::Global"),
            ScopeInner::Job(_) => f.write_str("Scope::Job"),
        }
    }
}

fn lock_job(job: &Mutex<JobState>) -> std::sync::MutexGuard<'_, JobState> {
    match job.lock() {
        Ok(guard) => guard,
        Err(poisoned) => poisoned.into_inner(),
    }
}

impl Scope {
    /// The global scope: every call forwards to the process-global
    /// recorder, exactly like the free functions in [`crate`].
    pub fn global() -> Scope {
        Scope {
            inner: ScopeInner::Global,
        }
    }

    /// A job scope rooted at span `root` (e.g. `serve.job`). The root span
    /// is recorded when [`finish`](Scope::finish) is called.
    pub fn job(root: impl Into<String>) -> Scope {
        Scope {
            inner: ScopeInner::Job(Mutex::new(JobState {
                recorder: LocalRecorder::new(),
                root: root.into(),
                started: Instant::now(),
            })),
        }
    }

    /// Whether this is the global scope.
    pub fn is_global(&self) -> bool {
        matches!(self.inner, ScopeInner::Global)
    }

    /// Time `f` as a completed span named `name`. Global: an RAII guard on
    /// the global recorder (trace record, span stack). Job: recorded into
    /// the job registry after `f` returns — the job lock is *not* held
    /// while `f` runs.
    pub fn time<R>(&self, name: &str, f: impl FnOnce() -> R) -> R {
        match &self.inner {
            ScopeInner::Global => {
                // lint:allow(metric-discipline): forwards the caller's name
                // (a static literal at the call site) into the owned-String
                // span API; no name is constructed here.
                let _span = crate::span(name.to_string());
                f()
            }
            ScopeInner::Job(job) => {
                let start = Instant::now();
                let out = f();
                let dur_us = elapsed_us(start);
                lock_job(job).recorder.span(name, dur_us);
                out
            }
        }
    }

    /// Add `n` to counter `name`.
    pub fn add(&self, name: &str, n: u64) {
        match &self.inner {
            ScopeInner::Global => crate::add(name, n),
            ScopeInner::Job(job) => lock_job(job).recorder.add(name, n),
        }
    }

    /// Record `value` into histogram `name` over `bounds`.
    pub fn observe(&self, name: &str, bounds: &[u64], value: u64) {
        match &self.inner {
            ScopeInner::Global => crate::observe(name, bounds, value),
            ScopeInner::Job(job) => lock_job(job).recorder.observe(name, bounds, value),
        }
    }

    /// Move gauge `name` by `delta`. Job scopes must keep `add`/`sub`
    /// pairs balanced: the job registry merges into the global one at job
    /// end by *summing* net movements (see [`crate::metrics::Gauge`]).
    pub fn gauge_add(&self, name: &str, delta: i64) {
        match &self.inner {
            ScopeInner::Global => crate::gauge_add(name, delta),
            ScopeInner::Job(job) => lock_job(job).recorder.gauge_add(name, delta),
        }
    }

    /// Move gauge `name` down by `delta`.
    pub fn gauge_sub(&self, name: &str, delta: i64) {
        match &self.inner {
            ScopeInner::Global => crate::gauge_sub(name, delta),
            ScopeInner::Job(job) => lock_job(job).recorder.gauge_sub(name, delta),
        }
    }

    /// Add `n` to the sliding-window counter `name`.
    pub fn window_add(&self, name: &str, n: u64) {
        match &self.inner {
            ScopeInner::Global => crate::window_add(name, n),
            ScopeInner::Job(job) => lock_job(job).recorder.window_add(name, n),
        }
    }

    /// Record `value` into the sliding-window histogram `name`.
    pub fn window_observe(&self, name: &str, bounds: &[u64], value: u64) {
        match &self.inner {
            ScopeInner::Global => crate::window_observe(name, bounds, value),
            ScopeInner::Job(job) => lock_job(job).recorder.window_observe(name, bounds, value),
        }
    }

    /// Emit a structured event. Global: stderr/trace via the global
    /// recorder. Job: jobs stay off the shared streams — the event is
    /// tallied as a `job.events.<level>` counter in the job registry.
    pub fn event(&self, level: Level, msg: &str, fields: &[Field]) {
        match &self.inner {
            ScopeInner::Global => crate::global().event(level, msg, fields),
            ScopeInner::Job(job) => {
                let name = format!("job.events.{}", level.label());
                lock_job(job).recorder.add(&name, 1);
            }
        }
    }

    /// [`event`](Scope::event) at `debug`.
    pub fn debug(&self, msg: &str, fields: &[Field]) {
        self.event(Level::Debug, msg, fields);
    }

    /// [`event`](Scope::event) at `warn`.
    pub fn warn(&self, msg: &str, fields: &[Field]) {
        self.event(Level::Warn, msg, fields);
    }

    /// Merge a worker thread's recorder into this scope — the join-time
    /// `absorb` for both flavors: global scopes merge into the process
    /// registry, job scopes into the job's private one.
    pub fn absorb(&self, local: LocalRecorder) {
        match &self.inner {
            ScopeInner::Global => crate::absorb(local),
            ScopeInner::Job(job) => lock_job(job).recorder.absorb(local),
        }
    }

    /// Close the scope. Job: records the root span (wall time since
    /// [`Scope::job`]) and returns the job's private snapshot for the run
    /// report / global merge. Global: nothing to collect — `None`.
    pub fn finish(self) -> Option<MetricsSnapshot> {
        match self.inner {
            ScopeInner::Global => None,
            ScopeInner::Job(job) => {
                let mut state = match job.into_inner() {
                    Ok(state) => state,
                    Err(poisoned) => poisoned.into_inner(),
                };
                let uptime_us = elapsed_us(state.started);
                let root = state.root.clone();
                state.recorder.span(&root, uptime_us);
                Some(MetricsSnapshot {
                    metrics: state.recorder.into_metrics(),
                    uptime_us,
                })
            }
        }
    }
}

fn elapsed_us(since: Instant) -> u64 {
    u64::try_from(since.elapsed().as_micros()).unwrap_or(u64::MAX)
}

// Keep the latency-bound constant referenced so span recording here and in
// the recorder stay visibly coupled.
const _: &[u64] = &LATENCY_US_BOUNDS;

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::field;

    #[test]
    fn job_scope_keeps_metrics_private_and_snapshots_root_span() {
        let scope = Scope::job("serve.job");
        assert!(!scope.is_global());
        let out = scope.time("stage.decode", || {
            std::thread::sleep(std::time::Duration::from_millis(1));
            7
        });
        assert_eq!(out, 7);
        scope.add("units", 3);
        scope.observe("bytes", &crate::metrics::BYTE_BOUNDS, 100);
        scope.warn("unit dropped", &[field("reason", "test")]);

        let before = crate::snapshot().metrics.counter("units");
        let snap = scope.finish().expect("job scope yields a snapshot");
        // Nothing leaked into the global registry.
        assert_eq!(crate::snapshot().metrics.counter("units"), before);
        assert_eq!(snap.metrics.counter("units"), 3);
        assert_eq!(snap.metrics.counter("job.events.warn"), 1);
        let root = snap
            .metrics
            .spans()
            .find(|(n, _)| *n == "serve.job")
            .map(|(_, s)| *s)
            .expect("root span recorded");
        assert_eq!(root.count, 1);
        let stage = snap
            .metrics
            .spans()
            .find(|(n, _)| *n == "stage.decode")
            .map(|(_, s)| *s)
            .expect("stage span recorded");
        assert!(root.total_us >= stage.total_us, "{root:?} vs {stage:?}");
    }

    #[test]
    fn job_scope_gauges_and_windows_stay_private() {
        let scope = Scope::job("serve.job");
        scope.gauge_add("obs.scope.test.gauge", 2);
        scope.gauge_sub("obs.scope.test.gauge", 2);
        scope.window_add("obs.scope.test.window", 4);
        assert!(crate::snapshot()
            .metrics
            .gauge("obs.scope.test.gauge")
            .is_none());
        let snap = scope.finish().expect("snapshot");
        let gauge = snap
            .metrics
            .gauge("obs.scope.test.gauge")
            .expect("job-private gauge");
        assert_eq!(gauge.value(), 0);
        assert_eq!(gauge.max(), Some(2));
        assert!(snap.metrics.window("obs.scope.test.window").is_some());
    }

    #[test]
    fn job_scope_absorbs_worker_recorders() {
        let scope = Scope::job("serve.job");
        let mut worker = LocalRecorder::new();
        worker.add("worker.items", 5);
        scope.absorb(worker);
        let snap = scope.finish().expect("snapshot");
        assert_eq!(snap.metrics.counter("worker.items"), 5);
    }

    #[test]
    fn global_scope_forwards_and_finishes_to_none() {
        let scope = Scope::global();
        assert!(scope.is_global());
        scope.add("obs.scope.test.counter", 2);
        scope.time("obs.scope.test.span", || ());
        assert_eq!(
            crate::snapshot().metrics.counter("obs.scope.test.counter"),
            2
        );
        assert!(crate::snapshot()
            .metrics
            .spans()
            .any(|(n, _)| n == "obs.scope.test.span"));
        assert!(scope.finish().is_none());
    }
}
