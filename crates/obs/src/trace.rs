//! Trace analysis: parse a `--trace-out` JSONL file back into typed
//! records, reconstruct the span tree from parent links, attribute
//! self-time vs. child-time, and render a text flame / critical-path
//! report.
//!
//! This is the consumption half of the observability stack — the emission
//! half (recorder, sinks) writes one JSON object per line with a monotone
//! `seq`; this module reads that stream back *salvage-style*: malformed
//! lines are skipped and counted instead of failing the whole analysis,
//! matching the pipeline's own degradation philosophy.
//!
//! ## Span-tree reconstruction rules
//!
//! Span records are emitted at *close* time and carry the immediate parent
//! **name** (the recorder's stack is single-threaded, so the name is
//! unambiguous at emission). Reconstruction therefore aggregates records
//! into `(parent, name)` edges — every instance of `loader.unit` under
//! `loader.dir` folds into one node with a call count — and grows the tree
//! from the roots:
//!
//! - an edge with a `null` parent is a root;
//! - an edge whose parent never appears as a span record itself (a span
//!   left open when the trace ended) is *promoted* to a root, so truncated
//!   traces still render;
//! - a name reached twice along one path (a recursion cycle in the name
//!   graph) is not descended into again.
//!
//! **Self-time** of a node is its total wall time minus the total of its
//! children (saturating at zero). By construction the root's total equals
//! the sum of all self-times in its subtree — the *untracked remainder*
//! (root total minus the sum of strict-descendant self-times) is exactly
//! the root's own self-time, and the report prints that identity.

use crate::level::Level;
use crate::res::SpanResources;
use diffaudit_json::Json;
use diffaudit_util::fmt::{format_bytes, format_bytes_signed, format_duration_us};
use std::collections::{BTreeMap, BTreeSet};

/// One `kind:"event"` record from a trace file.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceEvent {
    /// Monotone sequence number.
    pub seq: u64,
    /// Microseconds since recorder start.
    pub t_us: u64,
    /// Severity.
    pub level: Level,
    /// Message text.
    pub msg: String,
}

/// One `kind:"span"` record (emitted when the span closed).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceSpan {
    /// Monotone sequence number.
    pub seq: u64,
    /// Close time, microseconds since recorder start.
    pub t_us: u64,
    /// Span name.
    pub name: String,
    /// Immediate parent span name (`None` for a root span).
    pub parent: Option<String>,
    /// Wall time, microseconds.
    pub dur_us: u64,
    /// Resource attribution (`None` when the trace was recorded without
    /// profiling — the pre-resource record shape).
    pub res: Option<SpanResources>,
}

/// A parsed trace record.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TraceRecord {
    /// A structured event.
    Event(TraceEvent),
    /// A completed span.
    Span(TraceSpan),
}

/// A parsed trace file: the usable records plus a degradation tally.
#[derive(Debug, Clone, Default)]
pub struct TraceLog {
    /// Records in file order.
    pub records: Vec<TraceRecord>,
    /// Non-blank lines seen.
    pub lines: usize,
    /// Malformed lines skipped (bad JSON, wrong shape, missing fields).
    pub skipped: usize,
}

impl TraceLog {
    /// Parse JSONL text, skipping-and-counting malformed lines.
    pub fn parse(text: &str) -> TraceLog {
        let mut log = TraceLog::default();
        for line in text.lines() {
            if line.trim().is_empty() {
                continue;
            }
            log.lines += 1;
            match parse_line(line) {
                Some(record) => log.records.push(record),
                None => log.skipped += 1,
            }
        }
        log
    }

    /// The completed spans, in file (close) order.
    pub fn spans(&self) -> impl Iterator<Item = &TraceSpan> + '_ {
        self.records.iter().filter_map(|r| match r {
            TraceRecord::Span(s) => Some(s),
            TraceRecord::Event(_) => None,
        })
    }

    /// The events, in file order.
    pub fn events(&self) -> impl Iterator<Item = &TraceEvent> + '_ {
        self.records.iter().filter_map(|r| match r {
            TraceRecord::Event(e) => Some(e),
            TraceRecord::Span(_) => None,
        })
    }

    /// Timestamp of the last record — the trace's wall-clock extent.
    pub fn wall_us(&self) -> u64 {
        self.records
            .iter()
            .map(|r| match r {
                TraceRecord::Event(e) => e.t_us,
                TraceRecord::Span(s) => s.t_us,
            })
            .max()
            .unwrap_or(0)
    }
}

fn parse_line(line: &str) -> Option<TraceRecord> {
    let json = diffaudit_json::parse(line).ok()?;
    let seq = u64::try_from(json.get("seq")?.as_i64()?).ok()?;
    let t_us = u64::try_from(json.get("tUs")?.as_i64()?).ok()?;
    match json.get("kind")?.as_str()? {
        "event" => Some(TraceRecord::Event(TraceEvent {
            seq,
            t_us,
            level: Level::parse(json.get("level")?.as_str()?)?,
            msg: json.get("msg")?.as_str()?.to_string(),
        })),
        "span" => {
            let parent = match json.get("parent")? {
                Json::Null => None,
                other => Some(other.as_str()?.to_string()),
            };
            // Resource keys are optional extensions: a span carries them
            // all (profiled trace) or none (plain trace).
            let as_u64 = |key: &str| -> Option<u64> {
                json.get(key)
                    .and_then(Json::as_i64)
                    .and_then(|v| u64::try_from(v).ok())
            };
            let res = as_u64("rssPeakB").map(|peak_rss_bytes| SpanResources {
                peak_rss_bytes,
                rss_delta_bytes: json.get("rssDeltaB").and_then(Json::as_i64).unwrap_or(0),
                cpu_us: as_u64("cpuUs").unwrap_or(0),
                bytes_in: as_u64("bytesIn").unwrap_or(0),
            });
            Some(TraceRecord::Span(TraceSpan {
                seq,
                t_us,
                name: json.get("name")?.as_str()?.to_string(),
                parent,
                dur_us: u64::try_from(json.get("durUs")?.as_i64()?).ok()?,
                res,
            }))
        }
        _ => None,
    }
}

/// One aggregated node of the reconstructed span tree.
#[derive(Debug, Clone)]
pub struct SpanNode {
    /// Span name.
    pub name: String,
    /// Completed instances folded into this node.
    pub count: u64,
    /// Total wall time across instances, microseconds.
    pub total_us: u64,
    /// Total minus children's totals (saturating) — time spent in this
    /// node's own code.
    pub self_us: u64,
    /// Instances that carried resource attribution.
    pub res_count: u64,
    /// Highest peak RSS across attributed instances, bytes.
    pub peak_rss_bytes: u64,
    /// Net RSS movement across attributed instances, bytes (signed).
    pub rss_delta_bytes: i64,
    /// Total CPU time across attributed instances, microseconds.
    pub cpu_us: u64,
    /// Total logical bytes processed across attributed instances.
    pub bytes_in: u64,
    /// Child nodes, heaviest (by total) first.
    pub children: Vec<SpanNode>,
}

impl SpanNode {
    fn subtree_self_us(&self) -> u64 {
        self.self_us
            + self
                .children
                .iter()
                .map(SpanNode::subtree_self_us)
                .sum::<u64>()
    }

    /// CPU time minus children's CPU (saturating) — the node's own burn.
    fn self_cpu_us(&self) -> u64 {
        self.cpu_us
            .saturating_sub(self.children.iter().map(|c| c.cpu_us).sum())
    }

    fn subtree_self_cpu_us(&self) -> u64 {
        self.self_cpu_us()
            + self
                .children
                .iter()
                .map(SpanNode::subtree_self_cpu_us)
                .sum::<u64>()
    }

    /// RSS delta minus children's deltas — the node's own net movement
    /// (signed arithmetic; no saturation needed, stages can release).
    fn self_rss_delta_bytes(&self) -> i64 {
        self.rss_delta_bytes - self.children.iter().map(|c| c.rss_delta_bytes).sum::<i64>()
    }

    fn subtree_self_rss_delta_bytes(&self) -> i64 {
        self.self_rss_delta_bytes()
            + self
                .children
                .iter()
                .map(SpanNode::subtree_self_rss_delta_bytes)
                .sum::<i64>()
    }
}

/// Per-edge fold of span records: call counts, wall time, and the
/// resource attributions of profiled instances.
#[derive(Debug, Clone, Copy, Default)]
struct EdgeAgg {
    count: u64,
    total_us: u64,
    res_count: u64,
    peak_rss_bytes: u64,
    rss_delta_bytes: i64,
    cpu_us: u64,
    bytes_in: u64,
}

/// The reconstructed span forest plus trace-level tallies.
#[derive(Debug, Clone)]
pub struct SpanTree {
    /// Root nodes, heaviest first. Spans whose parent never closed are
    /// promoted to roots (truncated-trace tolerance).
    pub roots: Vec<SpanNode>,
    /// Wall-clock extent of the trace (last record timestamp).
    pub wall_us: u64,
    /// Span records consumed.
    pub span_records: usize,
    /// Event records seen.
    pub event_records: usize,
    /// Malformed lines skipped during parsing.
    pub skipped: usize,
}

impl SpanTree {
    /// Reconstruct the tree from a parsed log.
    pub fn build(log: &TraceLog) -> SpanTree {
        // Aggregate span records into (parent, name) edges.
        let mut edges: BTreeMap<(Option<String>, String), EdgeAgg> = BTreeMap::new();
        let mut closed_names: BTreeSet<&str> = BTreeSet::new();
        for span in log.spans() {
            let entry = edges
                .entry((span.parent.clone(), span.name.clone()))
                .or_default();
            entry.count += 1;
            entry.total_us = entry.total_us.saturating_add(span.dur_us);
            if let Some(res) = &span.res {
                entry.res_count += 1;
                entry.peak_rss_bytes = entry.peak_rss_bytes.max(res.peak_rss_bytes);
                entry.rss_delta_bytes = entry.rss_delta_bytes.saturating_add(res.rss_delta_bytes);
                entry.cpu_us = entry.cpu_us.saturating_add(res.cpu_us);
                entry.bytes_in = entry.bytes_in.saturating_add(res.bytes_in);
            }
            closed_names.insert(&span.name);
        }
        // Roots: null-parent edges plus edges orphaned by an unclosed parent.
        let root_keys: Vec<(Option<String>, String)> = edges
            .keys()
            .filter(|(parent, _)| match parent {
                None => true,
                Some(p) => !closed_names.contains(p.as_str()),
            })
            .cloned()
            .collect();
        let mut roots: Vec<SpanNode> = root_keys
            .iter()
            .map(|key| {
                let mut path = vec![key.1.clone()];
                grow(&edges, key, &mut path)
            })
            .collect();
        roots.sort_by(|a, b| b.total_us.cmp(&a.total_us).then(a.name.cmp(&b.name)));
        SpanTree {
            roots,
            wall_us: log.wall_us(),
            span_records: log.spans().count(),
            event_records: log.events().count(),
            skipped: log.skipped,
        }
    }

    /// Every node, preorder (roots first, each followed by its subtree).
    pub fn nodes(&self) -> Vec<&SpanNode> {
        let mut out = Vec::new();
        let mut stack: Vec<&SpanNode> = self.roots.iter().rev().collect();
        while let Some(node) = stack.pop() {
            out.push(node);
            for child in node.children.iter().rev() {
                stack.push(child);
            }
        }
        out
    }

    /// Total wall time across the roots.
    pub fn root_total_us(&self) -> u64 {
        self.roots.iter().map(|r| r.total_us).sum()
    }

    /// The heaviest root-to-leaf chain: starting from the heaviest root,
    /// follow the heaviest child at every level.
    pub fn critical_path(&self) -> Vec<&SpanNode> {
        let mut path = Vec::new();
        let mut cursor = self.roots.first();
        while let Some(node) = cursor {
            path.push(node);
            cursor = node.children.first();
        }
        path
    }
}

fn grow(
    edges: &BTreeMap<(Option<String>, String), EdgeAgg>,
    key: &(Option<String>, String),
    path: &mut Vec<String>,
) -> SpanNode {
    let agg = edges.get(key).copied().unwrap_or_default();
    let name = key.1.clone();
    let mut children: Vec<SpanNode> = edges
        .keys()
        .filter(|(parent, child)| {
            parent.as_deref() == Some(name.as_str()) && !path.iter().any(|p| p == child)
        })
        .cloned()
        .collect::<Vec<_>>()
        .iter()
        .map(|child_key| {
            path.push(child_key.1.clone());
            let node = grow(edges, child_key, path);
            path.pop();
            node
        })
        .collect();
    children.sort_by(|a, b| b.total_us.cmp(&a.total_us).then(a.name.cmp(&b.name)));
    let child_total: u64 = children.iter().map(|c| c.total_us).sum();
    SpanNode {
        self_us: agg.total_us.saturating_sub(child_total),
        name,
        count: agg.count,
        total_us: agg.total_us,
        res_count: agg.res_count,
        peak_rss_bytes: agg.peak_rss_bytes,
        rss_delta_bytes: agg.rss_delta_bytes,
        cpu_us: agg.cpu_us,
        bytes_in: agg.bytes_in,
        children,
    }
}

/// Rendering options for [`render_trace_report`].
#[derive(Debug, Clone)]
pub struct TraceReportOptions {
    /// Hotspot list length.
    pub top: usize,
}

impl Default for TraceReportOptions {
    fn default() -> Self {
        TraceReportOptions { top: 10 }
    }
}

/// Render the flame/tree report: header tallies, the indented span tree
/// (total / self / calls / share of root), the per-root self-time
/// conservation line, the critical path, and the top-K self-time hotspots.
pub fn render_trace_report(tree: &SpanTree, options: &TraceReportOptions) -> String {
    let mut out = String::new();
    out.push_str("== trace report ==\n");
    out.push_str(&format!(
        "records: {} spans, {} events",
        tree.span_records, tree.event_records
    ));
    if tree.skipped > 0 {
        out.push_str(&format!(" ({} malformed lines skipped)", tree.skipped));
    }
    out.push('\n');
    out.push_str(&format!(
        "wall clock (last record): {}\n",
        format_duration_us(tree.wall_us)
    ));

    if tree.roots.is_empty() {
        out.push_str("\nno completed spans in trace\n");
        return out;
    }

    let root_total = tree.root_total_us().max(1);
    out.push_str("\nspan tree (total / self / calls / % of roots):\n");
    for root in &tree.roots {
        render_node(&mut out, root, 0, root_total);
    }

    // Conservation: root total = Σ descendant self-times + untracked
    // remainder (the root's own self-time).
    for root in &tree.roots {
        let descendant_self = root.subtree_self_us() - root.self_us;
        let untracked = root.total_us.saturating_sub(descendant_self);
        out.push_str(&format!(
            "root {}: total {} = stage self {} + untracked {}\n",
            root.name,
            format_duration_us(root.total_us),
            format_duration_us(descendant_self),
            format_duration_us(untracked),
        ));
    }

    let path = tree.critical_path();
    if !path.is_empty() {
        out.push_str("\ncritical path:\n  ");
        out.push_str(
            &path
                .iter()
                .map(|n| format!("{} {}", n.name, format_duration_us(n.total_us)))
                .collect::<Vec<_>>()
                .join(" -> "),
        );
        out.push('\n');
    }

    let mut hotspots: Vec<&SpanNode> = tree.nodes();
    hotspots.sort_by(|a, b| b.self_us.cmp(&a.self_us).then(a.name.cmp(&b.name)));
    out.push_str(&format!("\nhotspots (top {} by self time):\n", options.top));
    for (rank, node) in hotspots.iter().take(options.top).enumerate() {
        out.push_str(&format!(
            "  {:>2}. {:<32} {:>10}  {:>5.1}%\n",
            rank + 1,
            node.name,
            format_duration_us(node.self_us),
            node.self_us as f64 / root_total as f64 * 100.0,
        ));
    }
    out
}

fn format_throughput(bytes_in: u64, dur_us: u64) -> String {
    if bytes_in == 0 || dur_us == 0 {
        return "-".to_string();
    }
    let rate = bytes_in as f64 / (dur_us as f64 / 1_000_000.0);
    format!("{}/s", format_bytes(rate as u64))
}

/// Render the `--resources` view of a trace: the same span tree, but with
/// peak RSS, RSS delta, CPU time, bytes processed, and derived throughput
/// per stage, plus CPU and RSS conservation lines mirroring the wall-time
/// report's. A trace recorded without profiling (or on a platform without
/// `/proc`) renders a placeholder instead of a table of zeros.
pub fn render_resource_report(tree: &SpanTree, _options: &TraceReportOptions) -> String {
    let mut out = String::new();
    out.push_str("== resource report ==\n");
    out.push_str(&format!(
        "records: {} spans, {} events",
        tree.span_records, tree.event_records
    ));
    if tree.skipped > 0 {
        out.push_str(&format!(" ({} malformed lines skipped)", tree.skipped));
    }
    out.push('\n');
    out.push_str(&format!(
        "wall clock (last record): {}\n",
        format_duration_us(tree.wall_us)
    ));

    if tree.roots.is_empty() {
        out.push_str("\nno completed spans in trace\n");
        return out;
    }
    if tree.nodes().iter().all(|n| n.res_count == 0) {
        out.push_str("\nresources unavailable (trace carries no resource samples)\n");
        return out;
    }

    out.push_str("\nstage resources (peak RSS / ΔRSS / CPU / bytes in / throughput):\n");
    for root in &tree.roots {
        render_resource_node(&mut out, root, 0);
    }

    // Conservation, twice: CPU telescopes exactly like wall time (children
    // burn inside their parent), and RSS deltas telescope in signed
    // arithmetic (a stage's net movement contains its children's).
    for root in &tree.roots {
        if root.res_count == 0 {
            continue;
        }
        let descendant_cpu = root.subtree_self_cpu_us() - root.self_cpu_us();
        out.push_str(&format!(
            "root {}: cpu {} = stage self {} + untracked {}\n",
            root.name,
            format_duration_us(root.cpu_us),
            format_duration_us(descendant_cpu),
            format_duration_us(root.cpu_us.saturating_sub(descendant_cpu)),
        ));
        let descendant_rss = root.subtree_self_rss_delta_bytes() - root.self_rss_delta_bytes();
        out.push_str(&format!(
            "root {}: rss {} = stage {} + untracked {}\n",
            root.name,
            format_bytes_signed(root.rss_delta_bytes),
            format_bytes_signed(descendant_rss),
            format_bytes_signed(root.rss_delta_bytes - descendant_rss),
        ));
    }
    out
}

fn render_resource_node(out: &mut String, node: &SpanNode, depth: usize) {
    let indent = "  ".repeat(depth + 1);
    let label = format!("{indent}{}", node.name);
    if node.res_count == 0 {
        out.push_str(&format!(
            "{label:<40} {:>10} {:>10} {:>10} {:>10} {:>12}\n",
            "-", "-", "-", "-", "-"
        ));
    } else {
        out.push_str(&format!(
            "{label:<40} {:>10} {:>10} {:>10} {:>10} {:>12}\n",
            format_bytes(node.peak_rss_bytes),
            format_bytes_signed(node.rss_delta_bytes),
            format_duration_us(node.cpu_us),
            format_bytes(node.bytes_in),
            format_throughput(node.bytes_in, node.total_us),
        ));
    }
    for child in &node.children {
        render_resource_node(out, child, depth + 1);
    }
}

fn render_node(out: &mut String, node: &SpanNode, depth: usize, root_total: u64) {
    let indent = "  ".repeat(depth + 1);
    let label = format!("{indent}{}", node.name);
    out.push_str(&format!(
        "{label:<40} {:>10} {:>10} {:>7}  {:>5.1}%\n",
        format_duration_us(node.total_us),
        format_duration_us(node.self_us),
        node.count,
        node.total_us as f64 / root_total as f64 * 100.0,
    ));
    for child in &node.children {
        render_node(out, child, depth + 1, root_total);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sink::{event_record, span_record};

    fn line(json: &Json) -> String {
        json.to_string()
    }

    /// A synthetic well-nested trace:
    /// audit(1000) { load(300) { unit(100) x2 } render(200) } + events.
    fn sample_trace() -> String {
        let mut text = String::new();
        text.push_str(&line(&event_record(1, 5, Level::Info, "start", &[])));
        text.push('\n');
        text.push_str(&line(&span_record(2, 110, "unit", Some("load"), 100)));
        text.push('\n');
        text.push_str(&line(&span_record(3, 220, "unit", Some("load"), 100)));
        text.push('\n');
        text.push_str(&line(&span_record(4, 320, "load", Some("audit"), 300)));
        text.push('\n');
        text.push_str(&line(&span_record(5, 540, "render", Some("audit"), 200)));
        text.push('\n');
        text.push_str(&line(&span_record(6, 1020, "audit", None, 1000)));
        text.push('\n');
        text
    }

    #[test]
    fn parse_round_trips_records() {
        let log = TraceLog::parse(&sample_trace());
        assert_eq!(log.lines, 6);
        assert_eq!(log.skipped, 0);
        assert_eq!(log.events().count(), 1);
        assert_eq!(log.spans().count(), 5);
        assert_eq!(log.wall_us(), 1020);
    }

    #[test]
    fn malformed_lines_are_skipped_and_counted() {
        let mut text = sample_trace();
        text.push_str("this is not json\n");
        text.push_str("{\"kind\":\"span\"}\n"); // missing fields
        text.push_str("{\"seq\":9,\"tUs\":1,\"kind\":\"mystery\"}\n"); // unknown kind
        text.push_str("\n"); // blank lines don't count at all
        let log = TraceLog::parse(&text);
        assert_eq!(log.skipped, 3);
        assert_eq!(log.records.len(), 6);
        // Salvage: the surviving records still build the full tree.
        let tree = SpanTree::build(&log);
        assert_eq!(tree.skipped, 3);
        assert_eq!(tree.roots.len(), 1);
    }

    #[test]
    fn tree_reconstruction_aggregates_and_attributes_self_time() {
        let log = TraceLog::parse(&sample_trace());
        let tree = SpanTree::build(&log);
        assert_eq!(tree.roots.len(), 1);
        let audit = &tree.roots[0];
        assert_eq!(audit.name, "audit");
        assert_eq!(audit.count, 1);
        assert_eq!(audit.total_us, 1000);
        // children sorted heaviest-first: load(300), render(200)
        assert_eq!(audit.children.len(), 2);
        assert_eq!(audit.children[0].name, "load");
        assert_eq!(audit.children[1].name, "render");
        // unit x2 folds into one node of count 2, total 200.
        let unit = &audit.children[0].children[0];
        assert_eq!(unit.name, "unit");
        assert_eq!(unit.count, 2);
        assert_eq!(unit.total_us, 200);
        assert_eq!(unit.self_us, 200);
        // Self-time attribution: audit 1000 - (300+200) = 500;
        // load 300 - 200 = 100.
        assert_eq!(audit.self_us, 500);
        assert_eq!(audit.children[0].self_us, 100);
    }

    #[test]
    fn root_total_equals_sum_of_self_times() {
        let log = TraceLog::parse(&sample_trace());
        let tree = SpanTree::build(&log);
        let root = &tree.roots[0];
        let self_sum: u64 = tree.nodes().iter().map(|n| n.self_us).sum();
        assert_eq!(root.total_us, self_sum, "telescoping self-time identity");
        // And the report states the identity in one line.
        let text = render_trace_report(&tree, &TraceReportOptions::default());
        assert!(
            text.contains("root audit: total 1.0ms = stage self 500us + untracked 500us"),
            "conservation line missing in:\n{text}"
        );
    }

    #[test]
    fn critical_path_follows_heaviest_children() {
        let log = TraceLog::parse(&sample_trace());
        let tree = SpanTree::build(&log);
        let names: Vec<&str> = tree
            .critical_path()
            .iter()
            .map(|n| n.name.as_str())
            .collect();
        assert_eq!(names, ["audit", "load", "unit"]);
    }

    #[test]
    fn unclosed_parent_promotes_orphans_to_roots() {
        // Only the children closed before the trace ended.
        let mut text = String::new();
        text.push_str(&line(&span_record(1, 10, "child", Some("ghost"), 10)));
        text.push('\n');
        text.push_str(&line(&span_record(2, 30, "child", Some("ghost"), 15)));
        text.push('\n');
        let tree = SpanTree::build(&TraceLog::parse(&text));
        assert_eq!(tree.roots.len(), 1);
        assert_eq!(tree.roots[0].name, "child");
        assert_eq!(tree.roots[0].count, 2);
        assert_eq!(tree.roots[0].total_us, 25);
    }

    #[test]
    fn recursion_in_the_name_graph_does_not_loop() {
        let mut text = String::new();
        text.push_str(&line(&span_record(1, 10, "a", Some("b"), 10)));
        text.push('\n');
        text.push_str(&line(&span_record(2, 20, "b", Some("a"), 20)));
        text.push('\n');
        text.push_str(&line(&span_record(3, 40, "a", None, 40)));
        text.push('\n');
        let tree = SpanTree::build(&TraceLog::parse(&text));
        // Terminates; "a" appears as a root and the cycle is cut.
        assert!(tree.roots.iter().any(|r| r.name == "a"));
        let rendered = render_trace_report(&tree, &TraceReportOptions::default());
        assert!(rendered.contains("span tree"));
    }

    #[test]
    fn report_renders_all_sections_and_hotspot_cap() {
        let log = TraceLog::parse(&sample_trace());
        let tree = SpanTree::build(&log);
        let text = render_trace_report(&tree, &TraceReportOptions { top: 2 });
        assert!(text.contains("== trace report =="));
        assert!(text.contains("5 spans, 1 events"));
        assert!(text.contains("span tree"));
        assert!(text.contains("critical path:"));
        assert!(text.contains("audit 1.0ms -> load 300us -> unit 200us"));
        assert!(text.contains("hotspots (top 2 by self time):"));
        // top-2 cap: exactly two ranked lines.
        assert_eq!(
            text.matches("  1. ").count() + text.matches("  2. ").count(),
            2
        );
        assert!(!text.contains("  3. "));
    }

    #[test]
    fn empty_trace_renders_placeholder() {
        let tree = SpanTree::build(&TraceLog::parse(""));
        let text = render_trace_report(&tree, &TraceReportOptions::default());
        assert!(text.contains("no completed spans"));
    }

    fn res_line(
        seq: u64,
        t_us: u64,
        name: &str,
        parent: Option<&str>,
        dur_us: u64,
        res: SpanResources,
    ) -> String {
        line(&crate::sink::with_span_resources(
            span_record(seq, t_us, name, parent, dur_us),
            &res,
        ))
    }

    /// The sample trace with resource attribution on every span.
    fn resource_trace() -> String {
        let span = |peak, delta, cpu, bytes| SpanResources {
            peak_rss_bytes: peak,
            rss_delta_bytes: delta,
            cpu_us: cpu,
            bytes_in: bytes,
        };
        let mut text = String::new();
        for record in [
            res_line(
                1,
                110,
                "unit",
                Some("load"),
                100,
                span(4_000, 400, 100, 1_000),
            ),
            res_line(
                2,
                220,
                "unit",
                Some("load"),
                100,
                span(4_000, 400, 100, 1_000),
            ),
            res_line(
                3,
                320,
                "load",
                Some("audit"),
                300,
                span(5_000, 1_000, 300, 3_000),
            ),
            res_line(
                4,
                540,
                "render",
                Some("audit"),
                200,
                span(4_500, -100, 100, 0),
            ),
            res_line(5, 1020, "audit", None, 1000, span(5_000, 1_200, 800, 0)),
        ] {
            text.push_str(&record);
            text.push('\n');
        }
        text
    }

    #[test]
    fn resource_fields_parse_and_aggregate_into_the_tree() {
        let log = TraceLog::parse(&resource_trace());
        let first = log.spans().next().unwrap();
        assert_eq!(
            first.res,
            Some(SpanResources {
                peak_rss_bytes: 4_000,
                rss_delta_bytes: 400,
                cpu_us: 100,
                bytes_in: 1_000,
            })
        );
        let tree = SpanTree::build(&log);
        let audit = &tree.roots[0];
        assert_eq!(audit.res_count, 1);
        assert_eq!(audit.cpu_us, 800);
        assert_eq!(audit.rss_delta_bytes, 1_200);
        let load = &audit.children[0];
        // unit x2 folds: counts and sums add, peak takes the max.
        let unit = &load.children[0];
        assert_eq!(unit.res_count, 2);
        assert_eq!(unit.peak_rss_bytes, 4_000);
        assert_eq!(unit.rss_delta_bytes, 800);
        assert_eq!(unit.cpu_us, 200);
        assert_eq!(unit.bytes_in, 2_000);
    }

    #[test]
    fn resource_report_shows_stages_and_conservation() {
        let tree = SpanTree::build(&TraceLog::parse(&resource_trace()));
        let text = render_resource_report(&tree, &TraceReportOptions::default());
        assert!(text.contains("== resource report =="));
        assert!(text.contains("stage resources"));
        // load: 3000 bytes over 300us = 10 MB/s ≈ 9.54MiB/s.
        assert!(text.contains("9.54MiB/s"), "throughput missing in:\n{text}");
        // CPU conservation: audit 800 = descendant self (100+200+100) + 400.
        assert!(
            text.contains("root audit: cpu 800us = stage self 400us + untracked 400us"),
            "cpu conservation line missing in:\n{text}"
        );
        // RSS conservation in signed bytes: +1200 = +900 + +300.
        assert!(
            text.contains("root audit: rss +1.2KiB = stage +900B + untracked +300B"),
            "rss conservation line missing in:\n{text}"
        );
    }

    #[test]
    fn unprofiled_trace_degrades_to_resources_unavailable() {
        let tree = SpanTree::build(&TraceLog::parse(&sample_trace()));
        let text = render_resource_report(&tree, &TraceReportOptions::default());
        assert!(
            text.contains("resources unavailable (trace carries no resource samples)"),
            "{text}"
        );
        assert!(!text.contains("stage resources"));
        // Empty traces still render the header path.
        let empty = SpanTree::build(&TraceLog::parse(""));
        let text = render_resource_report(&empty, &TraceReportOptions::default());
        assert!(text.contains("no completed spans"));
    }
}
