//! `diffaudit-obs` — std-only structured tracing, per-stage metrics, and a
//! pipeline run report for the DiffAudit reproduction.
//!
//! The crate provides four pieces, all dependency-free:
//!
//! - **Spans** — hierarchical wall-time timing via an RAII guard
//!   ([`Recorder::enter`] / [`span`]); each completed span feeds a
//!   per-name [`SpanStats`] aggregate and a latency histogram.
//! - **Metrics** — typed counters and fixed-bucket [`Histogram`]s
//!   (byte volumes, record counts, latencies) collected into a
//!   [`MetricsSnapshot`] for `--metrics-out` export.
//! - **Per-thread recorders** — worker threads accumulate counters,
//!   histograms, and span timings into private [`LocalRecorder`]s and
//!   merge them associatively into the global registry at join
//!   ([`absorb`]), so parallel stages produce the same snapshot as the
//!   serial path without taking the global lock per operation.
//! - **Events** — a leveled structured logging API
//!   ([`error`]/[`warn`]/[`info`]/[`debug`]) with typed `key=value`
//!   fields; warn/error events are additionally retained in a bounded
//!   in-memory ring ([`events_since`]) for live tailing.
//! - **Live telemetry** — [`Gauge`]s (levels with min/max watermarks)
//!   and sliding-window series ([`metrics::WindowedCounter`] /
//!   [`metrics::WindowedHistogram`]: 1m/5m rates, window quantiles),
//!   merged associatively like counters, plus a Prometheus-style text
//!   exposition renderer/parser ([`expo`]).
//! - **Sinks** — a human-readable stderr logger (the only sanctioned
//!   `eprintln!` in the instrumented crates) and a machine-readable JSONL
//!   trace writer built on `diffaudit-json`.
//!
//! Instrumented library crates talk to one process-global [`Recorder`]
//! through the free functions below; the recorder defaults to level
//! `Warn` so libraries and tests stay quiet until the CLI calls
//! [`global`]`().configure(...)`.

pub mod compare;
pub mod event;
pub mod expo;
pub mod level;
pub mod metrics;
pub mod recorder;
pub mod report;
pub mod res;
pub mod scope;
pub mod sink;
pub mod trace;

pub use compare::{
    diff_snapshots, parse_snapshot, render_diff, DiffOptions, MetricsDiff, Snapshot, Verdict,
};
pub use event::{field, Field, FieldValue};
pub use expo::{
    gauge_value, histogram_quantile, parse_exposition, render_exposition, sum_samples, Sample,
};
pub use level::Level;
pub use metrics::{
    estimate_quantile, Gauge, Histogram, Metrics, MetricsSnapshot, ResStats, SpanStats, Windowed,
    BYTE_BOUNDS, LATENCY_US_BOUNDS, RECORD_BOUNDS,
};
pub use recorder::{LocalRecorder, ObsConfig, Recorder, RingEvent, SpanGuard, EVENT_RING_CAP};
pub use report::{render_run_report, SALVAGE_PREFIX};
pub use res::{ResUsage, ResourceTrack, SpanResources};
pub use scope::Scope;
pub use sink::{write_stderr_block, JsonlSink};
pub use trace::{
    render_resource_report, render_trace_report, SpanTree, TraceLog, TraceReportOptions,
};

use std::sync::OnceLock;

// lint:allow(global-state): the one sanctioned process-global — the obs recorder the whole
// workspace funnels through; per-pipeline recorders merge into it at join
static GLOBAL: OnceLock<Recorder> = OnceLock::new();

/// The process-global recorder (created on first use).
pub fn global() -> &'static Recorder {
    GLOBAL.get_or_init(Recorder::new)
}

/// Enter a span on the global recorder; the guard closes it on drop.
pub fn span(name: impl Into<String>) -> SpanGuard<'static> {
    global().enter(name)
}

/// Emit an `error` event on the global recorder.
pub fn error(msg: &str, fields: &[Field]) {
    global().event(Level::Error, msg, fields);
}

/// Emit a `warn` event on the global recorder.
pub fn warn(msg: &str, fields: &[Field]) {
    global().event(Level::Warn, msg, fields);
}

/// Emit an `info` event on the global recorder.
pub fn info(msg: &str, fields: &[Field]) {
    global().event(Level::Info, msg, fields);
}

/// Emit a `debug` event on the global recorder.
pub fn debug(msg: &str, fields: &[Field]) {
    global().event(Level::Debug, msg, fields);
}

/// Add `n` to global counter `name`.
pub fn add(name: &str, n: u64) {
    global().add(name, n);
}

/// Record `value` into global histogram `name` over `bounds`.
pub fn observe(name: &str, bounds: &[u64], value: u64) {
    global().observe(name, bounds, value);
}

/// Set global gauge `name` to `value` (authoritative-writer form).
pub fn gauge_set(name: &str, value: i64) {
    global().gauge_set(name, value);
}

/// Move global gauge `name` by `delta`.
pub fn gauge_add(name: &str, delta: i64) {
    global().gauge_add(name, delta);
}

/// Move global gauge `name` down by `delta`.
pub fn gauge_sub(name: &str, delta: i64) {
    global().gauge_sub(name, delta);
}

/// Add `n` to the global sliding-window counter `name`.
pub fn window_add(name: &str, n: u64) {
    global().window_add(name, n);
}

/// Record `value` into the global sliding-window histogram `name`.
pub fn window_observe(name: &str, bounds: &[u64], value: u64) {
    global().window_observe(name, bounds, value);
}

/// Retained warn/error events newer than ring cursor `since` (see
/// [`Recorder::events_since`]).
pub fn events_since(since: u64) -> Vec<RingEvent> {
    global().events_since(since)
}

/// Snapshot the global recorder's metrics.
pub fn snapshot() -> MetricsSnapshot {
    global().snapshot()
}

/// Merge a worker thread's [`LocalRecorder`] into the global registry
/// (call once per worker, at join).
pub fn absorb(local: LocalRecorder) {
    global().absorb(local);
}

/// Flush the global trace sink.
pub fn flush() {
    global().flush();
}

/// Start resource profiling on the global recorder: a background `/proc`
/// sampler plus per-span RSS/CPU attribution. Returns `false` (and changes
/// nothing) when `/proc` is unavailable — see [`Recorder::enable_resources`].
pub fn enable_resources(interval: std::time::Duration) -> bool {
    global().enable_resources(interval)
}

/// Whether resource profiling is active on the global recorder.
pub fn resources_enabled() -> bool {
    global().resources_enabled()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn global_veneer_is_usable() {
        // The global recorder is shared across the test binary; use names
        // unique to this test and assert only on them.
        add("obs.lib.test.counter", 2);
        observe("obs.lib.test.hist", &RECORD_BOUNDS, 3);
        {
            let _span = span("obs.lib.test.span");
        }
        let snap = snapshot();
        assert_eq!(snap.metrics.counter("obs.lib.test.counter"), 2);
        assert!(snap.metrics.spans().any(|(n, _)| n == "obs.lib.test.span"));
        assert!(snap
            .metrics
            .histograms()
            .any(|(n, _)| n == "obs.lib.test.hist"));
    }
}
