//! Structured events: a message plus typed `key=value` fields.

use diffaudit_json::Json;

/// A typed field value attached to an event.
#[derive(Debug, Clone, PartialEq)]
pub enum FieldValue {
    /// A string.
    Str(String),
    /// A signed integer.
    Int(i64),
    /// An unsigned integer (counters, sizes).
    Uint(u64),
    /// A float (fractions, rates).
    Float(f64),
    /// A boolean.
    Bool(bool),
}

impl FieldValue {
    /// JSON representation for the JSONL trace sink.
    pub fn to_json(&self) -> Json {
        match self {
            FieldValue::Str(s) => Json::str(s.clone()),
            FieldValue::Int(i) => Json::int(*i),
            FieldValue::Uint(u) => {
                i64::try_from(*u).map_or_else(|_| Json::float(*u as f64), Json::int)
            }
            FieldValue::Float(f) => Json::float(*f),
            FieldValue::Bool(b) => Json::Bool(*b),
        }
    }
}

impl std::fmt::Display for FieldValue {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FieldValue::Str(s) => f.write_str(s),
            FieldValue::Int(i) => write!(f, "{i}"),
            FieldValue::Uint(u) => write!(f, "{u}"),
            FieldValue::Float(x) => write!(f, "{x:.4}"),
            FieldValue::Bool(b) => write!(f, "{b}"),
        }
    }
}

impl From<&str> for FieldValue {
    fn from(s: &str) -> Self {
        FieldValue::Str(s.to_string())
    }
}
impl From<String> for FieldValue {
    fn from(s: String) -> Self {
        FieldValue::Str(s)
    }
}
impl From<i64> for FieldValue {
    fn from(i: i64) -> Self {
        FieldValue::Int(i)
    }
}
impl From<u64> for FieldValue {
    fn from(u: u64) -> Self {
        FieldValue::Uint(u)
    }
}
impl From<usize> for FieldValue {
    fn from(u: usize) -> Self {
        FieldValue::Uint(u as u64)
    }
}
impl From<f64> for FieldValue {
    fn from(f: f64) -> Self {
        FieldValue::Float(f)
    }
}
impl From<bool> for FieldValue {
    fn from(b: bool) -> Self {
        FieldValue::Bool(b)
    }
}

/// One `key=value` pair.
pub type Field = (&'static str, FieldValue);

/// Build a field vector tersely: `fields![("units", 14usize), ("slug", slug)]`
/// without the macro — callers use `vec![("units", n.into())]` or this helper.
pub fn field(key: &'static str, value: impl Into<FieldValue>) -> Field {
    (key, value.into())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversions_and_display() {
        assert_eq!(field("a", 3i64).1.to_string(), "3");
        assert_eq!(field("b", "x").1, FieldValue::Str("x".into()));
        assert_eq!(field("c", true).1.to_string(), "true");
        assert_eq!(field("d", 0.5f64).1.to_string(), "0.5000");
    }

    #[test]
    fn json_preserves_integer_counters() {
        assert_eq!(FieldValue::Uint(7).to_json(), Json::int(7));
        assert_eq!(FieldValue::Int(-2).to_json(), Json::int(-2));
        // u64 values beyond i64 degrade to float rather than erroring.
        assert!(matches!(FieldValue::Uint(u64::MAX).to_json(), Json::Num(_)));
    }
}
