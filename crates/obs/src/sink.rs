//! The two event sinks: a human-readable stderr logger and a
//! machine-readable JSONL trace writer.
//!
//! This file is the *only* place in the instrumented crates allowed to call
//! `eprintln!` — the analyzer's `no-bare-eprintln` pass allowlists it — so
//! every operator-facing line flows through one leveled, filterable funnel.

use crate::event::Field;
use crate::level::Level;
use diffaudit_json::Json;
use std::io::Write;

/// Render one event the way the stderr sink prints it.
///
/// `info` events print their message bare (so CLI progress lines look like
/// ordinary tool output); other levels get a `level:` prefix. Fields are
/// appended as space-separated `key=value` pairs.
pub fn render_human(level: Level, msg: &str, fields: &[Field]) -> String {
    let mut line = match level {
        Level::Info => String::new(),
        other => format!("{other}: "),
    };
    line.push_str(msg);
    for (key, value) in fields {
        line.push(' ');
        line.push_str(key);
        line.push('=');
        line.push_str(&value.to_string());
    }
    line
}

/// Print one event to stderr in the human format.
pub fn write_stderr(level: Level, msg: &str, fields: &[Field]) {
    eprintln!("{}", render_human(level, msg, fields));
}

/// Print a preformatted multi-line block (the run report, a degradation
/// table) to stderr verbatim — the sanctioned channel for stderr output
/// that is a document rather than an event.
pub fn write_stderr_block(text: &str) {
    eprint!("{text}");
}

/// A JSON-Lines trace writer: one self-contained JSON object per line,
/// buffered, built on `diffaudit-json` so the schema round-trips through
/// the workspace's own parser.
pub struct JsonlSink {
    out: Box<dyn Write + Send>,
}

impl std::fmt::Debug for JsonlSink {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("JsonlSink")
    }
}

impl JsonlSink {
    /// Wrap any writer (a file, a test buffer).
    pub fn new(out: Box<dyn Write + Send>) -> JsonlSink {
        JsonlSink { out }
    }

    /// Open a buffered file sink at `path` (truncating).
    pub fn create(path: &std::path::Path) -> std::io::Result<JsonlSink> {
        let file = std::fs::File::create(path)?;
        Ok(JsonlSink::new(Box::new(std::io::BufWriter::new(file))))
    }

    /// Append one record. Write errors are swallowed: tracing must never
    /// take down the audit it is observing.
    pub fn write(&mut self, record: &Json) {
        let mut line = record.to_string();
        line.push('\n');
        let _ = self.out.write_all(line.as_bytes());
    }

    /// Flush buffered lines.
    pub fn flush(&mut self) {
        let _ = self.out.flush();
    }
}

/// Build the JSONL record for an event.
pub fn event_record(seq: u64, t_us: u64, level: Level, msg: &str, fields: &[Field]) -> Json {
    let mut obj = Json::obj()
        .with("seq", Json::int(seq.min(i64::MAX as u64) as i64))
        .with("tUs", Json::int(t_us.min(i64::MAX as u64) as i64))
        .with("kind", Json::str("event"))
        .with("level", Json::str(level.label()))
        .with("msg", Json::str(msg));
    if !fields.is_empty() {
        let mut f = Json::obj();
        for (key, value) in fields {
            f.set(*key, value.to_json());
        }
        obj.set("fields", f);
    }
    obj
}

/// Build the JSONL record for a completed span.
pub fn span_record(seq: u64, t_us: u64, name: &str, parent: Option<&str>, dur_us: u64) -> Json {
    Json::obj()
        .with("seq", Json::int(seq.min(i64::MAX as u64) as i64))
        .with("tUs", Json::int(t_us.min(i64::MAX as u64) as i64))
        .with("kind", Json::str("span"))
        .with("name", Json::str(name))
        .with("parent", parent.map_or(Json::Null, Json::str))
        .with("durUs", Json::int(dur_us.min(i64::MAX as u64) as i64))
}

/// Extend a span record with its resource attribution. Optional keys —
/// parsers written against the resource-free schema skip them, so traces
/// with and without profiling stay mutually readable.
pub fn with_span_resources(record: Json, res: &crate::res::SpanResources) -> Json {
    record
        .with(
            "rssPeakB",
            Json::int(res.peak_rss_bytes.min(i64::MAX as u64) as i64),
        )
        .with("rssDeltaB", Json::int(res.rss_delta_bytes))
        .with("cpuUs", Json::int(res.cpu_us.min(i64::MAX as u64) as i64))
        .with(
            "bytesIn",
            Json::int(res.bytes_in.min(i64::MAX as u64) as i64),
        )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::field;

    #[test]
    fn human_format_prefixes_non_info_levels() {
        assert_eq!(
            render_human(Level::Info, "loaded 3 units", &[]),
            "loaded 3 units"
        );
        assert_eq!(
            render_human(Level::Error, "boom", &[field("file", "a.pcap")]),
            "error: boom file=a.pcap"
        );
        assert_eq!(
            render_human(Level::Debug, "x", &[field("n", 2u64)]),
            "debug: x n=2"
        );
    }

    #[test]
    fn records_parse_back() {
        let ev = event_record(1, 10, Level::Warn, "w", &[field("k", 5u64)]);
        let back = diffaudit_json::parse(&ev.to_string()).unwrap();
        assert_eq!(back.pointer("/kind").and_then(Json::as_str), Some("event"));
        assert_eq!(back.pointer("/level").and_then(Json::as_str), Some("warn"));
        assert_eq!(back.pointer("/fields/k").and_then(Json::as_i64), Some(5));

        let sp = span_record(2, 20, "pipeline.classify", Some("pipeline"), 123);
        let back = diffaudit_json::parse(&sp.to_string()).unwrap();
        assert_eq!(back.pointer("/kind").and_then(Json::as_str), Some("span"));
        assert_eq!(
            back.pointer("/parent").and_then(Json::as_str),
            Some("pipeline")
        );
        assert_eq!(back.pointer("/durUs").and_then(Json::as_i64), Some(123));
    }

    #[test]
    fn span_resources_extend_the_record_with_optional_keys() {
        let sp = span_record(3, 30, "pipeline.decode", Some("pipeline"), 500);
        let sp = with_span_resources(
            sp,
            &crate::res::SpanResources {
                peak_rss_bytes: 4096,
                rss_delta_bytes: -128,
                cpu_us: 900,
                bytes_in: 2048,
            },
        );
        let back = diffaudit_json::parse(&sp.to_string()).unwrap();
        assert_eq!(back.pointer("/rssPeakB").and_then(Json::as_i64), Some(4096));
        assert_eq!(
            back.pointer("/rssDeltaB").and_then(Json::as_i64),
            Some(-128)
        );
        assert_eq!(back.pointer("/cpuUs").and_then(Json::as_i64), Some(900));
        assert_eq!(back.pointer("/bytesIn").and_then(Json::as_i64), Some(2048));
        // The base span keys survive the extension.
        assert_eq!(back.pointer("/durUs").and_then(Json::as_i64), Some(500));
    }

    #[test]
    fn jsonl_sink_writes_one_line_per_record() {
        use std::sync::{Arc, Mutex};
        #[derive(Clone)]
        struct Buf(Arc<Mutex<Vec<u8>>>);
        impl Write for Buf {
            fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
                self.0.lock().unwrap().extend_from_slice(buf);
                Ok(buf.len())
            }
            fn flush(&mut self) -> std::io::Result<()> {
                Ok(())
            }
        }
        let buf = Buf(Arc::new(Mutex::new(Vec::new())));
        let mut sink = JsonlSink::new(Box::new(buf.clone()));
        sink.write(&event_record(1, 0, Level::Info, "a", &[]));
        sink.write(&span_record(2, 5, "s", None, 7));
        sink.flush();
        let text = String::from_utf8(buf.0.lock().unwrap().clone()).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 2);
        for line in lines {
            diffaudit_json::parse(line).expect("every line is standalone JSON");
        }
    }
}
