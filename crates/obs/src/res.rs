//! Process resource sampling: RSS and CPU time read from `/proc`, a
//! bounded [`ResourceTrack`] time series behind the background sampler,
//! and the per-span [`SpanResources`] attribution record.
//!
//! Everything here is std-only and `forbid(unsafe_code)`-clean: no global
//! allocator hooks, no libc — just `/proc/self/statm` (resident pages) and
//! `/proc/self/stat` (utime/stime ticks), parsed by hand. On a platform
//! without `/proc` every sampling entry point returns `None` and the rest
//! of the stack degrades to "resources unavailable": spans record no
//! resource fields, snapshots omit the `resources` key, and reports print
//! a placeholder instead of numbers. Tier-1 tests therefore never depend
//! on `/proc` existing.
//!
//! ## Unit assumptions
//!
//! `/proc/self/statm` reports pages and `/proc/self/stat` reports clock
//! ticks; std exposes neither the page size nor `USER_HZ`, so this module
//! assumes the ubiquitous [`PAGE_SIZE_BYTES`] = 4096 and [`USER_HZ`] = 100
//! (the values on every mainstream Linux x86-64/aarch64 userspace ABI).
//! A platform where either differs skews absolute numbers by a constant
//! factor but leaves every *relative* comparison — the diff gate, the
//! per-stage attribution shares — intact.

use std::collections::VecDeque;
use std::time::Instant;

/// Gauge name the sampler maintains for current resident set size. The
/// exposition renderer turns it into `diffaudit_process_resident_bytes`.
pub const PROCESS_RSS_GAUGE: &str = "diffaudit.process.resident.bytes";

/// Gauge name the sampler maintains for cumulative process CPU time in
/// microseconds (utime + stime). The exposition renderer re-exports it in
/// the conventional shape `diffaudit_process_cpu_seconds_total`.
pub const PROCESS_CPU_US_GAUGE: &str = "diffaudit.process.cpu.us";

/// Assumed bytes per page for `/proc/self/statm` (see module docs).
pub const PAGE_SIZE_BYTES: u64 = 4096;

/// Assumed clock ticks per second for `/proc/self/stat` (see module docs).
pub const USER_HZ: u64 = 100;

/// Most samples the track retains; older points fall off the front. At the
/// default 25 ms interval this covers ~27 minutes — far beyond any batch
/// run, and a bounded footprint for a long-lived daemon.
pub const TRACK_CAP: usize = 65_536;

/// One point-in-time reading of the process's resource usage.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ResUsage {
    /// Resident set size, bytes.
    pub rss_bytes: u64,
    /// Cumulative CPU time (utime + stime), microseconds.
    pub cpu_us: u64,
}

/// Resource deltas attributed to one completed span: what the process
/// gained/spent between the span's enter and exit samples.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SpanResources {
    /// Highest RSS observed while the span was open (max of the enter
    /// sample, the exit sample, and every track point in between).
    pub peak_rss_bytes: u64,
    /// RSS at exit minus RSS at enter (signed — stages can release).
    pub rss_delta_bytes: i64,
    /// CPU time (utime + stime) consumed while the span was open.
    pub cpu_us: u64,
    /// Growth of the `{span}.bytes.in` counter while the span was open —
    /// the logical bytes the stage processed.
    pub bytes_in: u64,
}

/// Read the process's current resource usage from `/proc`. `None` when
/// `/proc` is unavailable or unparsable (non-Linux degradation path).
pub fn sample_self() -> Option<ResUsage> {
    let statm = std::fs::read_to_string("/proc/self/statm").ok()?;
    let stat = std::fs::read_to_string("/proc/self/stat").ok()?;
    Some(ResUsage {
        rss_bytes: parse_statm_rss_bytes(&statm)?,
        cpu_us: parse_stat_cpu_us(&stat)?,
    })
}

/// Whether resource sampling works on this platform.
pub fn available() -> bool {
    sample_self().is_some()
}

/// Resident bytes from `/proc/self/statm` text (field 2, pages).
pub fn parse_statm_rss_bytes(text: &str) -> Option<u64> {
    let pages: u64 = text.split_whitespace().nth(1)?.parse().ok()?;
    Some(pages.saturating_mul(PAGE_SIZE_BYTES))
}

/// CPU microseconds (utime + stime) from `/proc/self/stat` text.
///
/// The second field (`comm`) is a parenthesised command name that may
/// itself contain spaces and parentheses, so fields are counted from the
/// *last* `)` — after it, field 3 (`state`) comes first, putting utime and
/// stime (fields 14 and 15) at whitespace-split indices 11 and 12.
pub fn parse_stat_cpu_us(text: &str) -> Option<u64> {
    let after_comm = &text[text.rfind(')')? + 1..];
    let mut fields = after_comm.split_whitespace();
    let utime: u64 = fields.nth(11)?.parse().ok()?;
    let stime: u64 = fields.next()?.parse().ok()?;
    Some(
        utime
            .saturating_add(stime)
            .saturating_mul(1_000_000 / USER_HZ),
    )
}

/// One retained sample in the track.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ResourcePoint {
    /// Microseconds since the track's epoch.
    pub t_us: u64,
    /// Resident set size at the sample, bytes.
    pub rss_bytes: u64,
    /// Cumulative CPU time at the sample, microseconds.
    pub cpu_us: u64,
}

/// A bounded time series of [`ResourcePoint`]s with running aggregates.
///
/// The background sampler pushes into the track on its interval; span exit
/// reads `peak_between` to find the high-water RSS while the span was
/// open. The peak aggregate is monotone over the whole run even after old
/// points fall off the [`TRACK_CAP`] horizon.
#[derive(Debug)]
pub struct ResourceTrack {
    epoch: Instant,
    points: VecDeque<ResourcePoint>,
    peak_rss_bytes: u64,
    first: Option<ResUsage>,
    samples: u64,
}

impl Default for ResourceTrack {
    fn default() -> Self {
        ResourceTrack::new()
    }
}

impl ResourceTrack {
    /// An empty track; the time axis starts now.
    pub fn new() -> ResourceTrack {
        ResourceTrack {
            epoch: Instant::now(),
            points: VecDeque::new(),
            peak_rss_bytes: 0,
            first: None,
            samples: 0,
        }
    }

    /// The track's epoch (`Instant` is `Copy`, so callers can timestamp
    /// span enters on the same axis without holding the track lock).
    pub fn epoch(&self) -> Instant {
        self.epoch
    }

    /// Microseconds since the epoch.
    pub fn now_us(&self) -> u64 {
        u64::try_from(self.epoch.elapsed().as_micros()).unwrap_or(u64::MAX)
    }

    /// Append a sample taken now.
    pub fn push(&mut self, usage: ResUsage) {
        let point = ResourcePoint {
            t_us: self.now_us(),
            rss_bytes: usage.rss_bytes,
            cpu_us: usage.cpu_us,
        };
        if self.points.len() >= TRACK_CAP {
            self.points.pop_front();
        }
        self.points.push_back(point);
        self.peak_rss_bytes = self.peak_rss_bytes.max(usage.rss_bytes);
        if self.first.is_none() {
            self.first = Some(usage);
        }
        self.samples += 1;
    }

    /// Highest RSS among retained points with `from_us <= t_us <= to_us`
    /// (`None` when no point falls in the window).
    pub fn peak_between(&self, from_us: u64, to_us: u64) -> Option<u64> {
        self.points
            .iter()
            .filter(|p| p.t_us >= from_us && p.t_us <= to_us)
            .map(|p| p.rss_bytes)
            .max()
    }

    /// Highest RSS ever pushed (`None` before the first sample). Survives
    /// points falling off the retention horizon.
    pub fn peak_rss_bytes(&self) -> Option<u64> {
        (self.samples > 0).then_some(self.peak_rss_bytes)
    }

    /// The newest retained point.
    pub fn latest(&self) -> Option<ResourcePoint> {
        self.points.back().copied()
    }

    /// The very first sample pushed (the run's resource baseline).
    pub fn first(&self) -> Option<ResUsage> {
        self.first
    }

    /// Total samples pushed over the track's lifetime.
    pub fn samples(&self) -> u64 {
        self.samples
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn statm_parses_resident_pages_into_bytes() {
        assert_eq!(
            parse_statm_rss_bytes("12345 678 90 1 0 2 0\n"),
            Some(678 * PAGE_SIZE_BYTES)
        );
        assert_eq!(parse_statm_rss_bytes(""), None);
        assert_eq!(parse_statm_rss_bytes("only-one-field"), None);
        assert_eq!(parse_statm_rss_bytes("1 not-a-number"), None);
    }

    #[test]
    fn stat_counts_fields_after_the_last_paren() {
        // comm contains spaces and a nested ')': fields must be counted
        // from the final ')' or utime lands on the wrong column.
        let line = "4242 (weird name) S 1 2 3 4 5 6 7 8 9 10 250 50 0 0 20 0 1 0 100 1000 2 42\n";
        assert_eq!(
            parse_stat_cpu_us(line),
            Some((250 + 50) * (1_000_000 / USER_HZ))
        );
        let nested = "1 (a (b) c) R 1 2 3 4 5 6 7 8 9 10 7 3 0 0\n";
        assert_eq!(parse_stat_cpu_us(nested), Some(10 * (1_000_000 / USER_HZ)));
        assert_eq!(parse_stat_cpu_us("no parens here"), None);
        assert_eq!(parse_stat_cpu_us("1 (x) S 1 2\n"), None); // too few fields
    }

    #[test]
    fn sampling_either_works_or_degrades_to_none() {
        // Tier-1 must pass with or without /proc: assert only internal
        // consistency, not availability.
        match sample_self() {
            Some(usage) => assert!(usage.rss_bytes > 0, "a live process has pages resident"),
            None => assert!(!available()),
        }
    }

    #[test]
    fn track_aggregates_peak_first_and_window() {
        let mut track = ResourceTrack::new();
        assert_eq!(track.peak_rss_bytes(), None);
        assert_eq!(track.peak_between(0, u64::MAX), None);
        for rss in [100u64, 300, 200] {
            track.push(ResUsage {
                rss_bytes: rss,
                cpu_us: rss * 10,
            });
        }
        assert_eq!(track.samples(), 3);
        assert_eq!(track.peak_rss_bytes(), Some(300));
        assert_eq!(track.first().map(|u| u.rss_bytes), Some(100));
        assert_eq!(track.latest().map(|p| p.rss_bytes), Some(200));
        // The full-axis window sees every point.
        assert_eq!(track.peak_between(0, u64::MAX), Some(300));
        // An empty window sees none.
        assert_eq!(track.peak_between(u64::MAX - 1, u64::MAX), None);
    }

    #[test]
    fn track_is_bounded_but_peak_is_monotone() {
        let mut track = ResourceTrack::new();
        track.push(ResUsage {
            rss_bytes: 9_999,
            cpu_us: 0,
        });
        for _ in 0..(TRACK_CAP + 8) {
            track.push(ResUsage {
                rss_bytes: 1,
                cpu_us: 0,
            });
        }
        assert_eq!(track.samples() as usize, TRACK_CAP + 9);
        // The 9_999 point has fallen off the horizon…
        assert!(track.peak_between(0, u64::MAX).unwrap() < 9_999);
        // …but the lifetime peak survives.
        assert_eq!(track.peak_rss_bytes(), Some(9_999));
    }
}
