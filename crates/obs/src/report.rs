//! End-of-run pipeline report: a human-readable digest of one
//! [`MetricsSnapshot`] — stage timing table, counters, and salvage summary.

use crate::metrics::MetricsSnapshot;
use diffaudit_util::fmt::{format_bytes, format_duration_us};

/// Counter-name prefix under which the CLI mirrors the salvage ledger
/// (`salvage.<stage>.processed` / `salvage.<stage>.dropped`).
pub const SALVAGE_PREFIX: &str = "salvage.";

/// Render the pipeline run report.
///
/// Sections: a span timing table (name, calls, total, max), the counter
/// list (salvage counters folded into their own processed/dropped table),
/// and histogram one-liners. Byte-valued histograms (`*.bytes`) render
/// with binary-unit formatting.
pub fn render_run_report(snapshot: &MetricsSnapshot) -> String {
    let mut out = String::new();
    out.push_str("== pipeline run report ==\n");
    out.push_str(&format!(
        "total wall time: {}\n",
        format_duration_us(snapshot.uptime_us)
    ));

    let spans: Vec<_> = snapshot.metrics.spans().collect();
    if !spans.is_empty() {
        out.push_str("\nstage timing:\n");
        let name_w = spans
            .iter()
            .map(|(n, _)| n.len())
            .max()
            .unwrap_or(0)
            .max("stage".len());
        out.push_str(&format!(
            "  {:<name_w$}  {:>6}  {:>10}  {:>10}\n",
            "stage", "calls", "total", "max"
        ));
        for (name, stats) in &spans {
            out.push_str(&format!(
                "  {:<name_w$}  {:>6}  {:>10}  {:>10}\n",
                name,
                stats.count,
                format_duration_us(stats.total_us),
                format_duration_us(stats.max_us)
            ));
        }
    }

    let (salvage, plain): (Vec<_>, Vec<_>) = snapshot
        .metrics
        .counters()
        .partition(|(name, _)| name.starts_with(SALVAGE_PREFIX));

    if !plain.is_empty() {
        out.push_str("\ncounters:\n");
        let name_w = plain.iter().map(|(n, _)| n.len()).max().unwrap_or(0);
        for (name, value) in &plain {
            out.push_str(&format!("  {name:<name_w$}  {value}\n"));
        }
    }

    if !salvage.is_empty() {
        out.push_str(&render_salvage_table(&salvage));
    }

    let histograms: Vec<_> = snapshot.metrics.histograms().collect();
    if !histograms.is_empty() {
        out.push_str("\ndistributions:\n");
        for (name, h) in &histograms {
            let fmt_value: fn(u64) -> String = if name.ends_with(".bytes") {
                format_bytes
            } else if name.ends_with(".us") {
                format_duration_us
            } else {
                |v| v.to_string()
            };
            let quantile = |q: f64| {
                h.quantile(q)
                    .map_or_else(|| "-".to_string(), |v| fmt_value(v.round() as u64))
            };
            out.push_str(&format!(
                "  {name}: n={} sum={} min={} max={} p50={} p90={} p99={}\n",
                h.count(),
                fmt_value(h.sum()),
                h.min().map_or_else(|| "-".to_string(), fmt_value),
                h.max().map_or_else(|| "-".to_string(), fmt_value),
                quantile(0.5),
                quantile(0.9),
                quantile(0.99),
            ));
        }
    }
    out
}

/// Fold `salvage.<stage>.processed` / `.dropped` counters into a per-stage
/// table mirroring the degradation ledger.
fn render_salvage_table(salvage: &[(&str, u64)]) -> String {
    // Collect stage -> (processed, dropped), preserving sorted counter order.
    let mut stages: Vec<(String, u64, u64)> = Vec::new();
    for (name, value) in salvage {
        let rest = name.strip_prefix(SALVAGE_PREFIX).unwrap_or(name);
        let (stage, kind) = match rest.rsplit_once('.') {
            Some(split) => split,
            None => (rest, ""),
        };
        let entry = match stages.iter_mut().find(|(s, _, _)| s == stage) {
            Some(entry) => entry,
            None => {
                stages.push((stage.to_string(), 0, 0));
                match stages.last_mut() {
                    Some(entry) => entry,
                    None => continue,
                }
            }
        };
        match kind {
            "processed" => entry.1 = *value,
            "dropped" => entry.2 = *value,
            _ => {}
        }
    }
    let mut out = String::new();
    out.push_str("\nsalvage summary:\n");
    let name_w = stages
        .iter()
        .map(|(s, _, _)| s.len())
        .max()
        .unwrap_or(0)
        .max("stage".len());
    out.push_str(&format!(
        "  {:<name_w$}  {:>10}  {:>8}\n",
        "stage", "processed", "dropped"
    ));
    for (stage, processed, dropped) in &stages {
        out.push_str(&format!(
            "  {stage:<name_w$}  {processed:>10}  {dropped:>8}\n"
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::{Metrics, BYTE_BOUNDS};

    fn snapshot() -> MetricsSnapshot {
        let mut m = Metrics::new();
        m.span_done("pipeline", 5_000_000);
        m.span_done("pipeline.classify", 1_200_000);
        m.add("pipeline.units", 14);
        m.add("salvage.pcap-record.processed", 120);
        m.add("salvage.pcap-record.dropped", 3);
        m.observe("artifact.bytes", &BYTE_BOUNDS, 2_048);
        MetricsSnapshot {
            metrics: m,
            uptime_us: 5_100_000,
        }
    }

    #[test]
    fn report_has_all_sections() {
        let text = render_run_report(&snapshot());
        assert!(text.contains("pipeline run report"));
        assert!(text.contains("stage timing:"));
        assert!(text.contains("pipeline.classify"));
        assert!(text.contains("counters:"));
        assert!(text.contains("pipeline.units"));
        assert!(text.contains("salvage summary:"));
        assert!(text.contains("pcap-record"));
        assert!(text.contains("120"));
        assert!(text.contains("distributions:"));
        assert!(text.contains("artifact.bytes"));
        // Byte histogram renders with units and bucket-derived percentiles.
        assert!(text.contains("KiB"), "expected KiB in:\n{text}");
        assert!(text.contains("p50="), "expected percentiles in:\n{text}");
        assert!(text.contains("p99="), "expected percentiles in:\n{text}");
    }

    #[test]
    fn empty_snapshot_renders_header_only() {
        let snap = MetricsSnapshot {
            metrics: Metrics::new(),
            uptime_us: 10,
        };
        let text = render_run_report(&snap);
        assert!(text.contains("pipeline run report"));
        assert!(!text.contains("stage timing:"));
        assert!(!text.contains("salvage summary:"));
    }
}
