//! Prometheus-style text exposition of a [`MetricsSnapshot`] — and the
//! inverse parser the `obs top` live view feeds on.
//!
//! The renderer is std-only and emits the classic text format (content
//! type `text/plain; version=0.0.4`): one `# HELP`/`# TYPE` pair per
//! metric family, counters with a `_total` suffix, gauges as-is, and
//! histograms as cumulative `_bucket{le="…"}` series ending in `+Inf`
//! plus `_sum`/`_count`. Registry names are sanitized into the
//! `[a-zA-Z_:][a-zA-Z0-9_:]*` alphabet (`.` and `-` become `_`), and a
//! registry name of the form `base{k="v",…}` is split into a family name
//! plus labels so one family can carry per-endpoint/per-status series.
//!
//! Sliding-window series render as their monotonic cumulative part
//! (counter `_total`, histogram buckets) plus derived `_rate_1m`/
//! `_rate_5m` gauges; span aggregates are *not* rendered — every span
//! already feeds a `{name}.us` histogram, which is the useful shape here.
//! Ordering is deterministic (sorted by family, then label set), so two
//! scrapes of an idle daemon are byte-identical.

use crate::metrics::{estimate_quantile, Histogram, MetricsSnapshot, Windowed};
use std::collections::BTreeMap;

/// Sanitize a registry name into the exposition alphabet: keep
/// `[A-Za-z0-9_:]`, map everything else to `_`, and prefix `_` when the
/// result would start with a digit (or be empty).
pub fn sanitize_name(name: &str) -> String {
    let mut out = String::with_capacity(name.len());
    for c in name.chars() {
        if c.is_ascii_alphanumeric() || c == '_' || c == ':' {
            out.push(c);
        } else {
            out.push('_');
        }
    }
    if out.is_empty() || out.starts_with(|c: char| c.is_ascii_digit()) {
        out.insert(0, '_');
    }
    out
}

/// Split a registry name of the form `base{k="v",…}` into the family
/// base and its rendered label list (without braces). Names without a
/// well-formed label suffix are all base.
fn split_series(name: &str) -> (String, String) {
    if let Some(open) = name.find('{') {
        if let Some(inner) = name[open..]
            .strip_prefix('{')
            .and_then(|s| s.strip_suffix('}'))
        {
            let mut labels = Vec::new();
            let mut ok = !inner.is_empty();
            for pair in inner.split(',') {
                match pair.split_once('=') {
                    Some((key, value)) => {
                        let value = value.trim_matches('"');
                        labels.push(format!(
                            "{}=\"{}\"",
                            sanitize_name(key.trim()),
                            escape_label_value(value)
                        ));
                    }
                    None => ok = false,
                }
            }
            if ok {
                return (sanitize_name(&name[..open]), labels.join(","));
            }
        }
    }
    (sanitize_name(name), String::new())
}

/// Escape a label value for the exposition format.
fn escape_label_value(value: &str) -> String {
    let mut out = String::with_capacity(value.len());
    for c in value.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '"' => out.push_str("\\\""),
            '\n' => out.push_str("\\n"),
            c => out.push(c),
        }
    }
    out
}

/// A sample line's full name: `family{labels}` or bare `family`.
fn series_name(family: &str, labels: &str) -> String {
    if labels.is_empty() {
        family.to_string()
    } else {
        format!("{family}{{{labels}}}")
    }
}

/// Same, with an extra `le` label appended (histogram buckets).
fn bucket_name(family: &str, labels: &str, le: &str) -> String {
    if labels.is_empty() {
        format!("{family}_bucket{{le=\"{le}\"}}")
    } else {
        format!("{family}_bucket{{{labels},le=\"{le}\"}}")
    }
}

/// Render a float the exposition way: integers without a fraction.
fn render_value(v: f64) -> String {
    if v.is_finite() && v.fract() == 0.0 && v.abs() < 9.0e15 {
        format!("{}", v as i64)
    } else {
        format!("{v}")
    }
}

#[derive(Default)]
struct Families {
    counters: BTreeMap<String, Vec<(String, f64)>>,
    gauges: BTreeMap<String, Vec<(String, f64)>>,
    histograms: BTreeMap<String, Vec<(String, Histogram)>>,
}

impl Families {
    fn counter(&mut self, name: &str, value: f64) {
        let (family, labels) = split_series(name);
        self.counters
            .entry(family)
            .or_default()
            .push((labels, value));
    }

    fn gauge(&mut self, name: &str, value: f64) {
        let (family, labels) = split_series(name);
        self.gauges.entry(family).or_default().push((labels, value));
    }

    fn histogram(&mut self, name: &str, h: &Histogram) {
        let (family, labels) = split_series(name);
        self.histograms
            .entry(family)
            .or_default()
            .push((labels, h.clone()));
    }
}

/// Render `snapshot` as Prometheus text exposition.
pub fn render_exposition(snapshot: &MetricsSnapshot) -> String {
    let mut fam = Families::default();
    for (name, value) in snapshot.metrics.counters() {
        fam.counter(name, value as f64);
    }
    for (name, gauge) in snapshot.metrics.gauges() {
        // The sampler keeps process CPU as a µs gauge (registry values are
        // integers); the exposition re-exports it in the conventional shape
        // — a monotone counter in seconds, `diffaudit_process_cpu_seconds_total`.
        if name == crate::res::PROCESS_CPU_US_GAUGE {
            fam.counter(
                "diffaudit.process.cpu.seconds",
                gauge.value().max(0) as f64 / 1e6,
            );
            continue;
        }
        fam.gauge(name, gauge.value() as f64);
    }
    for (name, h) in snapshot.metrics.histograms() {
        fam.histogram(name, h);
    }
    for (name, window) in snapshot.metrics.windows() {
        match window {
            Windowed::Counter(w) => {
                fam.counter(name, w.total() as f64);
                fam.gauge(&format!("{name}.rate.1m"), w.rate_1m());
                fam.gauge(&format!("{name}.rate.5m"), w.rate_5m());
            }
            Windowed::Histogram(w) => {
                fam.histogram(name, w.cumulative());
                fam.gauge(&format!("{name}.rate.1m"), w.rate_1m());
                fam.gauge(&format!("{name}.rate.5m"), w.rate_5m());
            }
        }
    }
    fam.gauge("diffaudit_uptime_seconds", snapshot.uptime_us as f64 / 1e6);

    let mut out = String::new();
    for (family, mut series) in std::mem::take(&mut fam.counters) {
        series.sort_by(|a, b| a.0.cmp(&b.0));
        out.push_str(&format!("# HELP {family}_total diffaudit counter\n"));
        out.push_str(&format!("# TYPE {family}_total counter\n"));
        for (labels, value) in series {
            out.push_str(&format!(
                "{} {}\n",
                series_name(&format!("{family}_total"), &labels),
                render_value(value)
            ));
        }
    }
    for (family, mut series) in std::mem::take(&mut fam.gauges) {
        series.sort_by(|a, b| a.0.cmp(&b.0));
        out.push_str(&format!("# HELP {family} diffaudit gauge\n"));
        out.push_str(&format!("# TYPE {family} gauge\n"));
        for (labels, value) in series {
            out.push_str(&format!(
                "{} {}\n",
                series_name(&family, &labels),
                render_value(value)
            ));
        }
    }
    for (family, mut series) in std::mem::take(&mut fam.histograms) {
        series.sort_by(|a, b| a.0.cmp(&b.0));
        out.push_str(&format!("# HELP {family} diffaudit histogram\n"));
        out.push_str(&format!("# TYPE {family} histogram\n"));
        for (labels, h) in series {
            let mut cumulative = 0u64;
            for (bound, count) in h.buckets() {
                cumulative = cumulative.saturating_add(count);
                let le = match bound {
                    Some(b) => format!("{b}"),
                    None => "+Inf".to_string(),
                };
                out.push_str(&format!(
                    "{} {cumulative}\n",
                    bucket_name(&family, &labels, &le)
                ));
            }
            out.push_str(&format!(
                "{} {}\n",
                series_name(&format!("{family}_sum"), &labels),
                h.sum()
            ));
            out.push_str(&format!(
                "{} {}\n",
                series_name(&format!("{family}_count"), &labels),
                h.count()
            ));
        }
    }
    out
}

/// One parsed sample line.
#[derive(Debug, Clone, PartialEq)]
pub struct Sample {
    /// The full metric name (family plus any `_total`/`_bucket` suffix).
    pub name: String,
    /// Label key/value pairs in source order.
    pub labels: Vec<(String, String)>,
    /// The sample value.
    pub value: f64,
}

impl Sample {
    /// The value of label `key`, if present.
    pub fn label(&self, key: &str) -> Option<&str> {
        self.labels
            .iter()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v.as_str())
    }
}

/// Parse a text exposition back into samples. Comment (`#`) and blank
/// lines are skipped; any other malformed line is an error naming the
/// line number — a scrape either parses fully or not at all.
pub fn parse_exposition(text: &str) -> Result<Vec<Sample>, String> {
    let mut samples = Vec::new();
    for (index, line) in text.lines().enumerate() {
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        samples.push(parse_sample(line).map_err(|why| format!("line {}: {why}", index + 1))?);
    }
    Ok(samples)
}

fn parse_sample(line: &str) -> Result<Sample, String> {
    let (series, value_text) = match line.find('{') {
        Some(open) => {
            let close = line.rfind('}').ok_or("unclosed label block")?;
            if close < open {
                return Err("mismatched braces".to_string());
            }
            (&line[..close + 1], line[close + 1..].trim())
        }
        None => {
            let at = line
                .find(char::is_whitespace)
                .ok_or("sample line without a value")?;
            (&line[..at], line[at..].trim())
        }
    };
    let value = parse_value(value_text)?;
    let (name, labels) = match series.split_once('{') {
        Some((name, rest)) => {
            let inner = rest.strip_suffix('}').ok_or("unclosed label block")?;
            (name, parse_labels(inner)?)
        }
        None => (series, Vec::new()),
    };
    if name.is_empty()
        || !name
            .chars()
            .all(|c| c.is_ascii_alphanumeric() || c == '_' || c == ':')
        || name.starts_with(|c: char| c.is_ascii_digit())
    {
        return Err(format!("invalid metric name {name:?}"));
    }
    Ok(Sample {
        name: name.to_string(),
        labels,
        value,
    })
}

fn parse_value(text: &str) -> Result<f64, String> {
    // A timestamp may trail the value; we only keep the value.
    let first = text.split_whitespace().next().ok_or("missing value")?;
    match first {
        "+Inf" | "Inf" => Ok(f64::INFINITY),
        "-Inf" => Ok(f64::NEG_INFINITY),
        "NaN" => Ok(f64::NAN),
        v => v.parse().map_err(|_| format!("bad value {v:?}")),
    }
}

fn parse_labels(inner: &str) -> Result<Vec<(String, String)>, String> {
    let mut labels = Vec::new();
    let bytes = inner.as_bytes();
    let mut i = 0usize;
    while i < bytes.len() {
        // key
        let key_start = i;
        while i < bytes.len() && bytes[i] != b'=' {
            i += 1;
        }
        if i >= bytes.len() {
            return Err("label without '='".to_string());
        }
        let key = inner[key_start..i].trim().to_string();
        i += 1; // '='
        if bytes.get(i) != Some(&b'"') {
            return Err("label value must be quoted".to_string());
        }
        i += 1;
        let mut value = String::new();
        loop {
            match bytes.get(i) {
                Some(b'\\') => {
                    match bytes.get(i + 1) {
                        Some(b'\\') => value.push('\\'),
                        Some(b'"') => value.push('"'),
                        Some(b'n') => value.push('\n'),
                        _ => return Err("bad escape in label value".to_string()),
                    }
                    i += 2;
                }
                Some(b'"') => {
                    i += 1;
                    break;
                }
                Some(&b) => {
                    // Label values are UTF-8; walk whole chars.
                    let ch_len = utf8_len(b);
                    value.push_str(inner.get(i..i + ch_len).ok_or("truncated label value")?);
                    i += ch_len;
                }
                None => return Err("unterminated label value".to_string()),
            }
        }
        labels.push((key, value));
        if bytes.get(i) == Some(&b',') {
            i += 1;
        }
    }
    Ok(labels)
}

fn utf8_len(first: u8) -> usize {
    match first {
        b if b >= 0xF0 => 4,
        b if b >= 0xE0 => 3,
        b if b >= 0xC0 => 2,
        _ => 1,
    }
}

/// Sum every sample named `name` across its label sets (`None` when the
/// name is absent) — the aggregation `obs top` uses for totals.
pub fn sum_samples(samples: &[Sample], name: &str) -> Option<f64> {
    let mut total = 0.0;
    let mut seen = false;
    for sample in samples.iter().filter(|s| s.name == name) {
        total += sample.value;
        seen = true;
    }
    seen.then_some(total)
}

/// Estimate the `q`-quantile of histogram family `family` from its
/// `_bucket` samples, merging all label sets. The exposition carries no
/// min/max, so the estimate uses `[0, largest finite bound]` as the
/// envelope — good enough for a live view.
pub fn histogram_quantile(samples: &[Sample], family: &str, q: f64) -> Option<f64> {
    let bucket_name = format!("{family}_bucket");
    let mut by_bound: BTreeMap<Option<u64>, f64> = BTreeMap::new();
    for sample in samples.iter().filter(|s| s.name == bucket_name) {
        let le = sample.label("le")?;
        let bound = if le == "+Inf" {
            None
        } else {
            Some(le.parse::<u64>().ok()?)
        };
        *by_bound.entry(bound).or_insert(0.0) += sample.value;
    }
    if by_bound.is_empty() {
        return None;
    }
    // Cumulative → per-bucket counts, finite bounds ascending then +Inf.
    let mut bounds: Vec<Option<u64>> = by_bound.keys().copied().filter(Option::is_some).collect();
    bounds.sort();
    bounds.push(None);
    let mut buckets: Vec<(Option<u64>, u64)> = Vec::with_capacity(bounds.len());
    let mut previous = 0.0;
    for bound in bounds {
        let cumulative = by_bound.get(&bound).copied().unwrap_or(previous);
        let count = (cumulative - previous).max(0.0) as u64;
        buckets.push((bound, count));
        previous = cumulative;
    }
    let count = previous as u64;
    let max = buckets.iter().rev().find_map(|(b, _)| *b).unwrap_or(0);
    estimate_quantile(&buckets, count, 0, max, q)
}

/// A gauge's current value by exposition name (first label set wins —
/// gauges the daemon publishes are unlabelled).
pub fn gauge_value(samples: &[Sample], name: &str) -> Option<f64> {
    samples.iter().find(|s| s.name == name).map(|s| s.value)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::{Metrics, LATENCY_US_BOUNDS};

    fn snapshot(metrics: Metrics) -> MetricsSnapshot {
        MetricsSnapshot {
            metrics,
            uptime_us: 2_500_000,
        }
    }

    #[test]
    fn sanitize_maps_to_the_exposition_alphabet() {
        assert_eq!(sanitize_name("serve.http.requests"), "serve_http_requests");
        assert_eq!(sanitize_name("a-b c"), "a_b_c");
        assert_eq!(sanitize_name("9lives"), "_9lives");
        assert_eq!(sanitize_name(""), "_");
        assert_eq!(sanitize_name("already_ok:sub"), "already_ok:sub");
    }

    #[test]
    fn counters_render_with_total_suffix_and_help_type() {
        let mut m = Metrics::new();
        m.add("serve.http.requests", 7);
        let text = render_exposition(&snapshot(m));
        assert!(text.contains("# HELP serve_http_requests_total diffaudit counter\n"));
        assert!(text.contains("# TYPE serve_http_requests_total counter\n"));
        assert!(text.contains("\nserve_http_requests_total 7\n"));
    }

    #[test]
    fn labelled_registry_names_become_label_sets() {
        let mut m = Metrics::new();
        m.observe(
            "serve.http.latency.us{endpoint=\"jobs\",status=\"2xx\"}",
            &[10, 100],
            42,
        );
        let text = render_exposition(&snapshot(m));
        assert!(
            text.contains(
                "serve_http_latency_us_bucket{endpoint=\"jobs\",status=\"2xx\",le=\"100\"} 1\n"
            ),
            "{text}"
        );
        assert!(
            text.contains(
                "serve_http_latency_us_bucket{endpoint=\"jobs\",status=\"2xx\",le=\"+Inf\"} 1\n"
            ),
            "{text}"
        );
        assert!(text.contains("serve_http_latency_us_sum{endpoint=\"jobs\",status=\"2xx\"} 42\n"));
        assert!(text.contains("serve_http_latency_us_count{endpoint=\"jobs\",status=\"2xx\"} 1\n"));
    }

    #[test]
    fn histogram_buckets_are_cumulative_and_end_in_inf() {
        let mut m = Metrics::new();
        for v in [5u64, 50, 5_000_000_000] {
            m.observe("lat", &[10, 100], v);
        }
        let text = render_exposition(&snapshot(m));
        assert!(text.contains("lat_bucket{le=\"10\"} 1\n"), "{text}");
        assert!(text.contains("lat_bucket{le=\"100\"} 2\n"), "{text}");
        assert!(text.contains("lat_bucket{le=\"+Inf\"} 3\n"), "{text}");
        assert!(text.contains("lat_count 3\n"));
    }

    #[test]
    fn gauges_and_windows_render() {
        let mut m = Metrics::new();
        m.gauge_set("serve.queue.depth", 3);
        m.window_add("serve.http.reqs", 30);
        let text = render_exposition(&snapshot(m));
        assert!(text.contains("# TYPE serve_queue_depth gauge\n"));
        assert!(text.contains("\nserve_queue_depth 3\n"));
        // Window totals are counters; rates are gauges.
        assert!(text.contains("\nserve_http_reqs_total 30\n"), "{text}");
        assert!(text.contains("# TYPE serve_http_reqs_rate_1m gauge\n"));
        assert!(text.contains("# TYPE diffaudit_uptime_seconds gauge\n"));
        assert!(text.contains("\ndiffaudit_uptime_seconds 2.5\n"));
    }

    #[test]
    fn rendering_is_deterministic() {
        let build = || {
            let mut m = Metrics::new();
            m.add("b.counter", 2);
            m.add("a.counter", 1);
            m.gauge_set("depth", 4);
            m.observe("lat", &LATENCY_US_BOUNDS, 99);
            snapshot(m)
        };
        assert_eq!(render_exposition(&build()), render_exposition(&build()));
    }

    #[test]
    fn exposition_round_trips_through_the_parser() {
        let mut m = Metrics::new();
        m.add("serve.http.requests", 7);
        m.gauge_set("serve.queue.depth", 2);
        m.observe(
            "serve.http.latency.us{endpoint=\"jobs\",status=\"2xx\"}",
            &LATENCY_US_BOUNDS,
            5_000,
        );
        let text = render_exposition(&snapshot(m));
        let samples = parse_exposition(&text).expect("parses");
        assert_eq!(
            sum_samples(&samples, "serve_http_requests_total"),
            Some(7.0)
        );
        assert_eq!(gauge_value(&samples, "serve_queue_depth"), Some(2.0));
        let bucket = samples
            .iter()
            .find(|s| s.name == "serve_http_latency_us_bucket" && s.label("le") == Some("+Inf"))
            .expect("+Inf bucket");
        assert_eq!(bucket.value, 1.0);
        assert_eq!(bucket.label("endpoint"), Some("jobs"));
        let p = histogram_quantile(&samples, "serve_http_latency_us", 0.9).expect("quantile");
        assert!((0.0..=10_000_000.0).contains(&p), "{p}");
    }

    #[test]
    fn parser_rejects_malformed_lines_with_a_line_number() {
        assert!(parse_exposition("ok 1\n").is_ok());
        let err = parse_exposition("ok 1\nbroken{le=\"x\" 2\n").expect_err("malformed");
        assert!(err.contains("line 2"), "{err}");
        assert!(parse_exposition("9bad 1\n").is_err());
        assert!(parse_exposition("noval\n").is_err());
    }

    #[test]
    fn parser_handles_escapes_and_inf() {
        let samples = parse_exposition("m{path=\"a\\\\b\\\"c\"} +Inf\n").expect("parses");
        assert_eq!(samples[0].label("path"), Some("a\\b\"c"));
        assert!(samples[0].value.is_infinite());
    }

    #[test]
    fn process_cpu_gauge_re_exports_as_seconds_counter() {
        let mut m = Metrics::new();
        m.gauge_set(crate::res::PROCESS_CPU_US_GAUGE, 2_500_000);
        m.gauge_set(crate::res::PROCESS_RSS_GAUGE, 4096);
        let text = render_exposition(&snapshot(m));
        // CPU: counter family in float seconds, conventional name.
        assert!(
            text.contains("# TYPE diffaudit_process_cpu_seconds_total counter\n"),
            "{text}"
        );
        assert!(
            text.contains("\ndiffaudit_process_cpu_seconds_total 2.5\n"),
            "{text}"
        );
        // The raw µs gauge does not leak out alongside it.
        assert!(!text.contains("diffaudit_process_cpu_us"), "{text}");
        // RSS: plain gauge, name sanitized as-is.
        assert!(text.contains("# TYPE diffaudit_process_resident_bytes gauge\n"));
        assert!(text.contains("\ndiffaudit_process_resident_bytes 4096\n"));
    }

    /// Reconstruct the exposition line a sample came from.
    fn line_of(sample: &Sample) -> String {
        let labels = sample
            .labels
            .iter()
            .map(|(k, v)| format!("{k}=\"{}\"", escape_label_value(v)))
            .collect::<Vec<_>>()
            .join(",");
        let name = if labels.is_empty() {
            sample.name.clone()
        } else {
            format!("{}{{{labels}}}", sample.name)
        };
        format!("{name} {}", render_value(sample.value))
    }

    #[test]
    fn render_parse_render_is_a_fixpoint() {
        use std::collections::BTreeSet;
        let mut m = Metrics::new();
        m.add("pipeline.units", 14);
        m.add("serve.http.requests{endpoint=\"jobs\"}", 3);
        m.gauge_set("serve.queue.depth", -2);
        m.observe("lat", &LATENCY_US_BOUNDS, 5_000);
        m.window_add("reqs", 9);
        m.gauge_set(crate::res::PROCESS_CPU_US_GAUGE, 1_234_567);
        let first = render_exposition(&snapshot(m));
        let samples = parse_exposition(&first).expect("first parse");
        // Reconstructing each sample's line reproduces exactly the
        // non-comment lines of the original rendering…
        let rendered: BTreeSet<&str> = first
            .lines()
            .filter(|l| !l.starts_with('#') && !l.is_empty())
            .collect();
        let reconstructed: BTreeSet<String> = samples.iter().map(line_of).collect();
        assert_eq!(
            rendered,
            reconstructed.iter().map(String::as_str).collect(),
            "render→parse→render drifted"
        );
        // …and the reconstruction parses back to the same samples.
        let text: String = samples.iter().map(|s| line_of(s) + "\n").collect();
        assert_eq!(parse_exposition(&text).expect("second parse"), samples);
    }

    #[test]
    fn hostile_label_values_survive_the_round_trip() {
        // Raw value: a"b\c<newline>d — every escapable char at once.
        let raw = "a\"b\\c\nd";
        let mut m = Metrics::new();
        m.add(&format!("weird{{path=\"{raw}\"}}"), 1);
        let text = render_exposition(&snapshot(m));
        let samples = parse_exposition(&text).expect("parses");
        let sample = samples
            .iter()
            .find(|s| s.name == "weird_total")
            .expect("weird_total sample");
        assert_eq!(sample.label("path"), Some(raw));
        // And the reconstruction round-trips a second time.
        let again = parse_exposition(&format!("{}\n", line_of(sample))).expect("reparses");
        assert_eq!(again[0].label("path"), Some(raw));
    }

    #[test]
    fn empty_histograms_with_only_sum_and_count_parse_without_quantiles() {
        let text = "empty_sum 0\nempty_count 0\n";
        let samples = parse_exposition(text).expect("parses");
        assert_eq!(sum_samples(&samples, "empty_count"), Some(0.0));
        // No _bucket series → no quantile, not a panic or a zero guess.
        assert_eq!(histogram_quantile(&samples, "empty", 0.5), None);
    }

    #[test]
    fn overflow_only_histogram_quantile_collapses_to_the_envelope() {
        // Every observation above every bound: the only bucket is +Inf.
        let text = "only_bucket{le=\"+Inf\"} 3\nonly_sum 999\nonly_count 3\n";
        let samples = parse_exposition(text).expect("parses");
        // With no finite bound the envelope is [0, 0]; the estimate
        // degrades to its only defensible value instead of erroring.
        assert_eq!(histogram_quantile(&samples, "only", 0.5), Some(0.0));
        assert_eq!(histogram_quantile(&samples, "only", 0.99), Some(0.0));
    }

    #[test]
    fn histogram_quantile_decumulates_buckets() {
        let text = "\
lat_bucket{le=\"10\"} 5
lat_bucket{le=\"100\"} 10
lat_bucket{le=\"+Inf\"} 10
lat_sum 300
lat_count 10
";
        let samples = parse_exposition(text).expect("parses");
        let p50 = histogram_quantile(&samples, "lat", 0.5).expect("p50");
        assert!((0.0..=10.0).contains(&p50), "{p50}");
        let p99 = histogram_quantile(&samples, "lat", 0.99).expect("p99");
        assert!((10.0..=100.0).contains(&p99), "{p99}");
    }
}
