//! Typed counters, fixed-bucket histograms, and span timing aggregates.
//!
//! Everything here is plain data guarded by the recorder's lock; the
//! exported [`MetricsSnapshot`] is an owned copy so report rendering and
//! JSON export never hold the lock.

use crate::res::SpanResources;
use diffaudit_json::Json;
use std::collections::BTreeMap;
use std::time::Instant;

/// Fixed upper-bound buckets for byte volumes (64 B … 4 MiB, then overflow).
pub const BYTE_BOUNDS: [u64; 9] = [
    64, 256, 1_024, 4_096, 16_384, 65_536, 262_144, 1_048_576, 4_194_304,
];

/// Fixed upper-bound buckets for record counts per container.
pub const RECORD_BOUNDS: [u64; 8] = [1, 4, 16, 64, 256, 1_024, 4_096, 16_384];

/// Fixed upper-bound buckets for latencies in microseconds (10 µs … 10 s).
pub const LATENCY_US_BOUNDS: [u64; 7] = [10, 100, 1_000, 10_000, 100_000, 1_000_000, 10_000_000];

/// A histogram over fixed upper-bound buckets plus an overflow bucket.
///
/// Bucket semantics: a value `v` lands in the first bucket whose bound
/// satisfies `v <= bound`; values above every bound land in the overflow
/// bucket. Bounds are fixed at creation so merged snapshots stay comparable
/// across runs — the property a perf baseline needs.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Histogram {
    bounds: Vec<u64>,
    /// `bounds.len() + 1` entries; the last is the overflow bucket.
    counts: Vec<u64>,
    count: u64,
    sum: u64,
    min: u64,
    max: u64,
}

impl Histogram {
    /// Empty histogram over `bounds` (must be ascending).
    pub fn new(bounds: &[u64]) -> Histogram {
        Histogram {
            bounds: bounds.to_vec(),
            counts: vec![0; bounds.len() + 1],
            count: 0,
            sum: 0,
            min: u64::MAX,
            max: 0,
        }
    }

    /// Record one observation.
    pub fn record(&mut self, value: u64) {
        let idx = self
            .bounds
            .iter()
            .position(|&b| value <= b)
            .unwrap_or(self.bounds.len());
        if let Some(slot) = self.counts.get_mut(idx) {
            *slot += 1;
        }
        self.count += 1;
        self.sum = self.sum.saturating_add(value);
        self.min = self.min.min(value);
        self.max = self.max.max(value);
    }

    /// Total observations.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of observations (saturating).
    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// Smallest observation (`None` when empty).
    pub fn min(&self) -> Option<u64> {
        (self.count > 0).then_some(self.min)
    }

    /// Largest observation (`None` when empty).
    pub fn max(&self) -> Option<u64> {
        (self.count > 0).then_some(self.max)
    }

    /// `(upper_bound, count)` per bucket; the final entry has `None` as its
    /// bound — the overflow bucket.
    pub fn buckets(&self) -> impl Iterator<Item = (Option<u64>, u64)> + '_ {
        self.bounds
            .iter()
            .map(|&b| Some(b))
            .chain(std::iter::once(None))
            .zip(self.counts.iter().copied())
    }

    /// Bucket-based estimate of the `q`-quantile (see [`estimate_quantile`]).
    pub fn quantile(&self, q: f64) -> Option<f64> {
        let buckets: Vec<(Option<u64>, u64)> = self.buckets().collect();
        estimate_quantile(&buckets, self.count, self.min()?, self.max()?, q)
    }

    /// Merge another histogram into this one. With identical bounds (the
    /// common case — every call site uses one of the fixed bound tables)
    /// the merge is exact: bucket-wise count addition, saturating sum, and
    /// min/max folding, so merging per-thread histograms at join yields the
    /// same registry the serial path builds. Mismatched bounds degrade
    /// gracefully: each foreign bucket is re-bucketed at its upper bound
    /// (the overflow bucket at the observed max), preserving count, sum,
    /// and extrema exactly and bucket placement approximately.
    pub fn merge_from(&mut self, other: &Histogram) {
        if other.count == 0 {
            return;
        }
        if self.bounds == other.bounds {
            for (slot, n) in self.counts.iter_mut().zip(other.counts.iter()) {
                *slot = slot.saturating_add(*n);
            }
        } else {
            for (bound, n) in other.buckets() {
                let value = bound.unwrap_or(other.max);
                let idx = self
                    .bounds
                    .iter()
                    .position(|&b| value <= b)
                    .unwrap_or(self.bounds.len());
                if let Some(slot) = self.counts.get_mut(idx) {
                    *slot = slot.saturating_add(n);
                }
            }
        }
        self.count = self.count.saturating_add(other.count);
        self.sum = self.sum.saturating_add(other.sum);
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }

    /// JSON representation (part of the `--metrics-out` document).
    pub fn to_json(&self) -> Json {
        let buckets: Vec<Json> = self
            .buckets()
            .map(|(bound, count)| {
                Json::obj()
                    .with(
                        "le",
                        bound.map_or(Json::Null, |b| Json::int(b.min(i64::MAX as u64) as i64)),
                    )
                    .with("count", Json::int(count.min(i64::MAX as u64) as i64))
            })
            .collect();
        Json::obj()
            .with("count", Json::int(self.count.min(i64::MAX as u64) as i64))
            .with("sum", Json::int(self.sum.min(i64::MAX as u64) as i64))
            .with(
                "min",
                self.min()
                    .map_or(Json::Null, |v| Json::int(v.min(i64::MAX as u64) as i64)),
            )
            .with(
                "max",
                self.max()
                    .map_or(Json::Null, |v| Json::int(v.min(i64::MAX as u64) as i64)),
            )
            .with("buckets", Json::Arr(buckets))
    }
}

/// Estimate the `q`-quantile of a bucketed distribution by linear
/// interpolation inside the bucket containing the target rank.
///
/// `buckets` are ascending `(upper_bound, count)` pairs ending with the
/// `None` overflow bucket — exactly what [`Histogram::buckets`] yields and
/// what a parsed `diffaudit-obs/v1` document carries. Edges: the first
/// bucket's lower edge is `min`, the overflow bucket's upper edge is `max`,
/// and every interior edge is the neighbouring bound; the estimate is
/// clamped to `[min, max]`, which makes single-observation and
/// single-bucket distributions exact. The target rank is `q * count`, so
/// `q = 1.0` lands on the last observation.
///
/// Returns `None` when the distribution is empty or `q` is outside
/// `(0, 1]`. When the bucket counts undershoot `count` (a conservation
/// violation in a hand-edited document) the estimate degrades to `max`
/// rather than failing.
pub fn estimate_quantile(
    buckets: &[(Option<u64>, u64)],
    count: u64,
    min: u64,
    max: u64,
    q: f64,
) -> Option<f64> {
    if count == 0 || !(q > 0.0 && q <= 1.0) {
        return None;
    }
    let (min_f, max_f) = (min as f64, max as f64);
    let target = q * count as f64;
    let mut cum = 0u64;
    let mut lower = min_f;
    for (bound, n) in buckets {
        let upper = bound.map_or(max_f, |b| b as f64);
        if *n > 0 {
            let next_cum = cum + n;
            if target <= next_cum as f64 {
                let lo = lower.clamp(min_f, max_f);
                let hi = upper.clamp(lo, max_f);
                let frac = (target - cum as f64) / *n as f64;
                return Some(lo + frac * (hi - lo));
            }
            cum = next_cum;
        }
        lower = upper.max(lower);
    }
    Some(max_f)
}

/// Aggregate wall-time statistics for one span name.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SpanStats {
    /// Completed spans under this name.
    pub count: u64,
    /// Total wall time, microseconds.
    pub total_us: u64,
    /// Shortest single span, microseconds.
    pub min_us: u64,
    /// Longest single span, microseconds.
    pub max_us: u64,
}

impl SpanStats {
    fn record(&mut self, dur_us: u64) {
        if self.count == 0 {
            self.min_us = dur_us;
        } else {
            self.min_us = self.min_us.min(dur_us);
        }
        self.count += 1;
        self.total_us = self.total_us.saturating_add(dur_us);
        self.max_us = self.max_us.max(dur_us);
    }

    /// Merge another aggregate into this one (counts and totals add,
    /// extrema fold). An empty side is the identity, so the merge is
    /// associative and commutative — per-thread span stats can join in any
    /// order and still equal the serial aggregate.
    pub fn merge_from(&mut self, other: &SpanStats) {
        if other.count == 0 {
            return;
        }
        if self.count == 0 {
            *self = *other;
            return;
        }
        self.count = self.count.saturating_add(other.count);
        self.total_us = self.total_us.saturating_add(other.total_us);
        self.min_us = self.min_us.min(other.min_us);
        self.max_us = self.max_us.max(other.max_us);
    }

    /// JSON representation.
    pub fn to_json(&self) -> Json {
        Json::obj()
            .with("count", Json::int(self.count.min(i64::MAX as u64) as i64))
            .with(
                "totalUs",
                Json::int(self.total_us.min(i64::MAX as u64) as i64),
            )
            .with("minUs", Json::int(self.min_us.min(i64::MAX as u64) as i64))
            .with("maxUs", Json::int(self.max_us.min(i64::MAX as u64) as i64))
    }
}

/// A point-in-time level with min/max watermarks.
///
/// Counters only go up; a gauge tracks a level that moves both ways —
/// queue depth, jobs in flight, busy workers. `set` is for a single
/// authoritative writer (the daemon updating depth under the queue lock);
/// mergeable per-thread/job recorders should use balanced `add`/`sub`
/// pairs, because merging *sums* each side's net movement. A gauge with
/// zero samples is the merge identity, so — like counters, histograms,
/// and span stats — gauges fold associatively and commutatively at join.
/// Watermarks fold by min/max of each side's own watermarks, which is the
/// tightest envelope derivable without replaying the interleaving.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Gauge {
    value: i64,
    min: i64,
    max: i64,
    samples: u64,
}

impl Default for Gauge {
    fn default() -> Self {
        Gauge::new()
    }
}

impl Gauge {
    /// A gauge at zero with no samples (the merge identity).
    pub fn new() -> Gauge {
        Gauge {
            value: 0,
            min: 0,
            max: 0,
            samples: 0,
        }
    }

    fn touch(&mut self) {
        if self.samples == 0 {
            self.min = self.value;
            self.max = self.value;
        } else {
            self.min = self.min.min(self.value);
            self.max = self.max.max(self.value);
        }
        self.samples += 1;
    }

    /// Set the level outright (authoritative-writer form).
    pub fn set(&mut self, value: i64) {
        self.value = value;
        self.touch();
    }

    /// Move the level by `delta` (mergeable form; pair with [`Gauge::sub`]).
    pub fn add(&mut self, delta: i64) {
        self.value = self.value.saturating_add(delta);
        self.touch();
    }

    /// Move the level down by `delta`.
    pub fn sub(&mut self, delta: i64) {
        self.value = self.value.saturating_sub(delta);
        self.touch();
    }

    /// The current level.
    pub fn value(&self) -> i64 {
        self.value
    }

    /// Lowest level seen (`None` before any sample).
    pub fn min(&self) -> Option<i64> {
        (self.samples > 0).then_some(self.min)
    }

    /// Highest level seen (`None` before any sample).
    pub fn max(&self) -> Option<i64> {
        (self.samples > 0).then_some(self.max)
    }

    /// How many times the gauge moved.
    pub fn samples(&self) -> u64 {
        self.samples
    }

    /// Merge another gauge into this one: values (net movements) add,
    /// watermarks fold, an empty side is the identity — associative and
    /// commutative, matching the other registry types.
    pub fn merge_from(&mut self, other: &Gauge) {
        if other.samples == 0 {
            return;
        }
        if self.samples == 0 {
            *self = *other;
            return;
        }
        self.value = self.value.saturating_add(other.value);
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
        self.samples = self.samples.saturating_add(other.samples);
    }

    /// JSON representation.
    pub fn to_json(&self) -> Json {
        Json::obj()
            .with("value", Json::int(self.value))
            .with("min", self.min().map_or(Json::Null, Json::int))
            .with("max", self.max().map_or(Json::Null, Json::int))
            .with(
                "samples",
                Json::int(self.samples.min(i64::MAX as u64) as i64),
            )
    }
}

/// Wall-clock seconds covered by one sliding-window slot.
pub const WINDOW_SLOT_SECS: u64 = 5;

/// Slots per sliding window: 60 × 5 s = a 5-minute horizon.
pub const WINDOW_SLOTS: usize = 60;

/// Slots that make up the trailing 1-minute sub-window.
const RATE_1M_SLOTS: u64 = 60 / WINDOW_SLOT_SECS;

/// A counter with a sliding 5-minute window behind the running total.
///
/// The window is a ring of [`WINDOW_SLOTS`] fixed-duration slots indexed
/// by absolute slot number since the counter was created. Rotation is
/// logical: writes zero any slots that elapsed since the last write, and
/// reads simply ignore slots whose absolute index has fallen off the
/// horizon — so `&self` reads never mutate and a cloned snapshot keeps
/// answering correctly. `total` is monotonic (exposition-safe); the
/// 1m/5m rates divide the live slot sums by the sub-window's wall span.
///
/// Merging aligns the other side's slots by age relative to each side's
/// own clock: totals merge exactly, slot phase is approximate to ±1 slot
/// — the same "exact in aggregate, approximate in placement" contract as
/// [`Histogram::merge_from`] with mismatched bounds.
#[derive(Debug, Clone)]
pub struct WindowedCounter {
    start: Instant,
    slots: Vec<u64>,
    /// Absolute slot index the ring has been rotated up to.
    head: u64,
    total: u64,
}

impl Default for WindowedCounter {
    fn default() -> Self {
        WindowedCounter::new()
    }
}

impl WindowedCounter {
    /// An empty windowed counter; the window clock starts now.
    pub fn new() -> WindowedCounter {
        WindowedCounter {
            start: Instant::now(),
            slots: vec![0; WINDOW_SLOTS],
            head: 0,
            total: 0,
        }
    }

    fn slot_now(&self) -> u64 {
        self.start.elapsed().as_secs() / WINDOW_SLOT_SECS
    }

    fn rotate_to(&mut self, now: u64) {
        if now <= self.head {
            return;
        }
        let step = (now - self.head).min(WINDOW_SLOTS as u64);
        for k in 1..=step {
            let idx = ((self.head + k) % WINDOW_SLOTS as u64) as usize;
            if let Some(slot) = self.slots.get_mut(idx) {
                *slot = 0;
            }
        }
        self.head = now;
    }

    /// The count recorded in absolute slot `j`, zero if `j` has fallen off
    /// the horizon (or lies in the future of the last rotation).
    fn slot_value(&self, j: u64) -> u64 {
        if j <= self.head && j + WINDOW_SLOTS as u64 > self.head {
            self.slots
                .get((j % WINDOW_SLOTS as u64) as usize)
                .copied()
                .unwrap_or(0)
        } else {
            0
        }
    }

    fn sum_last(&self, k: u64, now: u64) -> u64 {
        let first = now.saturating_sub(k.saturating_sub(1));
        (first..=now).map(|j| self.slot_value(j)).sum()
    }

    /// Add `n` to the current slot and the running total.
    pub fn add(&mut self, n: u64) {
        let now = self.slot_now();
        self.rotate_to(now);
        if let Some(slot) = self.slots.get_mut((now % WINDOW_SLOTS as u64) as usize) {
            *slot = slot.saturating_add(n);
        }
        self.total = self.total.saturating_add(n);
    }

    /// Monotonic since-creation total.
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Events per second over the trailing minute.
    pub fn rate_1m(&self) -> f64 {
        self.sum_last(RATE_1M_SLOTS, self.slot_now()) as f64
            / (RATE_1M_SLOTS * WINDOW_SLOT_SECS) as f64
    }

    /// Events per second over the full window (5 minutes).
    pub fn rate_5m(&self) -> f64 {
        self.sum_last(WINDOW_SLOTS as u64, self.slot_now()) as f64
            / (WINDOW_SLOTS as u64 * WINDOW_SLOT_SECS) as f64
    }

    /// Merge another windowed counter: totals add exactly; the other
    /// side's live slots land at the same *age* on this side's clock.
    pub fn merge_from(&mut self, other: &WindowedCounter) {
        let now = self.slot_now();
        self.rotate_to(now);
        let other_now = other.slot_now();
        for age in 0..WINDOW_SLOTS as u64 {
            let Some(j) = other_now.checked_sub(age) else {
                break;
            };
            let value = other.slot_value(j);
            if value == 0 {
                continue;
            }
            let Some(target) = now.checked_sub(age) else {
                continue;
            };
            if let Some(slot) = self.slots.get_mut((target % WINDOW_SLOTS as u64) as usize) {
                *slot = slot.saturating_add(value);
            }
        }
        self.total = self.total.saturating_add(other.total);
    }

    /// JSON representation (rates computed at render time).
    pub fn to_json(&self) -> Json {
        Json::obj()
            .with("kind", Json::str("counter"))
            .with("total", Json::int(self.total.min(i64::MAX as u64) as i64))
            .with("rate1m", Json::float(self.rate_1m()))
            .with("rate5m", Json::float(self.rate_5m()))
    }
}

/// A histogram with a sliding 5-minute window behind the cumulative one.
///
/// Same ring discipline as [`WindowedCounter`], with a [`Histogram`] per
/// slot; the `cumulative` histogram keeps the monotonic since-creation
/// distribution the exposition endpoint serves, while window reads merge
/// the live slots into a throwaway histogram to answer 1m/5m quantiles.
#[derive(Debug, Clone)]
pub struct WindowedHistogram {
    start: Instant,
    slots: Vec<Histogram>,
    head: u64,
    cumulative: Histogram,
}

impl WindowedHistogram {
    /// An empty windowed histogram over `bounds`.
    pub fn new(bounds: &[u64]) -> WindowedHistogram {
        WindowedHistogram {
            start: Instant::now(),
            slots: (0..WINDOW_SLOTS).map(|_| Histogram::new(bounds)).collect(),
            head: 0,
            cumulative: Histogram::new(bounds),
        }
    }

    fn slot_now(&self) -> u64 {
        self.start.elapsed().as_secs() / WINDOW_SLOT_SECS
    }

    fn rotate_to(&mut self, now: u64) {
        if now <= self.head {
            return;
        }
        let step = (now - self.head).min(WINDOW_SLOTS as u64);
        let bounds = self.cumulative.bounds.clone();
        for k in 1..=step {
            let idx = ((self.head + k) % WINDOW_SLOTS as u64) as usize;
            if let Some(slot) = self.slots.get_mut(idx) {
                *slot = Histogram::new(&bounds);
            }
        }
        self.head = now;
    }

    fn slot_live(&self, j: u64) -> Option<&Histogram> {
        if j <= self.head && j + WINDOW_SLOTS as u64 > self.head {
            self.slots.get((j % WINDOW_SLOTS as u64) as usize)
        } else {
            None
        }
    }

    /// Record one observation into the current slot and the cumulative
    /// distribution.
    pub fn record(&mut self, value: u64) {
        let now = self.slot_now();
        self.rotate_to(now);
        if let Some(slot) = self.slots.get_mut((now % WINDOW_SLOTS as u64) as usize) {
            slot.record(value);
        }
        self.cumulative.record(value);
    }

    /// The monotonic since-creation distribution.
    pub fn cumulative(&self) -> &Histogram {
        &self.cumulative
    }

    /// The merged distribution of the trailing `k` slots (capped at the
    /// window size).
    fn window_hist(&self, k: u64) -> Histogram {
        let now = self.slot_now();
        let mut merged = Histogram::new(&self.cumulative.bounds);
        let first = now.saturating_sub(k.min(WINDOW_SLOTS as u64).saturating_sub(1));
        for j in first..=now {
            if let Some(slot) = self.slot_live(j) {
                merged.merge_from(slot);
            }
        }
        merged
    }

    /// Observations per second over the trailing minute.
    pub fn rate_1m(&self) -> f64 {
        self.window_hist(RATE_1M_SLOTS).count() as f64 / (RATE_1M_SLOTS * WINDOW_SLOT_SECS) as f64
    }

    /// Observations per second over the full window.
    pub fn rate_5m(&self) -> f64 {
        self.window_hist(WINDOW_SLOTS as u64).count() as f64
            / (WINDOW_SLOTS as u64 * WINDOW_SLOT_SECS) as f64
    }

    /// The `q`-quantile over the full 5-minute window (`None` when the
    /// window is empty).
    pub fn window_quantile(&self, q: f64) -> Option<f64> {
        self.window_hist(WINDOW_SLOTS as u64).quantile(q)
    }

    /// Merge another windowed histogram (age-aligned slots, exact
    /// cumulative merge — see [`WindowedCounter::merge_from`]).
    pub fn merge_from(&mut self, other: &WindowedHistogram) {
        let now = self.slot_now();
        self.rotate_to(now);
        let other_now = other.slot_now();
        for age in 0..WINDOW_SLOTS as u64 {
            let Some(j) = other_now.checked_sub(age) else {
                break;
            };
            let Some(source) = other.slot_live(j) else {
                continue;
            };
            if source.count() == 0 {
                continue;
            }
            let Some(target) = now.checked_sub(age) else {
                continue;
            };
            if let Some(slot) = self.slots.get_mut((target % WINDOW_SLOTS as u64) as usize) {
                slot.merge_from(source);
            }
        }
        self.cumulative.merge_from(&other.cumulative);
    }

    /// JSON representation (window stats computed at render time).
    pub fn to_json(&self) -> Json {
        Json::obj()
            .with("kind", Json::str("histogram"))
            .with(
                "count",
                Json::int(self.cumulative.count().min(i64::MAX as u64) as i64),
            )
            .with("rate1m", Json::float(self.rate_1m()))
            .with("rate5m", Json::float(self.rate_5m()))
            .with(
                "p50",
                self.window_quantile(0.5).map_or(Json::Null, Json::float),
            )
            .with(
                "p90",
                self.window_quantile(0.9).map_or(Json::Null, Json::float),
            )
            .with(
                "p99",
                self.window_quantile(0.99).map_or(Json::Null, Json::float),
            )
    }
}

/// A named sliding-window series: event rate or value distribution.
#[derive(Debug, Clone)]
pub enum Windowed {
    /// An event-rate series ([`WindowedCounter`]).
    Counter(WindowedCounter),
    /// A value-distribution series ([`WindowedHistogram`]).
    Histogram(WindowedHistogram),
}

impl Windowed {
    /// JSON representation, tagged by `kind`.
    pub fn to_json(&self) -> Json {
        match self {
            Windowed::Counter(w) => w.to_json(),
            Windowed::Histogram(w) => w.to_json(),
        }
    }
}

/// Aggregated resource attribution for one span name: the fold of every
/// completed span's [`SpanResources`] under that name.
///
/// Like every registry aggregate the merge is associative and commutative
/// with the empty stats as identity: counts, CPU, deltas, and bytes add;
/// peaks take the max — so absorbing per-thread registries at join yields
/// the serial run's totals.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ResStats {
    /// Completed spans folded in.
    pub count: u64,
    /// Highest RSS observed under any of the spans.
    pub peak_rss_bytes: u64,
    /// Net RSS movement across all spans (signed; stages can release).
    pub rss_delta_bytes: i64,
    /// Total CPU time (utime + stime) consumed under the spans.
    pub cpu_us: u64,
    /// Total logical bytes processed (`{span}.bytes.in` counter growth).
    pub bytes_in: u64,
}

impl ResStats {
    /// Fold one completed span's resources in.
    pub fn record(&mut self, res: &SpanResources) {
        self.count += 1;
        self.peak_rss_bytes = self.peak_rss_bytes.max(res.peak_rss_bytes);
        self.rss_delta_bytes = self.rss_delta_bytes.saturating_add(res.rss_delta_bytes);
        self.cpu_us = self.cpu_us.saturating_add(res.cpu_us);
        self.bytes_in = self.bytes_in.saturating_add(res.bytes_in);
    }

    /// Merge another aggregate into this one.
    pub fn merge_from(&mut self, other: &ResStats) {
        self.count += other.count;
        self.peak_rss_bytes = self.peak_rss_bytes.max(other.peak_rss_bytes);
        self.rss_delta_bytes = self.rss_delta_bytes.saturating_add(other.rss_delta_bytes);
        self.cpu_us = self.cpu_us.saturating_add(other.cpu_us);
        self.bytes_in = self.bytes_in.saturating_add(other.bytes_in);
    }

    /// JSON representation (the snapshot's `resources` entry).
    pub fn to_json(&self) -> Json {
        Json::obj()
            .with("count", Json::int(self.count.min(i64::MAX as u64) as i64))
            .with(
                "peakRssB",
                Json::int(self.peak_rss_bytes.min(i64::MAX as u64) as i64),
            )
            .with("rssDeltaB", Json::int(self.rss_delta_bytes))
            .with("cpuUs", Json::int(self.cpu_us.min(i64::MAX as u64) as i64))
            .with(
                "bytesIn",
                Json::int(self.bytes_in.min(i64::MAX as u64) as i64),
            )
    }
}

/// The live metric registry: named counters, histograms, span stats,
/// gauges, sliding-window series, and resource attributions.
#[derive(Debug, Clone, Default)]
pub struct Metrics {
    counters: BTreeMap<String, u64>,
    histograms: BTreeMap<String, Histogram>,
    spans: BTreeMap<String, SpanStats>,
    gauges: BTreeMap<String, Gauge>,
    windows: BTreeMap<String, Windowed>,
    resources: BTreeMap<String, ResStats>,
}

impl Metrics {
    /// Empty registry.
    pub fn new() -> Metrics {
        Metrics::default()
    }

    /// Add `n` to counter `name` (created at zero on first use).
    pub fn add(&mut self, name: &str, n: u64) {
        *self.counters.entry(name.to_string()).or_insert(0) += n;
    }

    /// Record `value` into histogram `name`, creating it over `bounds` on
    /// first use. (Later calls keep the original bounds.)
    pub fn observe(&mut self, name: &str, bounds: &[u64], value: u64) {
        self.histograms
            .entry(name.to_string())
            .or_insert_with(|| Histogram::new(bounds))
            .record(value);
    }

    /// Record a completed span's duration.
    pub fn span_done(&mut self, name: &str, dur_us: u64) {
        self.spans
            .entry(name.to_string())
            .or_default()
            .record(dur_us);
    }

    /// Fold a completed span's resource attribution into `name`'s stats.
    pub fn res_done(&mut self, name: &str, res: &SpanResources) {
        self.resources
            .entry(name.to_string())
            .or_default()
            .record(res);
    }

    /// Replace `name`'s resource stats wholesale (the recorder uses this to
    /// inject the synthetic whole-process entry at snapshot time).
    pub fn res_set(&mut self, name: &str, stats: ResStats) {
        self.resources.insert(name.to_string(), stats);
    }

    /// Set gauge `name` to `value` (created on first use).
    pub fn gauge_set(&mut self, name: &str, value: i64) {
        self.gauges.entry(name.to_string()).or_default().set(value);
    }

    /// Move gauge `name` by `delta`.
    pub fn gauge_add(&mut self, name: &str, delta: i64) {
        self.gauges.entry(name.to_string()).or_default().add(delta);
    }

    /// Move gauge `name` down by `delta`.
    pub fn gauge_sub(&mut self, name: &str, delta: i64) {
        self.gauges.entry(name.to_string()).or_default().sub(delta);
    }

    /// Add `n` to the sliding-window counter `name` (created on first
    /// use). A no-op when `name` already exists as a window *histogram* —
    /// a name may carry one window kind only.
    pub fn window_add(&mut self, name: &str, n: u64) {
        match self
            .windows
            .entry(name.to_string())
            .or_insert_with(|| Windowed::Counter(WindowedCounter::new()))
        {
            Windowed::Counter(w) => w.add(n),
            Windowed::Histogram(_) => {}
        }
    }

    /// Record `value` into the sliding-window histogram `name`, creating
    /// it over `bounds` on first use. A no-op when `name` already exists
    /// as a window *counter*.
    pub fn window_observe(&mut self, name: &str, bounds: &[u64], value: u64) {
        match self
            .windows
            .entry(name.to_string())
            .or_insert_with(|| Windowed::Histogram(WindowedHistogram::new(bounds)))
        {
            Windowed::Histogram(w) => w.record(value),
            Windowed::Counter(_) => {}
        }
    }

    /// Merge another registry into this one: counters add, histograms
    /// merge bucket-wise ([`Histogram::merge_from`]), span stats fold
    /// ([`SpanStats::merge_from`]). This is the join step of the
    /// per-thread recorder design — each worker accumulates into a private
    /// [`Metrics`] and the batches merge associatively here, so the final
    /// snapshot is independent of thread count and join order.
    pub fn merge_from(&mut self, other: Metrics) {
        for (name, value) in other.counters {
            *self.counters.entry(name).or_insert(0) += value;
        }
        for (name, histogram) in other.histograms {
            match self.histograms.entry(name) {
                std::collections::btree_map::Entry::Occupied(mut entry) => {
                    entry.get_mut().merge_from(&histogram);
                }
                std::collections::btree_map::Entry::Vacant(entry) => {
                    entry.insert(histogram);
                }
            }
        }
        for (name, stats) in other.spans {
            self.spans.entry(name).or_default().merge_from(&stats);
        }
        for (name, gauge) in other.gauges {
            self.gauges.entry(name).or_default().merge_from(&gauge);
        }
        for (name, stats) in other.resources {
            self.resources.entry(name).or_default().merge_from(&stats);
        }
        for (name, window) in other.windows {
            match self.windows.entry(name) {
                std::collections::btree_map::Entry::Occupied(mut entry) => {
                    // Kinds must match to merge; a mismatched name keeps
                    // the existing series (disciplined names never collide).
                    match (entry.get_mut(), &window) {
                        (Windowed::Counter(a), Windowed::Counter(b)) => a.merge_from(b),
                        (Windowed::Histogram(a), Windowed::Histogram(b)) => a.merge_from(b),
                        _ => {}
                    }
                }
                std::collections::btree_map::Entry::Vacant(entry) => {
                    entry.insert(window);
                }
            }
        }
    }

    /// Current value of counter `name` (zero when absent).
    pub fn counter(&self, name: &str) -> u64 {
        self.counters.get(name).copied().unwrap_or(0)
    }

    /// Named counters in sorted order.
    pub fn counters(&self) -> impl Iterator<Item = (&str, u64)> + '_ {
        self.counters.iter().map(|(k, &v)| (k.as_str(), v))
    }

    /// Named histograms in sorted order.
    pub fn histograms(&self) -> impl Iterator<Item = (&str, &Histogram)> + '_ {
        self.histograms.iter().map(|(k, v)| (k.as_str(), v))
    }

    /// Named span stats in sorted order.
    pub fn spans(&self) -> impl Iterator<Item = (&str, &SpanStats)> + '_ {
        self.spans.iter().map(|(k, v)| (k.as_str(), v))
    }

    /// Gauge `name`, if it has been touched.
    pub fn gauge(&self, name: &str) -> Option<&Gauge> {
        self.gauges.get(name)
    }

    /// Named gauges in sorted order.
    pub fn gauges(&self) -> impl Iterator<Item = (&str, &Gauge)> + '_ {
        self.gauges.iter().map(|(k, v)| (k.as_str(), v))
    }

    /// Sliding-window series `name`, if present.
    pub fn window(&self, name: &str) -> Option<&Windowed> {
        self.windows.get(name)
    }

    /// Named sliding-window series in sorted order.
    pub fn windows(&self) -> impl Iterator<Item = (&str, &Windowed)> + '_ {
        self.windows.iter().map(|(k, v)| (k.as_str(), v))
    }

    /// Resource stats for span `name`, if any were recorded.
    pub fn resource(&self, name: &str) -> Option<&ResStats> {
        self.resources.get(name)
    }

    /// Named resource stats in sorted order.
    pub fn resources(&self) -> impl Iterator<Item = (&str, &ResStats)> + '_ {
        self.resources.iter().map(|(k, v)| (k.as_str(), v))
    }
}

/// An owned copy of the registry at one instant, plus run uptime.
#[derive(Debug, Clone)]
pub struct MetricsSnapshot {
    /// The copied registry.
    pub metrics: Metrics,
    /// Microseconds since the recorder started.
    pub uptime_us: u64,
}

impl MetricsSnapshot {
    /// The `--metrics-out` document.
    pub fn to_json(&self) -> Json {
        let mut counters = Json::obj();
        for (name, value) in self.metrics.counters() {
            counters.set(name, Json::int(value.min(i64::MAX as u64) as i64));
        }
        let mut histograms = Json::obj();
        for (name, h) in self.metrics.histograms() {
            histograms.set(name, h.to_json());
        }
        let mut spans = Json::obj();
        for (name, s) in self.metrics.spans() {
            spans.set(name, s.to_json());
        }
        let mut doc = Json::obj()
            .with("schema", Json::str("diffaudit-obs/v1"))
            .with(
                "uptimeUs",
                Json::int(self.uptime_us.min(i64::MAX as u64) as i64),
            )
            .with("counters", counters)
            .with("histograms", histograms)
            .with("spans", spans);
        // The batch pipeline records no gauges or windows; emitting these
        // keys only when populated keeps `--metrics-out` documents
        // byte-identical to the pre-telemetry tool's.
        if self.metrics.gauges().next().is_some() {
            let mut gauges = Json::obj();
            for (name, g) in self.metrics.gauges() {
                gauges.set(name, g.to_json());
            }
            doc.set("gauges", gauges);
        }
        if self.metrics.windows().next().is_some() {
            let mut windows = Json::obj();
            for (name, w) in self.metrics.windows() {
                windows.set(name, w.to_json());
            }
            doc.set("windows", windows);
        }
        // Same contract as gauges/windows: `resources` appears only when
        // profiling actually recorded something, so an unprofiled run's
        // document stays byte-identical.
        if self.metrics.resources().next().is_some() {
            let mut resources = Json::obj();
            for (name, r) in self.metrics.resources() {
                resources.set(name, r.to_json());
            }
            doc.set("resources", resources);
        }
        doc
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn histogram_bucket_boundaries_are_inclusive_upper() {
        let mut h = Histogram::new(&[10, 100]);
        h.record(0);
        h.record(10); // exactly on a bound → that bucket
        h.record(11);
        h.record(100);
        h.record(101); // overflow
        let buckets: Vec<(Option<u64>, u64)> = h.buckets().collect();
        assert_eq!(buckets, vec![(Some(10), 2), (Some(100), 2), (None, 1)]);
        assert_eq!(h.count(), 5);
        assert_eq!(h.sum(), 222);
        assert_eq!(h.min(), Some(0));
        assert_eq!(h.max(), Some(101));
    }

    #[test]
    fn empty_histogram_has_no_extrema() {
        let h = Histogram::new(&BYTE_BOUNDS);
        assert_eq!(h.min(), None);
        assert_eq!(h.max(), None);
        assert_eq!(h.count(), 0);
    }

    #[test]
    fn quantile_interpolates_within_buckets() {
        // 100 observations spread 1..=100 over bounds [25, 50, 75, 100]:
        // 25 per bucket, so the distribution is uniform and quantiles are
        // (approximately) the identity.
        let mut h = Histogram::new(&[25, 50, 75, 100]);
        for v in 1..=100 {
            h.record(v);
        }
        let p50 = h.quantile(0.5).unwrap();
        let p90 = h.quantile(0.9).unwrap();
        let p99 = h.quantile(0.99).unwrap();
        assert!((p50 - 50.0).abs() <= 1.0, "p50 = {p50}");
        assert!((p90 - 90.0).abs() <= 1.0, "p90 = {p90}");
        assert!((p99 - 99.0).abs() <= 1.0, "p99 = {p99}");
        // q = 1.0 is the maximum exactly.
        assert_eq!(h.quantile(1.0), Some(100.0));
    }

    #[test]
    fn quantile_handles_overflow_bucket_via_max() {
        // Everything above the last bound: the overflow bucket spans
        // [last bound, max].
        let mut h = Histogram::new(&[10]);
        h.record(100);
        h.record(200);
        h.record(300);
        let p50 = h.quantile(0.5).unwrap();
        assert!(
            (10.0..=300.0).contains(&p50),
            "overflow p50 within [bound, max]: {p50}"
        );
        assert_eq!(h.quantile(1.0), Some(300.0));
    }

    #[test]
    fn quantile_is_exact_for_a_single_observation() {
        let mut h = Histogram::new(&[1_000, 10_000]);
        h.record(4_242);
        for q in [0.01, 0.5, 0.99, 1.0] {
            assert_eq!(h.quantile(q), Some(4_242.0), "q={q}");
        }
    }

    #[test]
    fn quantile_empty_and_out_of_range_are_none() {
        let h = Histogram::new(&BYTE_BOUNDS);
        assert_eq!(h.quantile(0.5), None);
        let mut h = Histogram::new(&[10]);
        h.record(5);
        assert_eq!(h.quantile(0.0), None);
        assert_eq!(h.quantile(1.5), None);
        assert_eq!(h.quantile(f64::NAN), None);
    }

    #[test]
    fn quantile_on_bucket_boundary_values() {
        // All mass exactly on a bound: the estimate stays within that
        // bucket and clamps to [min, max] = [10, 10].
        let mut h = Histogram::new(&[10, 100]);
        for _ in 0..4 {
            h.record(10);
        }
        assert_eq!(h.quantile(0.5), Some(10.0));
        assert_eq!(h.quantile(1.0), Some(10.0));
    }

    #[test]
    fn estimate_quantile_degrades_to_max_on_undercounted_buckets() {
        // A lying document: count says 10 but buckets only account for 2.
        let buckets = [(Some(10u64), 2u64), (None, 0)];
        assert_eq!(estimate_quantile(&buckets, 10, 1, 9, 0.99), Some(9.0));
    }

    #[test]
    fn span_stats_track_min_max_total() {
        let mut s = SpanStats::default();
        s.record(5);
        s.record(2);
        s.record(9);
        assert_eq!(s.count, 3);
        assert_eq!(s.total_us, 16);
        assert_eq!(s.min_us, 2);
        assert_eq!(s.max_us, 9);
    }

    #[test]
    fn histogram_merge_matches_serial_recording() {
        let values_a = [3u64, 40, 500, 20_000];
        let values_b = [7u64, 11, 90_000, 12];
        let mut serial = Histogram::new(&LATENCY_US_BOUNDS);
        for v in values_a.iter().chain(values_b.iter()) {
            serial.record(*v);
        }
        let mut a = Histogram::new(&LATENCY_US_BOUNDS);
        let mut b = Histogram::new(&LATENCY_US_BOUNDS);
        for v in values_a {
            a.record(v);
        }
        for v in values_b {
            b.record(v);
        }
        a.merge_from(&b);
        assert_eq!(a, serial);
        // Merging an empty histogram is the identity.
        a.merge_from(&Histogram::new(&LATENCY_US_BOUNDS));
        assert_eq!(a, serial);
        // And merging *into* an empty one copies the distribution.
        let mut empty = Histogram::new(&LATENCY_US_BOUNDS);
        empty.merge_from(&serial);
        assert_eq!(empty, serial);
    }

    #[test]
    fn histogram_merge_rebuckets_on_bound_mismatch() {
        let mut coarse = Histogram::new(&[100]);
        coarse.record(5);
        let mut fine = Histogram::new(&[10, 100]);
        fine.record(50);
        fine.record(2_000); // overflow in the fine histogram
        coarse.merge_from(&fine);
        assert_eq!(coarse.count(), 3);
        assert_eq!(coarse.sum(), 2_055);
        assert_eq!(coarse.min(), Some(5));
        assert_eq!(coarse.max(), Some(2_000));
        // Conservation: buckets still account for every observation.
        let bucket_total: u64 = coarse.buckets().map(|(_, n)| n).sum();
        assert_eq!(bucket_total, coarse.count());
    }

    #[test]
    fn span_stats_merge_folds_extrema() {
        let mut a = SpanStats::default();
        a.record(5);
        a.record(30);
        let mut b = SpanStats::default();
        b.record(2);
        let mut merged = SpanStats::default();
        merged.merge_from(&a);
        merged.merge_from(&b);
        merged.merge_from(&SpanStats::default());
        assert_eq!(merged.count, 3);
        assert_eq!(merged.total_us, 37);
        assert_eq!(merged.min_us, 2);
        assert_eq!(merged.max_us, 30);
    }

    #[test]
    fn metrics_merge_is_join_order_independent() {
        let make = |seed: u64| {
            let mut m = Metrics::new();
            m.add("units", seed);
            m.observe("latency", &LATENCY_US_BOUNDS, seed * 100);
            m.span_done("decode", seed * 10);
            m
        };
        let mut forward = Metrics::new();
        forward.merge_from(make(1));
        forward.merge_from(make(2));
        forward.merge_from(make(3));
        let mut backward = Metrics::new();
        backward.merge_from(make(3));
        backward.merge_from(make(2));
        backward.merge_from(make(1));
        assert_eq!(forward.counter("units"), 6);
        assert_eq!(backward.counter("units"), 6);
        let snap = |m: &Metrics| {
            MetricsSnapshot {
                metrics: m.clone(),
                uptime_us: 0,
            }
            .to_json()
            .to_pretty_string()
        };
        assert_eq!(snap(&forward), snap(&backward));
    }

    #[test]
    fn gauge_tracks_level_and_watermarks() {
        let mut g = Gauge::new();
        assert_eq!(g.value(), 0);
        assert_eq!(g.min(), None);
        assert_eq!(g.max(), None);
        g.add(3);
        g.sub(1);
        g.add(5);
        g.sub(7);
        assert_eq!(g.value(), 0);
        assert_eq!(g.min(), Some(0));
        assert_eq!(g.max(), Some(7));
        assert_eq!(g.samples(), 4);
        g.set(-2);
        assert_eq!(g.value(), -2);
        assert_eq!(g.min(), Some(-2));
    }

    #[test]
    fn gauge_merge_is_associative_and_commutative() {
        let mut a = Gauge::new();
        a.add(4);
        a.sub(1); // net +3, watermarks [0, 4]
        let mut b = Gauge::new();
        b.add(2); // net +2, watermarks [0, 2]
        let mut c = Gauge::new();
        c.sub(5); // net -5, watermarks [-5, 0]

        let fold = |order: &[&Gauge]| {
            let mut m = Gauge::new();
            for g in order {
                m.merge_from(g);
            }
            m
        };
        let abc = fold(&[&a, &b, &c]);
        let cba = fold(&[&c, &b, &a]);
        assert_eq!(abc, cba);
        assert_eq!(abc.value(), 0);
        assert_eq!(abc.min(), Some(-5));
        assert_eq!(abc.max(), Some(4));
        assert_eq!(abc.samples(), 4);
        // ((a ⊔ b) ⊔ c) == (a ⊔ (b ⊔ c)), and empty is the identity.
        let mut left = a;
        left.merge_from(&b);
        left.merge_from(&c);
        let mut bc = b;
        bc.merge_from(&c);
        let mut right = a;
        right.merge_from(&bc);
        right.merge_from(&Gauge::new());
        assert_eq!(left, right);
    }

    #[test]
    fn windowed_counter_rates_and_total() {
        let mut w = WindowedCounter::new();
        assert_eq!(w.total(), 0);
        assert_eq!(w.rate_1m(), 0.0);
        w.add(30);
        w.add(30);
        // All 60 events are within the last minute of wall time.
        assert_eq!(w.total(), 60);
        assert!((w.rate_1m() - 1.0).abs() < 1e-9, "{}", w.rate_1m());
        assert!((w.rate_5m() - 0.2).abs() < 1e-9, "{}", w.rate_5m());
    }

    #[test]
    fn windowed_counter_merge_preserves_totals_and_rates() {
        let mut a = WindowedCounter::new();
        a.add(10);
        let mut b = WindowedCounter::new();
        b.add(20);
        a.merge_from(&b);
        assert_eq!(a.total(), 30);
        assert!((a.rate_5m() - 0.1).abs() < 1e-9, "{}", a.rate_5m());
        // Identity: merging an empty counter changes nothing.
        let before = a.total();
        a.merge_from(&WindowedCounter::new());
        assert_eq!(a.total(), before);
    }

    #[test]
    fn windowed_histogram_window_quantiles_and_cumulative() {
        let mut w = WindowedHistogram::new(&LATENCY_US_BOUNDS);
        assert_eq!(w.window_quantile(0.5), None);
        for v in [100u64, 200, 300, 400] {
            w.record(v);
        }
        assert_eq!(w.cumulative().count(), 4);
        let p50 = w.window_quantile(0.5).expect("live window");
        assert!((100.0..=400.0).contains(&p50), "{p50}");
        assert_eq!(w.window_quantile(1.0), Some(400.0));
        // Within the first slot the 1m rate counts everything just seen.
        assert!((w.rate_1m() - 4.0 / 60.0).abs() < 1e-9, "{}", w.rate_1m());
    }

    #[test]
    fn windowed_histogram_merge_matches_serial_cumulative() {
        let mut serial = WindowedHistogram::new(&LATENCY_US_BOUNDS);
        let mut a = WindowedHistogram::new(&LATENCY_US_BOUNDS);
        let mut b = WindowedHistogram::new(&LATENCY_US_BOUNDS);
        for v in [5u64, 50, 500] {
            serial.record(v);
            a.record(v);
        }
        for v in [7u64, 70_000] {
            serial.record(v);
            b.record(v);
        }
        a.merge_from(&b);
        assert_eq!(a.cumulative(), serial.cumulative());
        assert_eq!(a.window_quantile(1.0), serial.window_quantile(1.0));
    }

    #[test]
    fn metrics_gauge_and_window_registry_round_trip() {
        let mut m = Metrics::new();
        m.gauge_add("queue.depth", 2);
        m.gauge_sub("queue.depth", 1);
        m.gauge_set("workers.busy", 3);
        m.window_add("http.requests", 7);
        m.window_observe("http.latency.us", &LATENCY_US_BOUNDS, 1_234);
        assert_eq!(m.gauge("queue.depth").map(Gauge::value), Some(1));
        assert_eq!(m.gauge("workers.busy").map(Gauge::value), Some(3));
        assert_eq!(m.gauge("missing"), None);
        match m.window("http.requests") {
            Some(Windowed::Counter(w)) => assert_eq!(w.total(), 7),
            other => panic!("expected window counter, got {other:?}"),
        }
        // Kind mismatch is a no-op, never a reinterpretation.
        m.window_observe("http.requests", &LATENCY_US_BOUNDS, 9);
        m.window_add("http.latency.us", 9);
        match m.window("http.requests") {
            Some(Windowed::Counter(w)) => assert_eq!(w.total(), 7),
            other => panic!("expected window counter, got {other:?}"),
        }

        // Merge folds both registries.
        let mut other = Metrics::new();
        other.gauge_add("queue.depth", 4);
        other.window_add("http.requests", 3);
        m.merge_from(other);
        assert_eq!(m.gauge("queue.depth").map(Gauge::value), Some(5));
        match m.window("http.requests") {
            Some(Windowed::Counter(w)) => assert_eq!(w.total(), 10),
            other => panic!("expected window counter, got {other:?}"),
        }
    }

    #[test]
    fn snapshot_omits_gauge_and_window_keys_when_empty() {
        let mut m = Metrics::new();
        m.add("pipeline.units", 1);
        let json = MetricsSnapshot {
            metrics: m,
            uptime_us: 1,
        }
        .to_json();
        // Batch documents must stay byte-identical: no new keys unless
        // the new registries are populated.
        assert!(json.pointer("/gauges").is_none());
        assert!(json.pointer("/windows").is_none());
        assert!(json.pointer("/resources").is_none());

        let mut m = Metrics::new();
        m.gauge_set("depth", 2);
        m.window_add("reqs", 1);
        let json = MetricsSnapshot {
            metrics: m,
            uptime_us: 1,
        }
        .to_json();
        assert_eq!(
            json.pointer("/gauges/depth/value").and_then(Json::as_i64),
            Some(2)
        );
        assert_eq!(
            json.pointer("/windows/reqs/total").and_then(Json::as_i64),
            Some(1)
        );
        assert_eq!(
            json.pointer("/windows/reqs/kind").and_then(Json::as_str),
            Some("counter")
        );
    }

    #[test]
    fn res_stats_fold_and_export() {
        let mut m = Metrics::new();
        m.res_done(
            "pipeline.decode",
            &SpanResources {
                peak_rss_bytes: 10_000,
                rss_delta_bytes: 4_000,
                cpu_us: 500,
                bytes_in: 1_000,
            },
        );
        m.res_done(
            "pipeline.decode",
            &SpanResources {
                peak_rss_bytes: 8_000,
                rss_delta_bytes: -1_000,
                cpu_us: 300,
                bytes_in: 2_000,
            },
        );
        let stats = *m.resource("pipeline.decode").unwrap();
        assert_eq!(stats.count, 2);
        assert_eq!(stats.peak_rss_bytes, 10_000); // max, not sum
        assert_eq!(stats.rss_delta_bytes, 3_000); // signed net
        assert_eq!(stats.cpu_us, 800);
        assert_eq!(stats.bytes_in, 3_000);

        let json = MetricsSnapshot {
            metrics: m,
            uptime_us: 1,
        }
        .to_json();
        let doc = json.pointer("/resources/pipeline.decode").unwrap();
        assert_eq!(doc.pointer("/count").and_then(Json::as_i64), Some(2));
        assert_eq!(
            doc.pointer("/peakRssB").and_then(Json::as_i64),
            Some(10_000)
        );
        assert_eq!(
            doc.pointer("/rssDeltaB").and_then(Json::as_i64),
            Some(3_000)
        );
        assert_eq!(doc.pointer("/cpuUs").and_then(Json::as_i64), Some(800));
        assert_eq!(doc.pointer("/bytesIn").and_then(Json::as_i64), Some(3_000));
    }

    #[test]
    fn res_stats_merge_matches_serial_fold() {
        let a_span = SpanResources {
            peak_rss_bytes: 5,
            rss_delta_bytes: 2,
            cpu_us: 10,
            bytes_in: 100,
        };
        let b_span = SpanResources {
            peak_rss_bytes: 9,
            rss_delta_bytes: -1,
            cpu_us: 20,
            bytes_in: 50,
        };
        let mut serial = Metrics::new();
        serial.res_done("s", &a_span);
        serial.res_done("s", &b_span);
        let mut left = Metrics::new();
        left.res_done("s", &a_span);
        let mut right = Metrics::new();
        right.res_done("s", &b_span);
        left.merge_from(right);
        assert_eq!(left.resource("s"), serial.resource("s"));
        // Identity: merging an empty registry changes nothing.
        left.merge_from(Metrics::new());
        assert_eq!(left.resource("s"), serial.resource("s"));
    }

    #[test]
    fn registry_and_snapshot_export() {
        let mut m = Metrics::new();
        m.add("pipeline.units", 14);
        m.add("pipeline.units", 1);
        m.observe("artifact.bytes", &BYTE_BOUNDS, 2_000);
        m.span_done("pipeline.classify", 1_500);
        assert_eq!(m.counter("pipeline.units"), 15);
        assert_eq!(m.counter("missing"), 0);

        let snap = MetricsSnapshot {
            metrics: m,
            uptime_us: 42,
        };
        let json = snap.to_json();
        assert_eq!(
            json.pointer("/schema").and_then(Json::as_str),
            Some("diffaudit-obs/v1")
        );
        assert_eq!(
            json.pointer("/counters/pipeline.units")
                .and_then(Json::as_i64),
            Some(15)
        );
        assert_eq!(
            json.pointer("/histograms/artifact.bytes/count")
                .and_then(Json::as_i64),
            Some(1)
        );
        assert_eq!(
            json.pointer("/spans/pipeline.classify/totalUs")
                .and_then(Json::as_i64),
            Some(1500)
        );
        // The document round-trips through the parser.
        let text = json.to_pretty_string();
        let back = diffaudit_json::parse(&text).expect("metrics JSON parses");
        assert_eq!(back.pointer("/uptimeUs").and_then(Json::as_i64), Some(42));
    }
}
