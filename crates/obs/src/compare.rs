//! Metrics diffing: compare two `diffaudit-obs/v1` [`MetricsSnapshot`]
//! documents and render a thresholded perf-regression verdict.
//!
//! [`MetricsSnapshot`]: crate::metrics::MetricsSnapshot
//!
//! The comparison has four parts:
//!
//! - **counter deltas** — absolute and relative change for the union of
//!   counter names, with *conservation checks* (every histogram's bucket
//!   counts must sum to its `count`; documents failing that are corrupt
//!   and flip the verdict);
//! - **histogram shifts** — bucket-derived p50/p90/p99 estimates
//!   ([`estimate_quantile`]) side by side, skipped when the two documents
//!   disagree on bucket bounds (incomparable);
//! - **wall-time deltas per stage** — span totals plus overall uptime;
//! - **verdict** — `ok` / `regressed`. A stage regresses when its wall
//!   time grows past the configured relative threshold *and* past an
//!   absolute noise floor (so a 40 µs stage doubling on a noisy machine
//!   does not fail CI). Without a threshold the timing comparison is
//!   informational only; conservation violations always regress.
//!
//! [`estimate_quantile`]: crate::metrics::estimate_quantile

use crate::metrics::estimate_quantile;
use diffaudit_json::Json;
use diffaudit_util::fmt::{format_bytes, format_bytes_signed, format_duration_us};
use std::collections::BTreeMap;

/// The schema string a comparable document must carry.
pub const SNAPSHOT_SCHEMA: &str = "diffaudit-obs/v1";

/// Why a document could not be interpreted as a metrics snapshot.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SnapshotError {
    /// The text is not valid JSON.
    Json(String),
    /// The `schema` field is missing or not [`SNAPSHOT_SCHEMA`].
    Schema(Option<String>),
    /// A required field is missing or has the wrong type.
    Shape(String),
}

impl std::fmt::Display for SnapshotError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SnapshotError::Json(e) => write!(f, "invalid JSON: {e}"),
            SnapshotError::Schema(found) => {
                write!(f, "not a {SNAPSHOT_SCHEMA} document (schema = {found:?})")
            }
            SnapshotError::Shape(what) => write!(f, "malformed snapshot: {what}"),
        }
    }
}

impl std::error::Error for SnapshotError {}

/// A histogram as stored in a snapshot document.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HistogramDoc {
    /// Total observations.
    pub count: u64,
    /// Sum of observations.
    pub sum: u64,
    /// Smallest observation (`None` when empty).
    pub min: Option<u64>,
    /// Largest observation (`None` when empty).
    pub max: Option<u64>,
    /// `(upper_bound, count)` pairs, `None` bound = overflow bucket.
    pub buckets: Vec<(Option<u64>, u64)>,
}

impl HistogramDoc {
    /// Bucket-derived quantile estimate (see [`estimate_quantile`]).
    pub fn quantile(&self, q: f64) -> Option<f64> {
        estimate_quantile(&self.buckets, self.count, self.min?, self.max?, q)
    }

    /// `true` when bucket counts sum to `count`.
    pub fn conserved(&self) -> bool {
        self.buckets.iter().map(|(_, n)| n).sum::<u64>() == self.count
    }

    /// The bucket bounds alone (comparability key).
    fn bounds(&self) -> Vec<Option<u64>> {
        self.buckets.iter().map(|(b, _)| *b).collect()
    }
}

/// Span aggregate as stored in a snapshot document.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SpanStatsDoc {
    /// Completed spans.
    pub count: u64,
    /// Total wall time, microseconds.
    pub total_us: u64,
    /// Shortest span, microseconds.
    pub min_us: u64,
    /// Longest span, microseconds.
    pub max_us: u64,
}

/// Resource aggregate as stored in a snapshot document. Every field
/// defaults to zero so documents written before resource profiling
/// existed (and hand-trimmed baselines) keep parsing.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ResStatsDoc {
    /// Completed spans folded in.
    pub count: u64,
    /// Highest RSS observed, bytes.
    pub peak_rss_bytes: u64,
    /// Net RSS movement, bytes (signed).
    pub rss_delta_bytes: i64,
    /// CPU time consumed, microseconds.
    pub cpu_us: u64,
    /// Logical bytes processed.
    pub bytes_in: u64,
}

/// A parsed `diffaudit-obs/v1` document.
#[derive(Debug, Clone, Default)]
pub struct Snapshot {
    /// Run wall time, microseconds.
    pub uptime_us: u64,
    /// Counter values by name.
    pub counters: BTreeMap<String, u64>,
    /// Histograms by name.
    pub histograms: BTreeMap<String, HistogramDoc>,
    /// Span aggregates by name.
    pub spans: BTreeMap<String, SpanStatsDoc>,
    /// Resource aggregates by name (absent in pre-profiling documents).
    pub resources: BTreeMap<String, ResStatsDoc>,
}

fn as_u64(json: &Json, what: &str) -> Result<u64, SnapshotError> {
    json.as_i64()
        .and_then(|v| u64::try_from(v).ok())
        .ok_or_else(|| SnapshotError::Shape(format!("{what} is not a non-negative integer")))
}

fn opt_u64(json: Option<&Json>, what: &str) -> Result<Option<u64>, SnapshotError> {
    match json {
        None | Some(Json::Null) => Ok(None),
        Some(v) => as_u64(v, what).map(Some),
    }
}

/// Parse a snapshot document from JSON text.
pub fn parse_snapshot(text: &str) -> Result<Snapshot, SnapshotError> {
    let json = diffaudit_json::parse(text).map_err(|e| SnapshotError::Json(e.to_string()))?;
    let schema = json.get("schema").and_then(Json::as_str);
    if schema != Some(SNAPSHOT_SCHEMA) {
        return Err(SnapshotError::Schema(schema.map(str::to_string)));
    }
    let mut snapshot = Snapshot {
        uptime_us: as_u64(
            json.get("uptimeUs")
                .ok_or_else(|| SnapshotError::Shape("missing uptimeUs".into()))?,
            "uptimeUs",
        )?,
        ..Snapshot::default()
    };
    if let Some(counters) = json.get("counters").and_then(Json::as_obj) {
        for (name, value) in counters {
            snapshot
                .counters
                .insert(name.clone(), as_u64(value, &format!("counter {name}"))?);
        }
    }
    if let Some(histograms) = json.get("histograms").and_then(Json::as_obj) {
        for (name, h) in histograms {
            let buckets = h
                .get("buckets")
                .and_then(Json::as_arr)
                .ok_or_else(|| SnapshotError::Shape(format!("histogram {name} lacks buckets")))?
                .iter()
                .map(|b| {
                    Ok((
                        opt_u64(b.get("le"), "bucket le")?,
                        as_u64(
                            b.get("count").ok_or_else(|| {
                                SnapshotError::Shape("bucket missing count".into())
                            })?,
                            "bucket count",
                        )?,
                    ))
                })
                .collect::<Result<Vec<_>, SnapshotError>>()?;
            snapshot.histograms.insert(
                name.clone(),
                HistogramDoc {
                    count: as_u64(
                        h.get("count").ok_or_else(|| {
                            SnapshotError::Shape(format!("histogram {name} lacks count"))
                        })?,
                        "histogram count",
                    )?,
                    sum: opt_u64(h.get("sum"), "histogram sum")?.unwrap_or(0),
                    min: opt_u64(h.get("min"), "histogram min")?,
                    max: opt_u64(h.get("max"), "histogram max")?,
                    buckets,
                },
            );
        }
    }
    if let Some(spans) = json.get("spans").and_then(Json::as_obj) {
        for (name, s) in spans {
            let field = |key: &str| -> Result<u64, SnapshotError> {
                as_u64(
                    s.get(key)
                        .ok_or_else(|| SnapshotError::Shape(format!("span {name} lacks {key}")))?,
                    key,
                )
            };
            snapshot.spans.insert(
                name.clone(),
                SpanStatsDoc {
                    count: field("count")?,
                    total_us: field("totalUs")?,
                    min_us: field("minUs")?,
                    max_us: field("maxUs")?,
                },
            );
        }
    }
    if let Some(resources) = json.get("resources").and_then(Json::as_obj) {
        for (name, r) in resources {
            snapshot.resources.insert(
                name.clone(),
                ResStatsDoc {
                    count: opt_u64(r.get("count"), "resource count")?.unwrap_or(0),
                    peak_rss_bytes: opt_u64(r.get("peakRssB"), "resource peakRssB")?.unwrap_or(0),
                    rss_delta_bytes: r.get("rssDeltaB").and_then(Json::as_i64).unwrap_or(0),
                    cpu_us: opt_u64(r.get("cpuUs"), "resource cpuUs")?.unwrap_or(0),
                    bytes_in: opt_u64(r.get("bytesIn"), "resource bytesIn")?.unwrap_or(0),
                },
            );
        }
    }
    Ok(snapshot)
}

/// Comparison thresholds.
#[derive(Debug, Clone)]
pub struct DiffOptions {
    /// Relative change (as a fraction, e.g. `0.5` = +50%) past which a
    /// stage's wall-time growth counts as a regression. `None` disables
    /// the timing gate (informational diff).
    pub fail_over: Option<f64>,
    /// Absolute growth (µs) a stage must also exceed to regress —
    /// the noise floor that keeps micro-stages from flapping.
    pub noise_floor_us: u64,
    /// Relative peak-RSS growth (fraction) past which a resource row
    /// counts as a regression. `None` disables the RSS gate.
    pub fail_rss_over: Option<f64>,
    /// Relative change below which a delta renders as stable (`~`).
    pub display_tolerance: f64,
}

/// Absolute peak-RSS growth a row must exceed (on top of the relative
/// threshold) before it regresses: one allocator arena / page-cache
/// wobble. Keeps tiny-footprint stages from flapping the gate.
pub const RSS_NOISE_FLOOR_BYTES: u64 = 4 * 1024 * 1024;

impl Default for DiffOptions {
    fn default() -> Self {
        DiffOptions {
            fail_over: None,
            noise_floor_us: 20_000,
            fail_rss_over: None,
            display_tolerance: 0.02,
        }
    }
}

/// The comparison outcome.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Verdict {
    /// No gated metric exceeded its threshold.
    Ok,
    /// At least one gated metric regressed (or a document is corrupt).
    Regressed,
}

impl Verdict {
    /// Stable label for reports.
    pub fn label(self) -> &'static str {
        match self {
            Verdict::Ok => "ok",
            Verdict::Regressed => "regressed",
        }
    }
}

/// One wall-time comparison row (a span stage, or overall uptime).
#[derive(Debug, Clone)]
pub struct StageDelta {
    /// Stage name (`uptime` for the run total).
    pub name: String,
    /// Baseline total, microseconds.
    pub base_us: u64,
    /// Current total, microseconds.
    pub current_us: u64,
    /// `current - base` (signed).
    pub delta_us: i64,
    /// Relative change, `delta / base` (`base == 0` ⇒ `inf` when grown).
    pub rel: f64,
    /// Whether this row tripped the regression gate.
    pub regressed: bool,
}

/// One peak-RSS comparison row.
#[derive(Debug, Clone)]
pub struct ResourceDelta {
    /// Resource entry name (a stage span, or `process` for the whole run).
    pub name: String,
    /// Baseline peak RSS, bytes.
    pub base_peak: u64,
    /// Current peak RSS, bytes.
    pub current_peak: u64,
    /// `current - base` (signed).
    pub delta: i64,
    /// Relative change, `delta / base` (`base == 0` ⇒ `inf` when grown).
    pub rel: f64,
    /// Whether this row tripped the RSS gate.
    pub regressed: bool,
}

/// One counter comparison row.
#[derive(Debug, Clone)]
pub struct CounterDelta {
    /// Counter name.
    pub name: String,
    /// Baseline value.
    pub base: u64,
    /// Current value.
    pub current: u64,
    /// `current - base` (signed).
    pub delta: i64,
}

/// One histogram comparison row: p50/p90/p99 shift.
#[derive(Debug, Clone)]
pub struct HistogramShift {
    /// Histogram name.
    pub name: String,
    /// Baseline `[p50, p90, p99]` estimates (`None` when empty).
    pub base_p: [Option<f64>; 3],
    /// Current `[p50, p90, p99]` estimates.
    pub current_p: [Option<f64>; 3],
    /// `false` when bucket bounds differ between the documents, making
    /// the percentile comparison meaningless.
    pub comparable: bool,
}

/// The full diff: rows, conservation findings, and the verdict.
#[derive(Debug, Clone)]
pub struct MetricsDiff {
    /// Overall run wall time row.
    pub uptime: StageDelta,
    /// Per-stage wall time rows (union of span names, sorted).
    pub stages: Vec<StageDelta>,
    /// Peak-RSS rows (union of resource entry names, sorted; empty when
    /// neither document carries resources).
    pub resources: Vec<ResourceDelta>,
    /// Counter rows (union of names, sorted).
    pub counters: Vec<CounterDelta>,
    /// Histogram percentile shifts (union of names, sorted).
    pub histograms: Vec<HistogramShift>,
    /// Conservation violations found in either document.
    pub violations: Vec<String>,
    /// Names of the rows that tripped the gate.
    pub regressions: Vec<String>,
    /// The verdict.
    pub verdict: Verdict,
}

fn stage_delta(name: &str, base_us: u64, current_us: u64, options: &DiffOptions) -> StageDelta {
    let delta_us = current_us as i64 - base_us as i64;
    let rel = if base_us > 0 {
        delta_us as f64 / base_us as f64
    } else if current_us > 0 {
        f64::INFINITY
    } else {
        0.0
    };
    let regressed = match options.fail_over {
        Some(threshold) => rel > threshold && delta_us > options.noise_floor_us as i64,
        None => false,
    };
    StageDelta {
        name: name.to_string(),
        base_us,
        current_us,
        delta_us,
        rel,
        regressed,
    }
}

/// Compare two parsed snapshots under the given thresholds.
pub fn diff_snapshots(base: &Snapshot, current: &Snapshot, options: &DiffOptions) -> MetricsDiff {
    let mut violations = Vec::new();
    for (tag, doc) in [("baseline", base), ("current", current)] {
        for (name, h) in &doc.histograms {
            if !h.conserved() {
                violations.push(format!(
                    "{tag} histogram {name}: bucket counts sum to {} but count is {}",
                    h.buckets.iter().map(|(_, n)| n).sum::<u64>(),
                    h.count
                ));
            }
        }
    }

    let uptime = stage_delta("uptime", base.uptime_us, current.uptime_us, options);

    let stage_names: Vec<&String> = {
        let mut names: Vec<&String> = base.spans.keys().chain(current.spans.keys()).collect();
        names.sort();
        names.dedup();
        names
    };
    let stages: Vec<StageDelta> = stage_names
        .iter()
        .map(|name| {
            stage_delta(
                name,
                base.spans.get(*name).map_or(0, |s| s.total_us),
                current.spans.get(*name).map_or(0, |s| s.total_us),
                options,
            )
        })
        .collect();

    let resource_names: Vec<&String> = {
        let mut names: Vec<&String> = base
            .resources
            .keys()
            .chain(current.resources.keys())
            .collect();
        names.sort();
        names.dedup();
        names
    };
    let resources: Vec<ResourceDelta> = resource_names
        .iter()
        .map(|name| {
            let base_peak = base.resources.get(*name).map_or(0, |r| r.peak_rss_bytes);
            let current_peak = current.resources.get(*name).map_or(0, |r| r.peak_rss_bytes);
            let delta = current_peak as i64 - base_peak as i64;
            let rel = if base_peak > 0 {
                delta as f64 / base_peak as f64
            } else if current_peak > 0 {
                f64::INFINITY
            } else {
                0.0
            };
            // Gate only rows present in BOTH documents: a baseline captured
            // without profiling (or a brand-new stage) carries no meaningful
            // peak to compare against.
            let both = base.resources.contains_key(*name) && current.resources.contains_key(*name);
            let regressed = match options.fail_rss_over {
                Some(threshold) => both && rel > threshold && delta > RSS_NOISE_FLOOR_BYTES as i64,
                None => false,
            };
            ResourceDelta {
                name: (*name).clone(),
                base_peak,
                current_peak,
                delta,
                rel,
                regressed,
            }
        })
        .collect();

    let counter_names: Vec<&String> = {
        let mut names: Vec<&String> = base
            .counters
            .keys()
            .chain(current.counters.keys())
            .collect();
        names.sort();
        names.dedup();
        names
    };
    let counters: Vec<CounterDelta> = counter_names
        .iter()
        .map(|name| {
            let b = base.counters.get(*name).copied().unwrap_or(0);
            let c = current.counters.get(*name).copied().unwrap_or(0);
            CounterDelta {
                name: (*name).clone(),
                base: b,
                current: c,
                delta: c as i64 - b as i64,
            }
        })
        .collect();

    let histogram_names: Vec<&String> = {
        let mut names: Vec<&String> = base
            .histograms
            .keys()
            .chain(current.histograms.keys())
            .collect();
        names.sort();
        names.dedup();
        names
    };
    let histograms: Vec<HistogramShift> = histogram_names
        .iter()
        .map(|name| {
            let b = base.histograms.get(*name);
            let c = current.histograms.get(*name);
            let comparable = match (b, c) {
                (Some(b), Some(c)) => b.bounds() == c.bounds(),
                _ => true, // one-sided: nothing to mismatch
            };
            let ps = |h: Option<&HistogramDoc>| -> [Option<f64>; 3] {
                [0.5, 0.9, 0.99].map(|q| h.and_then(|h| h.quantile(q)))
            };
            HistogramShift {
                name: (*name).clone(),
                base_p: ps(b),
                current_p: ps(c),
                comparable,
            }
        })
        .collect();

    let mut regressions: Vec<String> = std::iter::once(&uptime)
        .chain(stages.iter())
        .filter(|row| row.regressed)
        .map(|row| row.name.clone())
        .collect();
    regressions.extend(
        resources
            .iter()
            .filter(|row| row.regressed)
            .map(|row| format!("rss:{}", row.name)),
    );
    if !violations.is_empty() {
        regressions.push("conservation".to_string());
    }
    let verdict = if regressions.is_empty() {
        Verdict::Ok
    } else {
        Verdict::Regressed
    };
    MetricsDiff {
        uptime,
        stages,
        resources,
        counters,
        histograms,
        violations,
        regressions,
        verdict,
    }
}

fn format_rel(rel: f64, tolerance: f64) -> String {
    if rel.is_infinite() {
        "new".to_string()
    } else if rel.abs() < tolerance {
        "~".to_string()
    } else {
        format!("{:+.1}%", rel * 100.0)
    }
}

fn format_quantile(q: Option<f64>) -> String {
    q.map_or_else(|| "-".to_string(), |v| format_duration_us(v.round() as u64))
}

/// Render the diff as a text report.
pub fn render_diff(diff: &MetricsDiff, options: &DiffOptions) -> String {
    let tolerance = options.display_tolerance;
    let mut out = String::new();
    out.push_str("== metrics diff ==\n");
    match diff.verdict {
        Verdict::Ok => out.push_str("verdict: ok\n"),
        Verdict::Regressed => out.push_str(&format!(
            "verdict: regressed ({})\n",
            diff.regressions.join(", ")
        )),
    }
    if let Some(threshold) = options.fail_over {
        out.push_str(&format!(
            "gate: fail over +{:.0}% growth (noise floor {})\n",
            threshold * 100.0,
            format_duration_us(options.noise_floor_us)
        ));
    }
    out.push_str(&format!(
        "wall time: {} -> {}  ({})\n",
        format_duration_us(diff.uptime.base_us),
        format_duration_us(diff.uptime.current_us),
        format_rel(diff.uptime.rel, tolerance)
    ));

    if !diff.stages.is_empty() {
        out.push_str("\nstage wall time:\n");
        let name_w = diff
            .stages
            .iter()
            .map(|s| s.name.len())
            .max()
            .unwrap_or(0)
            .max("stage".len());
        out.push_str(&format!(
            "  {:<name_w$}  {:>10}  {:>10}  {:>8}  {:>4}\n",
            "stage", "base", "current", "rel", "gate"
        ));
        for stage in &diff.stages {
            out.push_str(&format!(
                "  {:<name_w$}  {:>10}  {:>10}  {:>8}  {:>4}\n",
                stage.name,
                format_duration_us(stage.base_us),
                format_duration_us(stage.current_us),
                format_rel(stage.rel, tolerance),
                if stage.regressed { "FAIL" } else { "" },
            ));
        }
    }

    if !diff.resources.is_empty() {
        out.push_str("\nresources (peak RSS):\n");
        if let Some(threshold) = options.fail_rss_over {
            out.push_str(&format!(
                "  gate: fail over +{:.0}% peak-RSS growth (noise floor {})\n",
                threshold * 100.0,
                format_bytes(RSS_NOISE_FLOOR_BYTES)
            ));
        }
        let name_w = diff
            .resources
            .iter()
            .map(|r| r.name.len())
            .max()
            .unwrap_or(0)
            .max("entry".len());
        out.push_str(&format!(
            "  {:<name_w$}  {:>10}  {:>10}  {:>10}  {:>8}  {:>4}\n",
            "entry", "base", "current", "delta", "rel", "gate"
        ));
        for row in &diff.resources {
            out.push_str(&format!(
                "  {:<name_w$}  {:>10}  {:>10}  {:>10}  {:>8}  {:>4}\n",
                row.name,
                format_bytes(row.base_peak),
                format_bytes(row.current_peak),
                format_bytes_signed(row.delta),
                format_rel(row.rel, tolerance),
                if row.regressed { "FAIL" } else { "" },
            ));
        }
    }

    let changed: Vec<&CounterDelta> = diff.counters.iter().filter(|c| c.delta != 0).collect();
    out.push_str(&format!(
        "\ncounters: {} compared, {} changed\n",
        diff.counters.len(),
        changed.len()
    ));
    for c in &changed {
        out.push_str(&format!(
            "  {}  {} -> {}  ({:+})\n",
            c.name, c.base, c.current, c.delta
        ));
    }

    if !diff.histograms.is_empty() {
        out.push_str("\nhistogram shifts (p50 / p90 / p99):\n");
        for h in &diff.histograms {
            if !h.comparable {
                out.push_str(&format!(
                    "  {}: bucket bounds differ — not comparable\n",
                    h.name
                ));
                continue;
            }
            out.push_str(&format!(
                "  {}: {} -> {} / {} -> {} / {} -> {}\n",
                h.name,
                format_quantile(h.base_p[0]),
                format_quantile(h.current_p[0]),
                format_quantile(h.base_p[1]),
                format_quantile(h.current_p[1]),
                format_quantile(h.base_p[2]),
                format_quantile(h.current_p[2]),
            ));
        }
    }

    if diff.violations.is_empty() {
        out.push_str(&format!(
            "\nconservation: ok ({} histograms checked)\n",
            diff.histograms.len()
        ));
    } else {
        out.push_str("\nconservation violations:\n");
        for v in &diff.violations {
            out.push_str(&format!("  {v}\n"));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::{Metrics, MetricsSnapshot, LATENCY_US_BOUNDS};

    fn sample_snapshot(scale: u64) -> String {
        let mut m = Metrics::new();
        m.span_done("pipeline", 1_000_000 * scale);
        m.span_done("pipeline.classify", 600_000 * scale);
        m.add("pipeline.units", 14);
        for i in 0..50 {
            m.observe("span.us", &LATENCY_US_BOUNDS, (i + 1) * 1_000 * scale);
        }
        MetricsSnapshot {
            metrics: m,
            uptime_us: 1_100_000 * scale,
        }
        .to_json()
        .to_pretty_string()
    }

    #[test]
    fn parse_rejects_non_snapshot_documents() {
        assert!(matches!(
            parse_snapshot("not json").unwrap_err(),
            SnapshotError::Json(_)
        ));
        assert!(matches!(
            parse_snapshot("{\"schema\":\"other/v9\"}").unwrap_err(),
            SnapshotError::Schema(Some(_))
        ));
        assert!(matches!(
            parse_snapshot("{}").unwrap_err(),
            SnapshotError::Schema(None)
        ));
        assert!(matches!(
            parse_snapshot("{\"schema\":\"diffaudit-obs/v1\"}").unwrap_err(),
            SnapshotError::Shape(_)
        ));
    }

    #[test]
    fn self_diff_is_all_zero_and_ok() {
        let doc = sample_snapshot(1);
        let snap = parse_snapshot(&doc).unwrap();
        let options = DiffOptions {
            fail_over: Some(0.5),
            ..DiffOptions::default()
        };
        let diff = diff_snapshots(&snap, &snap, &options);
        assert_eq!(diff.verdict, Verdict::Ok);
        assert_eq!(diff.uptime.delta_us, 0);
        assert!(diff.stages.iter().all(|s| s.delta_us == 0 && !s.regressed));
        assert!(diff.counters.iter().all(|c| c.delta == 0));
        assert!(diff.violations.is_empty());
        let text = render_diff(&diff, &options);
        assert!(text.contains("verdict: ok"));
        assert!(text.contains("0 changed"));
    }

    #[test]
    fn growth_past_threshold_regresses() {
        let base = parse_snapshot(&sample_snapshot(1)).unwrap();
        let slow = parse_snapshot(&sample_snapshot(3)).unwrap();
        let options = DiffOptions {
            fail_over: Some(0.5),
            ..DiffOptions::default()
        };
        let diff = diff_snapshots(&base, &slow, &options);
        assert_eq!(diff.verdict, Verdict::Regressed);
        assert!(diff.regressions.contains(&"uptime".to_string()));
        assert!(diff.regressions.contains(&"pipeline".to_string()));
        let text = render_diff(&diff, &options);
        assert!(text.contains("verdict: regressed"));
        assert!(text.contains("FAIL"));
        // The improvement direction is not a regression.
        let improved = diff_snapshots(&slow, &base, &options);
        assert_eq!(improved.verdict, Verdict::Ok);
    }

    #[test]
    fn no_threshold_means_informational_only() {
        let base = parse_snapshot(&sample_snapshot(1)).unwrap();
        let slow = parse_snapshot(&sample_snapshot(4)).unwrap();
        let diff = diff_snapshots(&base, &slow, &DiffOptions::default());
        assert_eq!(diff.verdict, Verdict::Ok);
        assert!(diff.uptime.delta_us > 0);
    }

    #[test]
    fn noise_floor_suppresses_tiny_regressions() {
        let mut m = Metrics::new();
        m.span_done("tiny", 10);
        let base = MetricsSnapshot {
            metrics: m.clone(),
            uptime_us: 100,
        };
        let mut m2 = Metrics::new();
        m2.span_done("tiny", 40); // 4x but far below the noise floor
        let current = MetricsSnapshot {
            metrics: m2,
            uptime_us: 130,
        };
        let base = parse_snapshot(&base.to_json().to_pretty_string()).unwrap();
        let current = parse_snapshot(&current.to_json().to_pretty_string()).unwrap();
        let options = DiffOptions {
            fail_over: Some(0.5),
            ..DiffOptions::default()
        };
        let diff = diff_snapshots(&base, &current, &options);
        assert_eq!(diff.verdict, Verdict::Ok, "{:?}", diff.regressions);
    }

    #[test]
    fn conservation_violation_flips_the_verdict() {
        let doc = sample_snapshot(1);
        let broken = doc.replacen("\"count\": 50", "\"count\": 49", 1);
        assert_ne!(doc, broken, "replacement must hit the histogram count");
        let base = parse_snapshot(&doc).unwrap();
        let current = parse_snapshot(&broken).unwrap();
        let diff = diff_snapshots(&base, &current, &DiffOptions::default());
        assert_eq!(diff.verdict, Verdict::Regressed);
        assert!(!diff.violations.is_empty());
        let text = render_diff(&diff, &DiffOptions::default());
        assert!(text.contains("conservation violations:"));
    }

    #[test]
    fn incomparable_buckets_are_flagged_not_compared() {
        let mut m = Metrics::new();
        m.observe("h", &[10, 100], 5);
        let a = MetricsSnapshot {
            metrics: m,
            uptime_us: 10,
        };
        let mut m2 = Metrics::new();
        m2.observe("h", &[20, 200], 5);
        let b = MetricsSnapshot {
            metrics: m2,
            uptime_us: 10,
        };
        let a = parse_snapshot(&a.to_json().to_pretty_string()).unwrap();
        let b = parse_snapshot(&b.to_json().to_pretty_string()).unwrap();
        let diff = diff_snapshots(&a, &b, &DiffOptions::default());
        assert!(diff.histograms.iter().any(|h| !h.comparable));
        let text = render_diff(&diff, &DiffOptions::default());
        assert!(text.contains("not comparable"));
    }

    fn resource_snapshot(peak: u64) -> Snapshot {
        let mut m = Metrics::new();
        m.span_done("pipeline.decode", 100_000);
        m.res_done(
            "pipeline.decode",
            &crate::res::SpanResources {
                peak_rss_bytes: peak,
                rss_delta_bytes: 1_000,
                cpu_us: 50_000,
                bytes_in: 10_000,
            },
        );
        let doc = MetricsSnapshot {
            metrics: m,
            uptime_us: 120_000,
        }
        .to_json()
        .to_pretty_string();
        parse_snapshot(&doc).unwrap()
    }

    #[test]
    fn resources_round_trip_through_the_snapshot_document() {
        let snap = resource_snapshot(64 * 1024 * 1024);
        let doc = snap.resources.get("pipeline.decode").unwrap();
        assert_eq!(doc.count, 1);
        assert_eq!(doc.peak_rss_bytes, 64 * 1024 * 1024);
        assert_eq!(doc.rss_delta_bytes, 1_000);
        assert_eq!(doc.cpu_us, 50_000);
        assert_eq!(doc.bytes_in, 10_000);
        // Pre-profiling documents (no `resources` key) still parse.
        let old = parse_snapshot(&sample_snapshot(1)).unwrap();
        assert!(old.resources.is_empty());
    }

    #[test]
    fn rss_gate_fails_real_growth_and_passes_self_diff() {
        let base = resource_snapshot(64 * 1024 * 1024);
        let grown = resource_snapshot(128 * 1024 * 1024); // +100%, +64 MiB
        let options = DiffOptions {
            fail_rss_over: Some(0.5),
            ..DiffOptions::default()
        };
        let diff = diff_snapshots(&base, &grown, &options);
        assert_eq!(diff.verdict, Verdict::Regressed);
        assert!(diff
            .regressions
            .contains(&"rss:pipeline.decode".to_string()));
        let text = render_diff(&diff, &options);
        assert!(text.contains("resources (peak RSS):"));
        assert!(text.contains("peak-RSS growth"));
        assert!(text.contains("FAIL"));
        // Self-diff is clean, and shrinking is never a regression.
        assert_eq!(diff_snapshots(&base, &base, &options).verdict, Verdict::Ok);
        assert_eq!(diff_snapshots(&grown, &base, &options).verdict, Verdict::Ok);
    }

    #[test]
    fn rss_gate_tolerates_noise_and_missing_baselines() {
        // Growth above the relative threshold but under the 4 MiB absolute
        // floor must not flap the gate.
        let base = resource_snapshot(1024 * 1024);
        let wobble = resource_snapshot(3 * 1024 * 1024); // +200%, but +2 MiB
        let options = DiffOptions {
            fail_rss_over: Some(0.5),
            ..DiffOptions::default()
        };
        assert_eq!(
            diff_snapshots(&base, &wobble, &options).verdict,
            Verdict::Ok
        );
        // A baseline captured without profiling carries nothing to gate on:
        // informational rows only, verdict ok.
        let unprofiled = parse_snapshot(&sample_snapshot(1)).unwrap();
        let profiled = resource_snapshot(256 * 1024 * 1024);
        let diff = diff_snapshots(&unprofiled, &profiled, &options);
        assert_eq!(diff.verdict, Verdict::Ok, "{:?}", diff.regressions);
        assert!(!diff.resources.is_empty());
        // Without the flag the rows stay informational even for huge growth.
        let diff = diff_snapshots(
            &resource_snapshot(1024),
            &resource_snapshot(u32::MAX as u64),
            &DiffOptions::default(),
        );
        assert_eq!(diff.verdict, Verdict::Ok);
    }

    #[test]
    fn union_of_names_covers_one_sided_metrics() {
        let mut m = Metrics::new();
        m.span_done("only.base", 100_000);
        m.add("only.base.counter", 5);
        let a = MetricsSnapshot {
            metrics: m,
            uptime_us: 100_000,
        };
        let mut m2 = Metrics::new();
        m2.span_done("only.current", 200_000);
        let b = MetricsSnapshot {
            metrics: m2,
            uptime_us: 100_000,
        };
        let a = parse_snapshot(&a.to_json().to_pretty_string()).unwrap();
        let b = parse_snapshot(&b.to_json().to_pretty_string()).unwrap();
        let options = DiffOptions {
            fail_over: Some(0.5),
            ..DiffOptions::default()
        };
        let diff = diff_snapshots(&a, &b, &options);
        let names: Vec<&str> = diff.stages.iter().map(|s| s.name.as_str()).collect();
        assert_eq!(names, ["only.base", "only.current"]);
        // A brand-new expensive stage regresses (rel = inf, over floor).
        assert!(diff.regressions.contains(&"only.current".to_string()));
        let text = render_diff(&diff, &options);
        assert!(text.contains("new"));
    }
}
