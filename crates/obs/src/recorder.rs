//! The recorder: one object owning the level filter, the sinks, the metric
//! registry, and the active span stack.
//!
//! Library code talks to the process-global recorder through the free
//! functions in [`crate`]; tests build private [`Recorder`]s and assert on
//! their snapshots without cross-test interference.

use crate::event::Field;
use crate::level::Level;
use crate::metrics::{Metrics, MetricsSnapshot, ResStats, LATENCY_US_BOUNDS};
use crate::res::{self, ResUsage, ResourceTrack, SpanResources};
use crate::sink::{event_record, span_record, with_span_resources, write_stderr, JsonlSink};
use diffaudit_json::Json;
use std::collections::VecDeque;
use std::io::Write;
use std::path::Path;
use std::sync::atomic::{AtomicBool, AtomicU8, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

/// How many warn/error events the in-memory ring retains.
pub const EVENT_RING_CAP: usize = 256;

/// One retained warn/error event: everything `obs tail` needs, with the
/// fields pre-rendered to text so the ring holds no live references.
#[derive(Debug, Clone)]
pub struct RingEvent {
    /// Position in the ring's own monotonic sequence (1-based). Distinct
    /// from the trace sink's `seq`, which only advances while a trace is
    /// attached — the ring must stay a usable cursor either way.
    pub seq: u64,
    /// Microseconds since the recorder started.
    pub t_us: u64,
    /// Event severity (always `Warn` or `Error` here).
    pub level: Level,
    /// The event message.
    pub msg: String,
    /// Pre-rendered `key=value` fields, space-separated (may be empty).
    pub fields: String,
}

impl RingEvent {
    /// JSON representation (the `/api/v1/events` document entry).
    pub fn to_json(&self) -> Json {
        Json::obj()
            .with("seq", Json::int(self.seq.min(i64::MAX as u64) as i64))
            .with("tUs", Json::int(self.t_us.min(i64::MAX as u64) as i64))
            .with("level", Json::str(self.level.label()))
            .with("msg", Json::str(self.msg.clone()))
            .with("fields", Json::str(self.fields.clone()))
    }
}

/// Recorder configuration, applied by [`Recorder::configure`].
#[derive(Debug, Default)]
pub struct ObsConfig {
    /// New stderr filter level (`None` keeps the current one).
    pub level: Option<Level>,
    /// Enable/disable the stderr sink (`None` keeps the current state).
    pub stderr: Option<bool>,
    /// Attach a JSONL trace sink (`None` keeps the current one).
    pub trace: Option<JsonlSink>,
}

/// The live resource-profiling state: the shared track the background
/// sampler fills, plus the epoch its timestamps count from and the stop
/// flag that halts the sampler thread.
struct ResHandle {
    epoch: Instant,
    track: Arc<Mutex<ResourceTrack>>,
    stop: Arc<AtomicBool>,
}

/// The resource snapshot a span takes when it opens (paired with a second
/// sample at close to produce the span's [`SpanResources`]).
struct SpanResStart {
    usage: ResUsage,
    /// Enter time on the resource track's axis (for `peak_between`).
    t_us: u64,
    /// Value of the `{span}.bytes.in` counter at enter.
    bytes_in: u64,
}

struct Inner {
    start: Instant,
    seq: u64,
    trace: Option<JsonlSink>,
    metrics: Metrics,
    /// Names of the spans currently open, outermost first. The pipeline is
    /// single-threaded, so a plain stack captures the hierarchy.
    stack: Vec<String>,
    /// The last [`EVENT_RING_CAP`] warn/error events, oldest first.
    ring: VecDeque<RingEvent>,
    /// Monotonic cursor for the ring (advances on every retained event).
    ring_seq: u64,
    /// Resource-profiling state (`None` until [`Recorder::enable_resources`]
    /// succeeds — i.e. never on a platform without `/proc`).
    res: Option<ResHandle>,
}

/// The observability recorder.
pub struct Recorder {
    level: AtomicU8,
    stderr: AtomicBool,
    /// Lock-free mirror of `inner.res.is_some()` so span enter/exit can
    /// skip the `/proc` reads entirely when profiling is off.
    res_on: AtomicBool,
    inner: Mutex<Inner>,
}

impl Default for Recorder {
    fn default() -> Self {
        Self::new()
    }
}

impl std::fmt::Debug for Recorder {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("Recorder")
    }
}

fn lock_inner(recorder: &Recorder) -> std::sync::MutexGuard<'_, Inner> {
    // Observability must never poison-panic the audit: if a panicking
    // thread held the lock, keep using the (counter-only) state.
    match recorder.inner.lock() {
        Ok(guard) => guard,
        Err(poisoned) => poisoned.into_inner(),
    }
}

fn lock_track(track: &Mutex<ResourceTrack>) -> std::sync::MutexGuard<'_, ResourceTrack> {
    match track.lock() {
        Ok(guard) => guard,
        Err(poisoned) => poisoned.into_inner(),
    }
}

impl Recorder {
    /// A fresh recorder: level `Warn`, stderr on, no trace sink. The quiet
    /// default keeps library consumers (tests, benches) silent while still
    /// surfacing real problems; the CLI raises the level to `Info`.
    pub fn new() -> Recorder {
        Recorder {
            level: AtomicU8::new(Level::Warn.as_u8()),
            stderr: AtomicBool::new(true),
            res_on: AtomicBool::new(false),
            inner: Mutex::new(Inner {
                start: Instant::now(),
                seq: 0,
                trace: None,
                metrics: Metrics::new(),
                stack: Vec::new(),
                ring: VecDeque::new(),
                ring_seq: 0,
                res: None,
            }),
        }
    }

    /// Start resource profiling: take a first `/proc` sample, seed the
    /// shared [`ResourceTrack`], and spawn a background sampler thread that
    /// pushes a sample every `interval` and keeps the process gauges
    /// ([`res::PROCESS_RSS_GAUGE`], [`res::PROCESS_CPU_US_GAUGE`]) current.
    ///
    /// Returns `false` when `/proc` is unavailable (non-Linux) — the
    /// recorder then behaves exactly as before: no resource fields anywhere.
    /// Idempotent: a second call on an already-profiling recorder is a
    /// no-op returning `true`. Requires the process-global recorder (the
    /// sampler thread holds the reference for the process lifetime).
    pub fn enable_resources(&'static self, interval: Duration) -> bool {
        let Some(first) = res::sample_self() else {
            return false;
        };
        let mut track = ResourceTrack::new();
        let epoch = track.epoch();
        track.push(first);
        let track = Arc::new(Mutex::new(track));
        let stop = Arc::new(AtomicBool::new(false));
        {
            let mut inner = lock_inner(self);
            if inner.res.is_some() {
                return true;
            }
            inner.res = Some(ResHandle {
                epoch,
                track: Arc::clone(&track),
                stop: Arc::clone(&stop),
            });
            inner
                .metrics
                .gauge_set(res::PROCESS_RSS_GAUGE, clamp_i64(first.rss_bytes));
            inner
                .metrics
                .gauge_set(res::PROCESS_CPU_US_GAUGE, clamp_i64(first.cpu_us));
        }
        self.res_on.store(true, Ordering::Relaxed);
        let interval = interval.max(Duration::from_millis(1));
        std::thread::Builder::new()
            .name("obs-res-sampler".into())
            .spawn(move || loop {
                std::thread::sleep(interval);
                if stop.load(Ordering::Relaxed) {
                    break;
                }
                // A vanished /proc mid-run (should not happen) ends the
                // sampler; the last pushed sample stays authoritative.
                let Some(usage) = res::sample_self() else {
                    break;
                };
                lock_track(&track).push(usage);
                self.gauge_set(res::PROCESS_RSS_GAUGE, clamp_i64(usage.rss_bytes));
                self.gauge_set(res::PROCESS_CPU_US_GAUGE, clamp_i64(usage.cpu_us));
            })
            .is_ok()
    }

    /// Whether resource profiling is active.
    pub fn resources_enabled(&self) -> bool {
        self.res_on.load(Ordering::Relaxed)
    }

    /// Stop the sampler thread and detach the resource state (tests).
    /// Already-recorded resource metrics stay in the registry.
    pub fn disable_resources(&self) {
        self.res_on.store(false, Ordering::Relaxed);
        if let Some(handle) = lock_inner(self).res.take() {
            handle.stop.store(true, Ordering::Relaxed);
        }
    }

    /// Apply a configuration.
    pub fn configure(&self, config: ObsConfig) {
        if let Some(level) = config.level {
            self.level.store(level.as_u8(), Ordering::Relaxed);
        }
        if let Some(stderr) = config.stderr {
            self.stderr.store(stderr, Ordering::Relaxed);
        }
        if let Some(sink) = config.trace {
            lock_inner(self).trace = Some(sink);
        }
    }

    /// Open a file trace sink at `path`.
    pub fn trace_to_file(&self, path: &Path) -> std::io::Result<()> {
        let sink = JsonlSink::create(path)?;
        lock_inner(self).trace = Some(sink);
        Ok(())
    }

    /// Attach an arbitrary writer as the trace sink (tests).
    pub fn trace_to_writer(&self, out: Box<dyn Write + Send>) {
        lock_inner(self).trace = Some(JsonlSink::new(out));
    }

    /// The current stderr filter level.
    pub fn level(&self) -> Level {
        Level::from_u8(self.level.load(Ordering::Relaxed))
    }

    /// Emit a structured event. Events at or above the filter level go to
    /// stderr (when enabled); every event goes to the trace sink.
    pub fn event(&self, level: Level, msg: &str, fields: &[Field]) {
        if self.stderr.load(Ordering::Relaxed) && level.passes(self.level()) {
            write_stderr(level, msg, fields);
        }
        let mut inner = lock_inner(self);
        // Warn/error events are retained in a bounded ring regardless of
        // the stderr filter and trace sink, so `obs tail` can stream a
        // daemon's recent problems after the fact.
        if level.passes(Level::Warn) {
            inner.ring_seq += 1;
            let event = RingEvent {
                seq: inner.ring_seq,
                t_us: elapsed_us(inner.start),
                level,
                msg: msg.to_string(),
                fields: fields
                    .iter()
                    .map(|(k, v)| format!("{k}={v}"))
                    .collect::<Vec<_>>()
                    .join(" "),
            };
            if inner.ring.len() >= EVENT_RING_CAP {
                inner.ring.pop_front();
            }
            inner.ring.push_back(event);
        }
        if inner.trace.is_some() {
            inner.seq += 1;
            let seq = inner.seq;
            let t_us = elapsed_us(inner.start);
            let record = event_record(seq, t_us, level, msg, fields);
            if let Some(trace) = inner.trace.as_mut() {
                trace.write(&record);
            }
        }
    }

    /// Enter a named span; the returned guard closes it on drop, recording
    /// wall time into the metrics and (when attached) the trace sink.
    pub fn enter(&self, name: impl Into<String>) -> SpanGuard<'_> {
        let name = name.into();
        // Sample /proc before taking the lock so profiling cost never
        // extends the critical section.
        let sampled = if self.res_on.load(Ordering::Relaxed) {
            res::sample_self()
        } else {
            None
        };
        let mut inner = lock_inner(self);
        inner.stack.push(name.clone());
        let res = match (sampled, inner.res.as_ref()) {
            (Some(usage), Some(handle)) => Some(SpanResStart {
                usage,
                t_us: elapsed_us(handle.epoch),
                bytes_in: inner.metrics.counter(&format!("{name}.bytes.in")),
            }),
            _ => None,
        };
        drop(inner);
        SpanGuard {
            recorder: self,
            name,
            start: Instant::now(),
            closed: false,
            res,
        }
    }

    fn exit_span(&self, name: &str, start: Instant, res_start: Option<SpanResStart>) {
        let dur_us = elapsed_us(start);
        let exit_usage = match res_start {
            Some(_) => res::sample_self(),
            None => None,
        };
        let mut inner = lock_inner(self);
        // Pop this span off the stack (LIFO by construction; tolerate an
        // out-of-order drop by removing the last matching entry).
        let parent = match inner.stack.iter().rposition(|n| n == name) {
            Some(at) => {
                inner.stack.remove(at);
                at.checked_sub(1).and_then(|i| inner.stack.get(i).cloned())
            }
            None => None,
        };
        inner.metrics.span_done(name, dur_us);
        inner
            .metrics
            // lint:allow(metric-discipline): the `{span}.us` histogram is
            // derived from the span name, which is itself a static literal
            // at every `span()`/`enter()` call site — no new cardinality.
            .observe(&format!("{name}.us"), &LATENCY_US_BOUNDS, dur_us);
        let span_res = match (res_start, exit_usage) {
            (Some(begin), Some(end)) => {
                // Peak under the span: the enter/exit samples plus any
                // background-sampler points in the open window.
                let peak = inner.res.as_ref().map(|handle| {
                    let exit_t_us = elapsed_us(handle.epoch);
                    lock_track(&handle.track)
                        .peak_between(begin.t_us, exit_t_us)
                        .unwrap_or(0)
                        .max(begin.usage.rss_bytes)
                        .max(end.rss_bytes)
                });
                peak.map(|peak_rss_bytes| {
                    let bytes_now = inner.metrics.counter(&format!("{name}.bytes.in"));
                    let resources = SpanResources {
                        peak_rss_bytes,
                        rss_delta_bytes: end.rss_bytes as i64 - begin.usage.rss_bytes as i64,
                        cpu_us: end.cpu_us.saturating_sub(begin.usage.cpu_us),
                        bytes_in: bytes_now.saturating_sub(begin.bytes_in),
                    };
                    inner.metrics.res_done(name, &resources);
                    resources
                })
            }
            _ => None,
        };
        if inner.trace.is_some() {
            inner.seq += 1;
            let seq = inner.seq;
            let t_us = elapsed_us(inner.start);
            let mut record = span_record(seq, t_us, name, parent.as_deref(), dur_us);
            if let Some(resources) = &span_res {
                record = with_span_resources(record, resources);
            }
            if let Some(trace) = inner.trace.as_mut() {
                trace.write(&record);
            }
        }
    }

    /// Add `n` to counter `name`.
    pub fn add(&self, name: &str, n: u64) {
        lock_inner(self).metrics.add(name, n);
    }

    /// Record `value` into histogram `name` over `bounds`.
    pub fn observe(&self, name: &str, bounds: &[u64], value: u64) {
        lock_inner(self).metrics.observe(name, bounds, value);
    }

    /// Set gauge `name` to `value` (authoritative-writer form).
    pub fn gauge_set(&self, name: &str, value: i64) {
        lock_inner(self).metrics.gauge_set(name, value);
    }

    /// Move gauge `name` by `delta`.
    pub fn gauge_add(&self, name: &str, delta: i64) {
        lock_inner(self).metrics.gauge_add(name, delta);
    }

    /// Move gauge `name` down by `delta`.
    pub fn gauge_sub(&self, name: &str, delta: i64) {
        lock_inner(self).metrics.gauge_sub(name, delta);
    }

    /// Add `n` to the sliding-window counter `name`.
    pub fn window_add(&self, name: &str, n: u64) {
        lock_inner(self).metrics.window_add(name, n);
    }

    /// Record `value` into the sliding-window histogram `name`.
    pub fn window_observe(&self, name: &str, bounds: &[u64], value: u64) {
        lock_inner(self).metrics.window_observe(name, bounds, value);
    }

    /// Retained warn/error events with ring sequence strictly greater
    /// than `since`, oldest first (pass `0` for everything buffered).
    /// Events older than the ring capacity are gone — the returned
    /// events' `seq` fields tell the caller what it actually got.
    pub fn events_since(&self, since: u64) -> Vec<RingEvent> {
        lock_inner(self)
            .ring
            .iter()
            .filter(|e| e.seq > since)
            .cloned()
            .collect()
    }

    /// The newest retained event's ring sequence (0 when none yet) — the
    /// cursor a streaming consumer resumes from.
    pub fn ring_cursor(&self) -> u64 {
        lock_inner(self).ring_seq
    }

    /// An owned copy of the metric registry plus uptime. When resource
    /// profiling is active, a synthetic `"process"` entry summarizing the
    /// whole run (lifetime peak RSS, net RSS delta, total CPU) is injected
    /// into the snapshot's resource registry — computed here, never stored
    /// live, so merges and absorbs cannot double-count it.
    pub fn snapshot(&self) -> MetricsSnapshot {
        let inner = lock_inner(self);
        let mut metrics = inner.metrics.clone();
        if let Some(handle) = inner.res.as_ref() {
            let track = lock_track(&handle.track);
            let current = res::sample_self().or_else(|| {
                track.latest().map(|p| ResUsage {
                    rss_bytes: p.rss_bytes,
                    cpu_us: p.cpu_us,
                })
            });
            if let (Some(first), Some(now), Some(peak)) =
                (track.first(), current, track.peak_rss_bytes())
            {
                metrics.res_set(
                    "process",
                    ResStats {
                        count: track.samples(),
                        peak_rss_bytes: peak.max(now.rss_bytes),
                        rss_delta_bytes: now.rss_bytes as i64 - first.rss_bytes as i64,
                        cpu_us: now.cpu_us.saturating_sub(first.cpu_us),
                        bytes_in: 0,
                    },
                );
            }
        }
        MetricsSnapshot {
            metrics,
            uptime_us: elapsed_us(inner.start),
        }
    }

    /// Flush the trace sink (call before process exit).
    pub fn flush(&self) {
        if let Some(trace) = lock_inner(self).trace.as_mut() {
            trace.flush();
        }
    }

    /// Merge a worker thread's [`LocalRecorder`] into this recorder's
    /// registry (one lock acquisition per worker, at join). Counters add,
    /// histograms merge bucket-wise, span stats fold — see
    /// [`Metrics::merge_from`] — so the final snapshot equals the serial
    /// run's regardless of thread count or join order.
    pub fn absorb(&self, local: LocalRecorder) {
        self.merge(local.into_metrics());
    }

    /// Merge an owned [`Metrics`] registry into this recorder — the same
    /// associative fold as [`Recorder::absorb`], for callers holding a
    /// finished job snapshot rather than a live `LocalRecorder`.
    pub fn merge(&self, metrics: Metrics) {
        lock_inner(self).metrics.merge_from(metrics);
    }
}

/// A private, lock-free metric recorder for one worker thread.
///
/// The global [`Recorder`] serializes every `add`/`observe` behind a mutex
/// and threads a *single* span stack through the trace sink — fine for the
/// serial pipeline, hostile to a parallel one. Workers instead accumulate
/// into a `LocalRecorder` (plain owned [`Metrics`], no lock, no trace
/// writes, no global span stack) and merge once at join via
/// [`Recorder::absorb`]. Timing spans recorded here feed the same
/// `SpanStats` + `{name}.us` latency histogram pair the global
/// [`Recorder::enter`] guard produces, so per-unit work is indistinguishable
/// in the snapshot from work timed on the main thread.
#[derive(Debug, Default)]
pub struct LocalRecorder {
    metrics: Metrics,
}

impl LocalRecorder {
    /// Empty recorder.
    pub fn new() -> LocalRecorder {
        LocalRecorder::default()
    }

    /// Add `n` to counter `name`.
    pub fn add(&mut self, name: &str, n: u64) {
        self.metrics.add(name, n);
    }

    /// Record `value` into histogram `name` over `bounds`.
    pub fn observe(&mut self, name: &str, bounds: &[u64], value: u64) {
        self.metrics.observe(name, bounds, value);
    }

    /// Move gauge `name` by `delta`. Local gauges must use balanced
    /// `gauge_add`/`gauge_sub` pairs (never `set`): the absorb at join
    /// *sums* net movements, so only deltas merge meaningfully.
    pub fn gauge_add(&mut self, name: &str, delta: i64) {
        self.metrics.gauge_add(name, delta);
    }

    /// Move gauge `name` down by `delta`.
    pub fn gauge_sub(&mut self, name: &str, delta: i64) {
        self.metrics.gauge_sub(name, delta);
    }

    /// Add `n` to the sliding-window counter `name`.
    pub fn window_add(&mut self, name: &str, n: u64) {
        self.metrics.window_add(name, n);
    }

    /// Record `value` into the sliding-window histogram `name`.
    pub fn window_observe(&mut self, name: &str, bounds: &[u64], value: u64) {
        self.metrics.window_observe(name, bounds, value);
    }

    /// Time `f` as a completed span named `name`: records the duration into
    /// the span aggregate and the `{name}.us` latency histogram, mirroring
    /// what dropping a global span guard does (minus the trace record —
    /// workers never write the trace, which keeps its `seq` stream and
    /// parent attribution single-threaded).
    pub fn time<R>(&mut self, name: &str, f: impl FnOnce() -> R) -> R {
        let start = Instant::now();
        let out = f();
        let dur_us = elapsed_us(start);
        self.metrics.span_done(name, dur_us);
        self.metrics
            // lint:allow(metric-discipline): derived `{span}.us` histogram;
            // span names are static literals at their call sites.
            .observe(&format!("{name}.us"), &LATENCY_US_BOUNDS, dur_us);
        out
    }

    /// Record a completed span of already-measured duration: the same
    /// `SpanStats` + `{name}.us` histogram pair [`LocalRecorder::time`]
    /// produces, for callers that must not hold a lock while timing.
    pub fn span(&mut self, name: &str, dur_us: u64) {
        self.metrics.span_done(name, dur_us);
        self.metrics
            // lint:allow(metric-discipline): derived `{span}.us` histogram;
            // span names are static literals at their call sites.
            .observe(&format!("{name}.us"), &LATENCY_US_BOUNDS, dur_us);
    }

    /// Merge another local recorder into this one (job-scoped absorb).
    pub fn absorb(&mut self, other: LocalRecorder) {
        self.metrics.merge_from(other.into_metrics());
    }

    /// Borrow the accumulated registry (tests).
    pub fn metrics(&self) -> &Metrics {
        &self.metrics
    }

    /// Consume the recorder, yielding its registry for merging.
    pub fn into_metrics(self) -> Metrics {
        self.metrics
    }
}

fn elapsed_us(since: Instant) -> u64 {
    u64::try_from(since.elapsed().as_micros()).unwrap_or(u64::MAX)
}

/// Saturating u64→i64 for byte/µs gauges (RSS never nears i64::MAX).
fn clamp_i64(v: u64) -> i64 {
    v.min(i64::MAX as u64) as i64
}

/// RAII guard for an open span; closes it on drop.
#[must_use = "a span closes when its guard drops — bind it with `let _span = ...`"]
pub struct SpanGuard<'a> {
    recorder: &'a Recorder,
    name: String,
    start: Instant,
    closed: bool,
    /// Enter-time resource sample (`None` unless profiling is on).
    res: Option<SpanResStart>,
}

impl SpanGuard<'_> {
    /// Close the span now (instead of at end of scope).
    pub fn finish(mut self) {
        self.close();
    }

    fn close(&mut self) {
        if !self.closed {
            self.closed = true;
            let res = self.res.take();
            self.recorder.exit_span(&self.name, self.start, res);
        }
    }
}

impl Drop for SpanGuard<'_> {
    fn drop(&mut self) {
        self.close();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::field;

    #[test]
    fn counters_and_histograms_accumulate() {
        let rec = Recorder::new();
        rec.add("records", 3);
        rec.add("records", 2);
        rec.observe("bytes", &[10, 100], 7);
        let snap = rec.snapshot();
        assert_eq!(snap.metrics.counter("records"), 5);
        assert_eq!(
            snap.metrics
                .histograms()
                .find(|(n, _)| *n == "bytes")
                .map(|(_, h)| h.count()),
            Some(1)
        );
    }

    #[test]
    fn span_guard_records_on_drop_and_nests() {
        let rec = Recorder::new();
        {
            let _outer = rec.enter("outer");
            std::thread::sleep(std::time::Duration::from_millis(2));
            {
                let _inner = rec.enter("inner");
                std::thread::sleep(std::time::Duration::from_millis(1));
            }
        }
        let snap = rec.snapshot();
        let outer = snap
            .metrics
            .spans()
            .find(|(n, _)| *n == "outer")
            .map(|(_, s)| *s)
            .unwrap();
        let inner = snap
            .metrics
            .spans()
            .find(|(n, _)| *n == "inner")
            .map(|(_, s)| *s)
            .unwrap();
        assert_eq!(outer.count, 1);
        assert_eq!(inner.count, 1);
        // Monotonic timing: the outer span contains the inner one.
        assert!(outer.total_us >= inner.total_us, "{outer:?} vs {inner:?}");
        assert!(inner.total_us >= 1_000, "slept ≥1ms: {inner:?}");
        // The span also feeds its latency histogram.
        assert!(snap.metrics.histograms().any(|(n, _)| n == "outer.us"));
    }

    #[test]
    fn level_filter_gates_stderr_but_not_metrics() {
        let rec = Recorder::new();
        rec.configure(ObsConfig {
            level: Some(Level::Error),
            stderr: Some(false),
            trace: None,
        });
        assert_eq!(rec.level(), Level::Error);
        // No assertion on stderr output (disabled); events still sequence
        // into the trace when one is attached later.
        rec.event(Level::Debug, "quiet", &[field("k", 1u64)]);
        assert_eq!(rec.snapshot().metrics.counters().count(), 0);
    }

    #[test]
    fn local_recorders_absorb_like_direct_recording() {
        let direct = Recorder::new();
        direct.add("units", 3);
        direct.add("units", 2);
        direct.observe("exchanges", &crate::metrics::RECORD_BOUNDS, 7);
        direct.observe("exchanges", &crate::metrics::RECORD_BOUNDS, 900);

        let absorbed = Recorder::new();
        let mut a = LocalRecorder::new();
        a.add("units", 3);
        a.observe("exchanges", &crate::metrics::RECORD_BOUNDS, 7);
        let mut b = LocalRecorder::new();
        b.add("units", 2);
        b.observe("exchanges", &crate::metrics::RECORD_BOUNDS, 900);
        absorbed.absorb(b);
        absorbed.absorb(a);

        let left = direct.snapshot().metrics;
        let right = absorbed.snapshot().metrics;
        assert_eq!(left.counter("units"), right.counter("units"));
        let hist = |m: &Metrics| {
            m.histograms()
                .find(|(n, _)| *n == "exchanges")
                .map(|(_, h)| h.clone())
                .unwrap()
        };
        assert_eq!(hist(&left), hist(&right));
    }

    #[test]
    fn local_time_feeds_span_stats_and_latency_histogram() {
        let mut local = LocalRecorder::new();
        let out = local.time("unit.decode", || {
            std::thread::sleep(std::time::Duration::from_millis(1));
            42
        });
        assert_eq!(out, 42);
        let rec = Recorder::new();
        rec.absorb(local);
        let snap = rec.snapshot();
        let stats = snap
            .metrics
            .spans()
            .find(|(n, _)| *n == "unit.decode")
            .map(|(_, s)| *s)
            .unwrap();
        assert_eq!(stats.count, 1);
        assert!(stats.total_us >= 1_000, "slept ≥1ms: {stats:?}");
        assert!(snap
            .metrics
            .histograms()
            .any(|(n, _)| n == "unit.decode.us"));
    }

    #[test]
    fn warn_and_error_events_land_in_the_ring() {
        let rec = Recorder::new();
        rec.configure(ObsConfig {
            level: Some(Level::Error),
            stderr: Some(false),
            trace: None,
        });
        rec.event(Level::Info, "not retained", &[]);
        rec.event(Level::Warn, "queue full", &[field("depth", 4u64)]);
        rec.event(Level::Error, "job panicked", &[]);
        let events = rec.events_since(0);
        assert_eq!(events.len(), 2, "{events:?}");
        assert_eq!(events[0].msg, "queue full");
        assert_eq!(events[0].fields, "depth=4");
        assert_eq!(events[0].level, Level::Warn);
        assert_eq!(events[1].seq, events[0].seq + 1);
        assert_eq!(rec.ring_cursor(), events[1].seq);
        // Cursor-based resume: only newer events come back.
        let newer = rec.events_since(events[0].seq);
        assert_eq!(newer.len(), 1);
        assert_eq!(newer[0].msg, "job panicked");
        assert!(rec.events_since(events[1].seq).is_empty());
    }

    #[test]
    fn event_ring_is_bounded() {
        let rec = Recorder::new();
        rec.configure(ObsConfig {
            level: Some(Level::Error),
            stderr: Some(false),
            trace: None,
        });
        for i in 0..(EVENT_RING_CAP + 10) {
            rec.event(Level::Warn, &format!("e{i}"), &[]);
        }
        let events = rec.events_since(0);
        assert_eq!(events.len(), EVENT_RING_CAP);
        // Oldest entries were evicted; sequence numbers keep counting.
        assert_eq!(events[0].seq, 11);
        assert_eq!(
            events.last().map(|e| e.seq),
            Some((EVENT_RING_CAP + 10) as u64)
        );
    }

    #[test]
    fn recorder_gauges_and_windows_reach_the_snapshot() {
        let rec = Recorder::new();
        rec.gauge_add("depth", 3);
        rec.gauge_sub("depth", 1);
        rec.gauge_set("workers", 2);
        rec.window_add("reqs", 5);
        let snap = rec.snapshot();
        assert_eq!(snap.metrics.gauge("depth").map(|g| g.value()), Some(2));
        assert_eq!(snap.metrics.gauge("workers").map(|g| g.value()), Some(2));
        assert!(snap.metrics.window("reqs").is_some());
    }

    #[test]
    fn local_gauge_deltas_absorb_to_net_movement() {
        let rec = Recorder::new();
        rec.gauge_add("inflight", 1);
        let mut local = LocalRecorder::new();
        local.gauge_add("inflight", 1);
        local.gauge_sub("inflight", 1);
        local.window_add("jobs", 2);
        rec.absorb(local);
        let snap = rec.snapshot();
        assert_eq!(snap.metrics.gauge("inflight").map(|g| g.value()), Some(1));
        assert_eq!(
            snap.metrics.gauge("inflight").and_then(|g| g.max()),
            Some(1)
        );
    }

    #[test]
    fn resource_profiling_attributes_spans_or_degrades() {
        // Leak a recorder to satisfy `enable_resources`'s `&'static self`
        // without touching the process-global one (test isolation).
        let rec: &'static Recorder = Box::leak(Box::new(Recorder::new()));
        let enabled = rec.enable_resources(std::time::Duration::from_millis(5));
        if !crate::res::available() {
            // Non-Linux degradation: profiling refuses, spans stay plain.
            assert!(!enabled);
            assert!(!rec.resources_enabled());
            let _span = rec.enter("stage");
            drop(_span);
            assert!(rec.snapshot().metrics.resources().next().is_none());
            return;
        }
        assert!(enabled);
        assert!(rec.resources_enabled());
        // Idempotent second enable.
        assert!(rec.enable_resources(std::time::Duration::from_millis(5)));
        {
            let _span = rec.enter("stage");
            rec.add("stage.bytes.in", 1_234);
            std::thread::sleep(std::time::Duration::from_millis(1));
        }
        let snap = rec.snapshot();
        let stage = snap.metrics.resource("stage").expect("stage resources");
        assert_eq!(stage.count, 1);
        assert!(stage.peak_rss_bytes > 0, "{stage:?}");
        assert_eq!(stage.bytes_in, 1_234);
        // The synthetic whole-process entry is injected at snapshot time.
        let process = snap.metrics.resource("process").expect("process entry");
        assert!(process.peak_rss_bytes >= stage.peak_rss_bytes);
        assert!(process.count >= 1);
        // The sampler keeps the process gauges current.
        assert!(snap.metrics.gauge(res::PROCESS_RSS_GAUGE).is_some());
        assert!(snap.metrics.gauge(res::PROCESS_CPU_US_GAUGE).is_some());
        rec.disable_resources();
        assert!(!rec.resources_enabled());
    }

    #[test]
    fn spans_without_profiling_record_no_resources() {
        let rec = Recorder::new();
        {
            let _span = rec.enter("plain");
        }
        let snap = rec.snapshot();
        assert!(snap.metrics.resources().next().is_none());
        assert!(snap.metrics.resource("plain").is_none());
    }

    #[test]
    fn finish_closes_early_and_drop_does_not_double_count() {
        let rec = Recorder::new();
        let span = rec.enter("once");
        span.finish();
        let snap = rec.snapshot();
        let stats = snap
            .metrics
            .spans()
            .find(|(n, _)| *n == "once")
            .map(|(_, s)| *s)
            .unwrap();
        assert_eq!(stats.count, 1);
    }
}
