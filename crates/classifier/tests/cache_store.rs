//! Crash-safety and locking tests for the persistent classification cache:
//! truncated tails, corrupt checksums, fingerprint mismatches, lock
//! contention, stale-lock recovery, and compaction.

use diffaudit_classifier::cache::{ClassifyCache, LOCK_FILE, LOG_FILE, MAGIC};
use diffaudit_ontology::DataTypeCategory;
use std::fs;
use std::path::PathBuf;

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("diffaudit-cache-{}-{}", tag, std::process::id()));
    let _ = fs::remove_dir_all(&dir);
    dir
}

const FP: u64 = 0xDEAD_BEEF_0000_0001;

fn seed_entries(dir: &PathBuf, n: usize) {
    let mut cache = ClassifyCache::open(dir, FP).unwrap();
    let keys: Vec<String> = (0..n).map(|i| format!("key_{i}")).collect();
    let entries: Vec<(&str, Option<DataTypeCategory>)> = keys
        .iter()
        .enumerate()
        .map(|(i, k)| {
            let verdict = if i % 7 == 0 {
                None
            } else {
                Some(DataTypeCategory::ALL[i % DataTypeCategory::ALL.len()])
            };
            (k.as_str(), verdict)
        })
        .collect();
    assert_eq!(cache.insert_batch(&entries).unwrap(), n as u64);
}

#[test]
fn round_trip_across_reopen() {
    let dir = temp_dir("roundtrip");
    seed_entries(&dir, 20);
    let cache = ClassifyCache::open(&dir, FP).unwrap();
    assert!(cache.damage().is_empty());
    assert_eq!(cache.live_records(), 20);
    assert_eq!(cache.get("key_0"), Some(None), "below-threshold verdict");
    assert_eq!(
        cache.get("key_3"),
        Some(Some(DataTypeCategory::ALL[3])),
        "labeled verdict"
    );
    assert_eq!(cache.get("never_inserted"), None);
    let _ = fs::remove_dir_all(&dir);
}

#[test]
fn truncated_tail_is_cut_back_and_survivors_served() {
    let dir = temp_dir("truncated");
    seed_entries(&dir, 10);
    let log = dir.join(LOG_FILE);
    let bytes = fs::read(&log).unwrap();
    // Chop mid-record: the last record becomes structurally incomplete.
    fs::write(&log, &bytes[..bytes.len() - 5]).unwrap();

    let cache = ClassifyCache::open(&dir, FP).unwrap();
    assert_eq!(cache.damage().len(), 1, "{:?}", cache.damage());
    assert!(cache.damage()[0].reason.contains("truncated"));
    assert_eq!(cache.live_records(), 9, "only the torn record is lost");
    assert_eq!(cache.get("key_0"), Some(None));
    assert_eq!(cache.get("key_9"), None, "torn record must miss");
    drop(cache);

    // The file was truncated back to framing alignment: a clean reopen sees
    // no damage and appends land correctly.
    let mut cache = ClassifyCache::open(&dir, FP).unwrap();
    assert!(cache.damage().is_empty(), "{:?}", cache.damage());
    cache.insert_batch(&[("key_9", None)]).unwrap();
    drop(cache);
    let cache = ClassifyCache::open(&dir, FP).unwrap();
    assert!(cache.damage().is_empty());
    assert_eq!(cache.get("key_9"), Some(None));
    let _ = fs::remove_dir_all(&dir);
}

#[test]
fn corrupt_checksum_skips_only_that_record() {
    let dir = temp_dir("checksum");
    seed_entries(&dir, 5);
    let log = dir.join(LOG_FILE);
    let mut bytes = fs::read(&log).unwrap();
    // Flip one byte inside the first record's key ("key_0" tail), well past
    // the header and the length/fingerprint prefix.
    let flip_at = MAGIC.len() + 4 + 8 + 1 + 2;
    bytes[flip_at] ^= 0xFF;
    fs::write(&log, &bytes).unwrap();

    let cache = ClassifyCache::open(&dir, FP).unwrap();
    assert_eq!(cache.damage().len(), 1, "{:?}", cache.damage());
    assert!(cache.damage()[0].reason.contains("checksum"));
    assert_eq!(cache.get("key_0"), None, "corrupt record must miss");
    assert_eq!(cache.live_records(), 4, "later records survive the skip");
    assert_eq!(cache.get("key_4"), Some(Some(DataTypeCategory::ALL[4])));
    let _ = fs::remove_dir_all(&dir);
}

#[test]
fn unrecognized_header_resets_the_file() {
    let dir = temp_dir("header");
    seed_entries(&dir, 3);
    fs::write(dir.join(LOG_FILE), b"not a cache log at all").unwrap();
    let mut cache = ClassifyCache::open(&dir, FP).unwrap();
    assert_eq!(cache.damage().len(), 1);
    assert!(cache.damage()[0].reason.contains("header"));
    assert_eq!(cache.live_records(), 0);
    cache.insert_batch(&[("fresh", None)]).unwrap();
    drop(cache);
    let cache = ClassifyCache::open(&dir, FP).unwrap();
    assert!(cache.damage().is_empty());
    assert_eq!(cache.get("fresh"), Some(None));
    let _ = fs::remove_dir_all(&dir);
}

#[test]
fn fingerprint_mismatch_misses_but_preserves_foreign_entries() {
    let dir = temp_dir("fingerprint");
    seed_entries(&dir, 8);
    // A different configuration must not see the other config's verdicts.
    let other_fp = FP ^ 0xFFFF;
    let mut cache = ClassifyCache::open(&dir, other_fp).unwrap();
    assert_eq!(cache.get("key_0"), None, "foreign entries must miss");
    assert_eq!(cache.live_records(), 8, "but they stay in the store");
    cache
        .insert_batch(&[("key_0", Some(DataTypeCategory::ALL[9]))])
        .unwrap();
    drop(cache);
    // The original configuration still sees its own verdict, not the other
    // config's.
    let cache = ClassifyCache::open(&dir, FP).unwrap();
    assert_eq!(cache.get("key_0"), Some(None));
    let _ = fs::remove_dir_all(&dir);
}

#[test]
fn concurrent_open_degrades_to_read_only() {
    let dir = temp_dir("lock");
    seed_entries(&dir, 4);
    let holder = ClassifyCache::open(&dir, FP).unwrap();
    assert!(!holder.read_only());

    // Second opener (the "batch CLI while the daemon runs" scenario): lock
    // is held by a live process, so reads work but writes are refused.
    let mut second = ClassifyCache::open(&dir, FP).unwrap();
    assert!(second.read_only());
    assert_eq!(second.get("key_1"), Some(Some(DataTypeCategory::ALL[1])));
    assert_eq!(second.insert_batch(&[("nope", None)]).unwrap(), 0);
    drop(second);
    // Dropping the read-only opener must not steal the owner's lock.
    assert!(dir.join(LOCK_FILE).exists());
    drop(holder);
    assert!(!dir.join(LOCK_FILE).exists(), "owner removes its lock");
    let _ = fs::remove_dir_all(&dir);
}

#[test]
fn stale_lock_from_dead_process_is_broken() {
    let dir = temp_dir("stale");
    fs::create_dir_all(&dir).unwrap();
    // No live process has this pid (pid_max on Linux is < 2^22 by default,
    // and the kernel never assigns 4000000000); a corrupt lock counts too.
    fs::write(dir.join(LOCK_FILE), "4000000000\n").unwrap();
    let cache = ClassifyCache::open(&dir, FP).unwrap();
    assert!(!cache.read_only(), "stale lock must be broken");
    drop(cache);
    fs::write(dir.join(LOCK_FILE), "not-a-pid").unwrap();
    let cache = ClassifyCache::open(&dir, FP).unwrap();
    assert!(!cache.read_only(), "corrupt lock must be broken");
    let _ = fs::remove_dir_all(&dir);
}

#[test]
fn compaction_rewrites_dead_weight() {
    let dir = temp_dir("compact");
    // Write the same 40 keys three times: 120 records, 80 dead.
    for _ in 0..3 {
        seed_entries(&dir, 40);
    }
    let before = fs::metadata(dir.join(LOG_FILE)).unwrap().len();
    let cache = ClassifyCache::open(&dir, FP).unwrap();
    assert!(
        cache.compacted(),
        "2/3 dead records must trigger compaction"
    );
    assert_eq!(cache.live_records(), 40);
    assert_eq!(cache.get("key_0"), Some(None));
    assert_eq!(cache.get("key_39"), Some(Some(DataTypeCategory::ALL[4])));
    drop(cache);
    let after = fs::metadata(dir.join(LOG_FILE)).unwrap().len();
    assert!(
        after < before / 2,
        "compaction must shrink the log ({before} -> {after})"
    );
    // And the compacted log is clean and complete.
    let cache = ClassifyCache::open(&dir, FP).unwrap();
    assert!(!cache.compacted());
    assert!(cache.damage().is_empty());
    assert_eq!(cache.live_records(), 40);
    let _ = fs::remove_dir_all(&dir);
}
