// Property-based suites need the external `proptest` crate, which the
// offline default build cannot fetch. The whole file is compiled out unless
// the crate's `fuzz` feature is enabled (with a vendored proptest).
#![cfg(feature = "fuzz")]

//! Property-based tests for classification invariants: totality, bounded
//! confidences, ensemble consistency, and response-format round trips.

use diffaudit_classifier::llm::{parse_response, LlmClassifier, LlmOptions};
use diffaudit_classifier::text::{normalize, tokenize};
use diffaudit_classifier::{Classifier, ConfidenceAggregation, MajorityEnsemble};
use proptest::prelude::*;

proptest! {
    #[test]
    fn tokenizer_never_panics_and_tokens_are_clean(input in "\\PC{0,80}") {
        for token in tokenize(&input) {
            prop_assert!(!token.is_empty());
            prop_assert!(
                // Alphanumeric, and already in lowercase form (some scripts
                // have uppercase-only characters that map to themselves).
                token.chars().all(|c| c.is_alphanumeric()
                    && c.to_lowercase().next() == Some(c)),
                "dirty token {token:?}"
            );
        }
    }

    #[test]
    fn normalize_never_panics(input in "\\PC{0,80}") {
        let _ = normalize(&input);
    }

    #[test]
    fn llm_confidence_bounded_and_deterministic(
        input in "[a-zA-Z0-9_.-]{1,30}",
        temp_idx in 0usize..5,
        seed: u64,
    ) {
        let temperature = [0.0, 0.25, 0.5, 0.75, 1.0][temp_idx];
        let model = LlmClassifier::new(LlmOptions { temperature, seed });
        let a = model.classify_batch(&[&input]);
        let b = model.classify_batch(&[&input]);
        prop_assert_eq!(&a, &b, "nondeterministic at fixed seed");
        prop_assert!((0.0..=1.0).contains(&a[0].confidence));
        // At or below temperature 1 the model always emits a valid label.
        prop_assert!(a[0].category.is_some());
    }

    #[test]
    fn ensemble_label_is_a_member_label(input in "[a-zA-Z0-9_.-]{1,30}", seed: u64) {
        let member_labels: Vec<_> = [0.0, 0.25, 0.5, 0.75, 1.0]
            .iter()
            .filter_map(|&temperature| {
                LlmClassifier::new(LlmOptions { temperature, seed })
                    .classify_batch(&[&input])
                    .remove(0)
                    .category
            })
            .collect();
        let mut ensemble = MajorityEnsemble::new(seed, ConfidenceAggregation::Average);
        if let Some((label, _)) = ensemble.classify(&input) {
            prop_assert!(
                member_labels.contains(&label),
                "ensemble label {label:?} not among member labels {member_labels:?}"
            );
        }
    }

    #[test]
    fn max_aggregation_never_below_average(input in "[a-zA-Z0-9_.-]{1,30}", seed: u64) {
        let max_r = MajorityEnsemble::new(seed, ConfidenceAggregation::Max)
            .classify_batch(&[&input])
            .remove(0);
        let avg_r = MajorityEnsemble::new(seed, ConfidenceAggregation::Average)
            .classify_batch(&[&input])
            .remove(0);
        if max_r.category == avg_r.category {
            prop_assert!(max_r.confidence >= avg_r.confidence - 1e-9);
        }
    }

    #[test]
    fn response_format_round_trips(inputs in prop::collection::vec("[a-zA-Z0-9_.-]{1,20}", 1..8)) {
        // Deduplicate: the response format keys on input text.
        let mut unique = inputs.clone();
        unique.sort();
        unique.dedup();
        let refs: Vec<&str> = unique.iter().map(String::as_str).collect();
        let model = LlmClassifier::new(LlmOptions { temperature: 0.0, seed: 1 });
        let direct = model.classify_batch(&refs);
        // classify_batch itself routes through the textual format; parsing
        // the re-rendered response again must agree.
        let response: String = direct
            .iter()
            .map(|c| {
                format!(
                    "{} // {} // {:.2} // {}\n",
                    c.input,
                    c.category.map(|x| x.label()).unwrap_or("???"),
                    c.confidence,
                    c.explanation
                )
            })
            .collect();
        let reparsed = parse_response(&response, &refs);
        for (a, b) in direct.iter().zip(&reparsed) {
            prop_assert_eq!(a.category, b.category);
        }
    }

    #[test]
    fn parse_response_never_panics(response in "\\PC{0,200}", inputs in prop::collection::vec("[a-z]{1,8}", 0..4)) {
        let refs: Vec<&str> = inputs.iter().map(String::as_str).collect();
        let parsed = parse_response(&response, &refs);
        prop_assert_eq!(parsed.len(), refs.len());
    }
}
