//! Model distillation: training a small local classifier on LLM labels.
//!
//! The paper notes that "our method produces a set of labeled network
//! traffic payload data that can be used to train smaller models that can
//! be run locally instead" (§3.2.2). This module implements that pipeline:
//! the majority-vote ensemble labels the corpus once (expensive in the real
//! world — API calls), then a nearest-centroid model over
//! lexicon-normalized TF-IDF vectors is trained on the confident labels and
//! serves future classifications locally, orders of magnitude faster.
//!
//! Unlike the [`crate::fewshot`] baseline (centroids over the ontology's
//! ~10 examples per category), the student trains on *hundreds* of labeled
//! real keys per category and inherits the teacher's lexicon normalization,
//! which is why it approaches teacher accuracy instead of landing at 16%.

use crate::llm::Classification;
use crate::text::normalize_phrase;
use crate::tfidf::{cosine, SparseVec, TfIdf};
use crate::Classifier;
use diffaudit_ontology::DataTypeCategory;
use std::collections::HashMap;

/// A trained student model.
pub struct DistilledModel {
    tfidf: TfIdf,
    centroids: Vec<(DataTypeCategory, SparseVec)>,
    /// Training-set size actually used (confident teacher labels).
    pub training_examples: usize,
}

/// Training options.
#[derive(Debug, Clone)]
pub struct DistillOptions {
    /// Minimum teacher confidence for an example to enter the training set
    /// (the paper's final labeling threshold, 0.8, is the natural choice).
    pub min_teacher_confidence: f64,
    /// Character n-gram size for the student's vectorizer.
    pub ngram: usize,
}

impl Default for DistillOptions {
    fn default() -> Self {
        Self {
            min_teacher_confidence: 0.8,
            ngram: 3,
        }
    }
}

impl DistilledModel {
    /// Train from teacher classifications (raw key + label + confidence).
    pub fn train(teacher_output: &[Classification], options: &DistillOptions) -> DistilledModel {
        let confident: Vec<(&str, DataTypeCategory)> = teacher_output
            .iter()
            .filter(|c| c.confidence >= options.min_teacher_confidence)
            .filter_map(|c| c.category.map(|cat| (c.input.as_str(), cat)))
            .collect();
        let phrases: Vec<String> = confident
            .iter()
            .map(|(raw, _)| normalize_phrase(raw))
            .collect();
        let tfidf = TfIdf::fit(&phrases, options.ngram);
        // Accumulate per-category centroid in sparse space.
        let mut sums: HashMap<DataTypeCategory, (SparseVec, usize)> = HashMap::new();
        for ((_, category), phrase) in confident.iter().zip(&phrases) {
            let vec = tfidf.transform(phrase);
            let entry = sums
                .entry(*category)
                .or_insert_with(|| (SparseVec::new(), 0));
            for (k, v) in vec {
                *entry.0.entry(k).or_insert(0.0) += v;
            }
            entry.1 += 1;
        }
        let mut centroids: Vec<(DataTypeCategory, SparseVec)> = sums
            .into_iter()
            .map(|(category, (mut sum, count))| {
                for v in sum.values_mut() {
                    *v /= count as f64;
                }
                (category, sum)
            })
            .collect();
        centroids.sort_by_key(|(c, _)| *c);
        DistilledModel {
            tfidf,
            centroids,
            training_examples: confident.len(),
        }
    }

    /// Number of categories the student learned.
    pub fn category_count(&self) -> usize {
        self.centroids.len()
    }
}

impl Classifier for DistilledModel {
    fn name(&self) -> &str {
        "distilled"
    }

    fn classify(&mut self, raw: &str) -> Option<(DataTypeCategory, f64)> {
        let probe = self.tfidf.transform(&normalize_phrase(raw));
        if probe.is_empty() {
            return None;
        }
        let mut best: Option<(DataTypeCategory, f64)> = None;
        for (category, centroid) in &self.centroids {
            let sim = cosine(&probe, centroid);
            if best.is_none_or(|(_, b)| sim > b) {
                best = Some((*category, sim));
            }
        }
        best.filter(|&(_, sim)| sim > 0.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::majority::MajorityEnsemble;
    use crate::ConfidenceAggregation;

    /// Build a labeled corpus: clear keys across several categories.
    fn corpus() -> Vec<&'static str> {
        vec![
            "email_address",
            "user_email",
            "contact_email",
            "emailAddr",
            "tel_number",
            "device_id",
            "deviceId",
            "hardware_device_id",
            "dev_serial",
            "mac_addr",
            "advertising_id",
            "idfa",
            "gaid",
            "ad_identifier",
            "tracking_cookie",
            "latitude",
            "longitude",
            "gps_lat",
            "coord_lon",
            "street_address",
            "password",
            "auth_token",
            "login_secret",
            "session_token",
            "credentials",
            "user_age",
            "birth_date",
            "dob",
            "birth_year",
            "age_group",
            "watch_time",
            "play_duration",
            "session_event",
            "video_action",
            "scroll_event",
        ]
    }

    fn teacher_labels() -> Vec<Classification> {
        let ensemble = MajorityEnsemble::new(5, ConfidenceAggregation::Average);
        let refs = corpus();
        ensemble.classify_batch(&refs)
    }

    #[test]
    fn student_learns_teacher_labels() {
        let teacher = teacher_labels();
        let mut student = DistilledModel::train(&teacher, &DistillOptions::default());
        assert!(student.training_examples > 20);
        assert!(student.category_count() >= 5);
        // On the training keys themselves, the student must agree with the
        // teacher's confident labels almost always.
        let mut agree = 0;
        let mut total = 0;
        for t in &teacher {
            if t.confidence < 0.8 || t.category.is_none() {
                continue;
            }
            total += 1;
            if student.classify(&t.input).map(|(c, _)| c) == t.category {
                agree += 1;
            }
        }
        assert!(
            agree as f64 / total as f64 > 0.85,
            "student agrees on {agree}/{total}"
        );
    }

    #[test]
    fn student_generalizes_to_unseen_spellings() {
        let mut student = DistilledModel::train(&teacher_labels(), &DistillOptions::default());
        // Variants never seen in training, but lexically close.
        let (cat, _) = student.classify("user_email_addr").unwrap();
        assert_eq!(cat, DataTypeCategory::ContactInfo);
        let (cat, _) = student.classify("device_identifier").unwrap();
        assert!(
            matches!(
                cat,
                DataTypeCategory::DeviceHardwareIdentifiers
                    | DataTypeCategory::DeviceSoftwareIdentifiers
            ),
            "{cat:?}"
        );
    }

    #[test]
    fn confidence_threshold_filters_training_set() {
        let teacher = teacher_labels();
        let strict = DistilledModel::train(
            &teacher,
            &DistillOptions {
                min_teacher_confidence: 0.95,
                ngram: 3,
            },
        );
        let lax = DistilledModel::train(
            &teacher,
            &DistillOptions {
                min_teacher_confidence: 0.1,
                ngram: 3,
            },
        );
        assert!(strict.training_examples <= lax.training_examples);
    }

    #[test]
    fn empty_training_set_abstains() {
        let mut model = DistilledModel::train(&[], &DistillOptions::default());
        assert_eq!(model.training_examples, 0);
        assert!(model.classify("anything").is_none());
    }
}
