//! Validation harness: sample accuracy and coverage at confidence
//! thresholds (reproduces paper Table 3 and the §3.2.2 baseline numbers).
//!
//! The paper manually labels a random 10% sample (n=397) of the unique raw
//! data types and reports, per model: overall sample accuracy, and — at
//! confidence thresholds 0.7/0.8/0.9 — the accuracy *among answers meeting
//! the threshold* plus how many inputs were labeled at that threshold
//! ("coverage").

use crate::llm::Classification;
use diffaudit_ontology::DataTypeCategory;
use diffaudit_util::Rng;
use std::collections::HashMap;

/// A ground-truth-labeled raw data type.
#[derive(Debug, Clone, PartialEq)]
pub struct LabeledExample {
    /// The raw key as extracted from traffic.
    pub raw: String,
    /// The manual (ground-truth) label.
    pub truth: DataTypeCategory,
}

/// Draw the paper's validation sample: a seeded random `fraction` of the
/// examples (10% in the paper).
pub fn sample_fraction(
    examples: &[LabeledExample],
    fraction: f64,
    seed: u64,
) -> Vec<LabeledExample> {
    let k = ((examples.len() as f64) * fraction).round() as usize;
    let mut rng = Rng::new(seed);
    rng.sample_indices(examples.len(), k)
        .into_iter()
        .map(|i| examples[i].clone())
        .collect()
}

/// Accuracy/coverage at one confidence threshold.
#[derive(Debug, Clone, PartialEq)]
pub struct ThresholdReport {
    /// The confidence cut-off.
    pub threshold: f64,
    /// Accuracy among answers with confidence ≥ threshold.
    pub accuracy: f64,
    /// Number of inputs labeled at ≥ threshold (the paper's "Labeled").
    pub labeled: usize,
}

/// Full validation result for one model.
#[derive(Debug, Clone, PartialEq)]
pub struct ValidationReport {
    /// Model display name (Table 3 row label).
    pub model: String,
    /// Overall sample accuracy (abstentions/hallucinations count as wrong).
    pub accuracy: f64,
    /// Sample size.
    pub sample_size: usize,
    /// Per-threshold breakdowns.
    pub thresholds: Vec<ThresholdReport>,
}

/// Score a model's classifications against ground truth at the paper's
/// thresholds (0.7 / 0.8 / 0.9).
pub fn validate(
    model: &str,
    classifications: &[Classification],
    truth: &[LabeledExample],
) -> ValidationReport {
    validate_at(model, classifications, truth, &[0.7, 0.8, 0.9])
}

/// Score with explicit thresholds (the ablation sweeps a denser grid).
pub fn validate_at(
    model: &str,
    classifications: &[Classification],
    truth: &[LabeledExample],
    thresholds: &[f64],
) -> ValidationReport {
    assert_eq!(
        classifications.len(),
        truth.len(),
        "classifications and truth must align"
    );
    let total = truth.len().max(1);
    let correct = classifications
        .iter()
        .zip(truth)
        .filter(|(c, t)| c.category == Some(t.truth))
        .count();
    let thresholds = thresholds
        .iter()
        .map(|&threshold| {
            let (mut labeled, mut right) = (0usize, 0usize);
            for (c, t) in classifications.iter().zip(truth) {
                if c.category.is_some() && c.confidence >= threshold {
                    labeled += 1;
                    if c.category == Some(t.truth) {
                        right += 1;
                    }
                }
            }
            ThresholdReport {
                threshold,
                accuracy: if labeled == 0 {
                    0.0
                } else {
                    right as f64 / labeled as f64
                },
                labeled,
            }
        })
        .collect();
    ValidationReport {
        model: model.to_string(),
        accuracy: correct as f64 / total as f64,
        sample_size: truth.len(),
        thresholds,
    }
}

/// A confusion matrix over the 35 categories (rows = truth, cols =
/// prediction; the extra final column counts abstentions).
#[derive(Debug, Clone)]
pub struct ConfusionMatrix {
    counts: HashMap<(DataTypeCategory, Option<DataTypeCategory>), usize>,
}

impl ConfusionMatrix {
    /// Build from aligned classifications and truth.
    pub fn build(classifications: &[Classification], truth: &[LabeledExample]) -> Self {
        let mut counts = HashMap::new();
        for (c, t) in classifications.iter().zip(truth) {
            *counts.entry((t.truth, c.category)).or_insert(0) += 1;
        }
        Self { counts }
    }

    /// Count at a cell.
    pub fn get(&self, truth: DataTypeCategory, predicted: Option<DataTypeCategory>) -> usize {
        self.counts.get(&(truth, predicted)).copied().unwrap_or(0)
    }

    /// The most-confused (truth, predicted) pairs, excluding the diagonal,
    /// best-first.
    pub fn top_confusions(&self, n: usize) -> Vec<(DataTypeCategory, DataTypeCategory, usize)> {
        let mut pairs: Vec<(DataTypeCategory, DataTypeCategory, usize)> = self
            .counts
            .iter()
            .filter_map(|(&(t, p), &count)| match p {
                Some(p) if p != t => Some((t, p, count)),
                _ => None,
            })
            .collect();
        pairs.sort_by(|a, b| b.2.cmp(&a.2).then(a.0.cmp(&b.0)).then(a.1.cmp(&b.1)));
        pairs.truncate(n);
        pairs
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn example(raw: &str, truth: DataTypeCategory) -> LabeledExample {
        LabeledExample {
            raw: raw.to_string(),
            truth,
        }
    }

    fn classification(
        input: &str,
        category: Option<DataTypeCategory>,
        confidence: f64,
    ) -> Classification {
        Classification {
            input: input.to_string(),
            category,
            confidence,
            explanation: String::new(),
        }
    }

    #[test]
    fn accuracy_counts_abstentions_as_wrong() {
        let truth = vec![
            example("a", DataTypeCategory::Age),
            example("b", DataTypeCategory::Age),
        ];
        let cls = vec![
            classification("a", Some(DataTypeCategory::Age), 0.9),
            classification("b", None, 0.0),
        ];
        let report = validate("m", &cls, &truth);
        assert!((report.accuracy - 0.5).abs() < 1e-9);
    }

    #[test]
    fn threshold_gating() {
        let truth = vec![
            example("a", DataTypeCategory::Age),
            example("b", DataTypeCategory::Age),
            example("c", DataTypeCategory::Age),
        ];
        let cls = vec![
            classification("a", Some(DataTypeCategory::Age), 0.95), // right, high conf
            classification("b", Some(DataTypeCategory::Name), 0.75), // wrong, mid conf
            classification("c", Some(DataTypeCategory::Age), 0.5),  // right, low conf
        ];
        let report = validate("m", &cls, &truth);
        // Overall: 2/3.
        assert!((report.accuracy - 2.0 / 3.0).abs() < 1e-9);
        // ≥0.7: a (right) and b (wrong) qualify → 1/2, labeled 2.
        let t07 = &report.thresholds[0];
        assert_eq!(t07.labeled, 2);
        assert!((t07.accuracy - 0.5).abs() < 1e-9);
        // ≥0.9: only a → 1/1, labeled 1.
        let t09 = &report.thresholds[2];
        assert_eq!(t09.labeled, 1);
        assert!((t09.accuracy - 1.0).abs() < 1e-9);
    }

    #[test]
    fn empty_threshold_bucket_reports_zero() {
        let truth = vec![example("a", DataTypeCategory::Age)];
        let cls = vec![classification("a", Some(DataTypeCategory::Age), 0.1)];
        let report = validate("m", &cls, &truth);
        assert_eq!(report.thresholds[2].labeled, 0);
        assert_eq!(report.thresholds[2].accuracy, 0.0);
    }

    #[test]
    fn sampling_is_seeded_and_sized() {
        let examples: Vec<LabeledExample> = (0..1000)
            .map(|i| example(&format!("k{i}"), DataTypeCategory::Age))
            .collect();
        let a = sample_fraction(&examples, 0.1, 42);
        let b = sample_fraction(&examples, 0.1, 42);
        let c = sample_fraction(&examples, 0.1, 43);
        assert_eq!(a.len(), 100);
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn confusion_matrix() {
        let truth = vec![
            example("a", DataTypeCategory::Age),
            example("b", DataTypeCategory::Age),
            example("c", DataTypeCategory::Name),
        ];
        let cls = vec![
            classification("a", Some(DataTypeCategory::Age), 0.9),
            classification("b", Some(DataTypeCategory::Name), 0.9),
            classification("c", None, 0.0),
        ];
        let m = ConfusionMatrix::build(&cls, &truth);
        assert_eq!(m.get(DataTypeCategory::Age, Some(DataTypeCategory::Age)), 1);
        assert_eq!(
            m.get(DataTypeCategory::Age, Some(DataTypeCategory::Name)),
            1
        );
        assert_eq!(m.get(DataTypeCategory::Name, None), 1);
        let top = m.top_confusions(5);
        assert_eq!(top.len(), 1);
        assert_eq!(top[0], (DataTypeCategory::Age, DataTypeCategory::Name, 1));
    }

    #[test]
    #[should_panic(expected = "must align")]
    fn misaligned_inputs_panic() {
        let truth = vec![example("a", DataTypeCategory::Age)];
        validate("m", &[], &truth);
    }
}
