//! Raw-key normalization and the acronym/abbreviation lexicon.
//!
//! Network payload keys arrive as `camelCase`, `snake_case`, `kebab-case`,
//! dotted paths, header-style `X-Prefixed-Names`, and dense acronyms
//! (`rtt`, `ttfb`, `idfa`). The tokenizer splits all of those into lowercase
//! word tokens; the lexicon expands acronyms and common abbreviations into
//! the vocabulary the ontology speaks. The paper leans on GPT-4's world
//! knowledge for this expansion — the lexicon is that knowledge, made
//! explicit and testable.

/// A reusable token arena: one shared text buffer plus `(start, end)` bounds
/// per token, so batch classification tokenizes thousands of keys without a
/// `String` allocation per token. [`tokenize`] delegates through this type,
/// which keeps the boundary algorithm in exactly one place.
#[derive(Debug, Default)]
pub struct TokenArena {
    text: String,
    bounds: Vec<(u32, u32)>,
    chars: Vec<char>,
}

impl TokenArena {
    /// Empty arena.
    pub fn new() -> Self {
        Self::default()
    }

    /// Drop all tokens but keep the allocated buffers.
    pub fn clear(&mut self) {
        self.text.clear();
        self.bounds.clear();
    }

    /// Number of tokens currently held.
    pub fn len(&self) -> usize {
        self.bounds.len()
    }

    /// `true` when the arena holds no tokens.
    pub fn is_empty(&self) -> bool {
        self.bounds.is_empty()
    }

    /// Token `i` as a string slice into the shared buffer.
    pub fn token(&self, i: usize) -> &str {
        let (start, end) = self.bounds[i];
        &self.text[start as usize..end as usize]
    }

    /// Split `raw` into lowercase word tokens appended to the arena;
    /// returns the index range of the new tokens.
    ///
    /// Boundaries: any non-alphanumeric character, a lower→upper case change
    /// (`deviceId` → `device id`), and letter↔digit changes (`ip4addr` →
    /// `ip 4 addr`). Runs of uppercase are kept together until a lowercase
    /// follows (`HTTPRequest` → `http request`).
    pub fn split(&mut self, raw: &str) -> std::ops::Range<usize> {
        let first = self.bounds.len();
        self.chars.clear();
        self.chars.extend(raw.chars());
        let mut start = self.text.len();
        for i in 0..self.chars.len() {
            let c = self.chars[i];
            if !c.is_alphanumeric() {
                if self.text.len() > start {
                    self.bounds.push((start as u32, self.text.len() as u32));
                    start = self.text.len();
                }
                continue;
            }
            if self.text.len() > start {
                let prev = self.chars[i - 1];
                let boundary =
                    // fooBar
                    (prev.is_lowercase() && c.is_uppercase())
                    // HTTPRequest -> HTTP | Request (upper run followed by Upper+lower)
                    || (prev.is_uppercase()
                        && c.is_uppercase()
                        && self.chars.get(i + 1).is_some_and(|n| n.is_lowercase()))
                    // letter <-> digit
                    || (prev.is_ascii_digit() != c.is_ascii_digit()
                        && (prev.is_alphanumeric() && c.is_alphanumeric())
                        && (prev.is_ascii_digit() || c.is_ascii_digit()));
                if boundary {
                    self.bounds.push((start as u32, self.text.len() as u32));
                    start = self.text.len();
                }
            }
            for lc in c.to_lowercase() {
                self.text.push(lc);
            }
        }
        if self.text.len() > start {
            self.bounds.push((start as u32, self.text.len() as u32));
        }
        first..self.bounds.len()
    }
}

/// Split a raw key into lowercase word tokens (see [`TokenArena::split`] for
/// the boundary rules).
pub fn tokenize(raw: &str) -> Vec<String> {
    let mut arena = TokenArena::new();
    let range = arena.split(raw);
    range.map(|i| arena.token(i).to_string()).collect()
}

/// The acronym/abbreviation lexicon: token → expansion tokens.
///
/// Sourced from the level-4 vocabulary in paper Table 5 (which itself spells
/// out `IMEI`, `RTT`, `TTFB`, etc.) plus the abbreviations every mobile/web
/// SDK uses in payload keys.
pub const LEXICON: &[(&str, &str)] = &[
    ("os", "operating system"),
    ("rtt", "round trip time"),
    ("ttfb", "time to first byte"),
    ("dob", "date of birth"),
    ("bday", "birthday"),
    ("lang", "language"),
    ("lat", "latitude"),
    ("lon", "longitude"),
    ("lng", "longitude"),
    ("alt", "altitude"),
    ("geo", "geolocation"),
    ("gps", "gps location"),
    ("addr", "address"),
    ("uid", "user id"),
    ("usr", "user"),
    ("uname", "user name"),
    ("ua", "user agent"),
    ("tz", "timezone"),
    ("ts", "timestamp"),
    ("dt", "date"),
    ("idfa", "advertising identifier"),
    ("idfv", "vendor identifier"),
    ("gaid", "advertising identifier"),
    ("adid", "advertising identifier"),
    ("aaid", "advertising identifier"),
    ("imei", "device hardware identifier imei"),
    ("mac", "mac address"),
    ("ssid", "network name"),
    ("msg", "message"),
    ("pwd", "password"),
    ("passwd", "password"),
    ("pass", "password"),
    ("auth", "authentication"),
    ("authz", "authorization"),
    ("creds", "credentials"),
    ("tok", "token"),
    ("jwt", "auth token"),
    ("oauth", "authorization"),
    ("sess", "session"),
    ("sid", "session id"),
    ("cid", "client id"),
    ("did", "device id"),
    ("pid", "profile id"),
    ("res", "resolution"),
    ("px", "pixel"),
    ("dpi", "display density"),
    ("dpr", "display density"),
    ("fps", "frames per second"),
    ("abr", "adaptive bitrate"),
    ("br", "bitrate"),
    ("cpu", "cpu"),
    ("mem", "memory"),
    ("bat", "battery"),
    ("net", "network"),
    ("conn", "connection"),
    ("dns", "dns"),
    ("tcp", "tcp"),
    ("tls", "tls"),
    ("http", "request protocol"),
    ("url", "url"),
    ("uri", "uri"),
    ("ref", "referer"),
    ("referrer", "referer"),
    ("sdk", "sdk"),
    ("api", "api"),
    ("app", "app"),
    ("pkg", "application package"),
    ("ver", "version"),
    ("env", "environment"),
    ("cfg", "settings"),
    ("config", "settings"),
    ("prefs", "preferences"),
    ("opts", "settings"),
    ("gdpr", "consent"),
    ("ccpa", "consent"),
    ("coppa", "consent"),
    ("tcf", "consent"),
    ("fn", "first name"),
    ("ln", "last name"),
    ("tel", "telephone number"),
    ("ph", "phone number"),
    ("zip", "zip code"),
    ("cc", "country"),
    ("ctry", "country"),
    ("rgn", "region"),
    ("loc", "location"),
    ("img", "image"),
    ("vid", "video"),
    ("aud", "audio"),
    ("vol", "volume"),
    ("dur", "duration"),
    ("cnt", "count"),
    ("evt", "event"),
    ("evts", "events"),
    ("imp", "ad impression"),
    ("clk", "ad click"),
    ("cpm", "bid"),
    ("rtb", "bid"),
    ("dmp", "audience segment"),
    ("seg", "segment"),
    ("utm", "marketing"),
    ("promo", "marketing"),
    ("xp", "score"),
    ("hp", "game state"),
    ("acct", "account"),
    ("num", "number"),
    ("no", "number"),
    ("id", "id"),
    ("ids", "id"),
    ("info", "information"),
    // World-knowledge synonyms: developer field names that GPT-4 resolves
    // semantically even though they share no characters with the ontology
    // vocabulary.
    ("moniker", "user name"),
    ("mailbox", "email address"),
    ("hotline", "phone number"),
    ("gamertag", "alias"),
    ("screenname", "alias"),
    ("otp", "authentication"),
    ("bearer", "auth token"),
    ("secret", "password"),
    ("anon", "unique pseudonym"),
    ("visitor", "user id"),
    ("imsi", "device hardware identifier imei"),
    ("fbp", "tracking identifier"),
    ("muid", "advertising identifier"),
    ("handset", "device model"),
    ("viewport", "screen"),
    ("chipset", "cpu"),
    ("yob", "birth year"),
    ("cohort", "age group"),
    ("i18n", "locale"),
    ("l10n", "locale"),
    ("salutation", "gender"),
    ("territory", "region"),
    ("epoch", "timestamp"),
    ("clock", "time"),
    ("dst", "timezone"),
    ("ping", "round trip time"),
    ("downlink", "bandwidth"),
    ("mtu", "connection"),
    ("sponsor", "advertiser"),
    ("cpc", "ad click"),
    ("monetize", "marketing"),
    ("engagement", "interaction"),
    ("streak", "usage session"),
    ("toggles", "settings"),
    ("flags", "settings"),
    ("runtime", "environment"),
    ("cluster", "audience segment"),
    ("propensity", "purchase tendency"),
    ("lookalike", "audience segment"),
];

/// Expand tokens through the lexicon, yielding the normalized token stream.
/// Unknown tokens pass through unchanged.
pub fn expand(tokens: &[String]) -> Vec<String> {
    let mut out = Vec::with_capacity(tokens.len());
    for token in tokens {
        match LEXICON.iter().find(|(abbr, _)| abbr == token) {
            Some((_, expansion)) => out.extend(expansion.split(' ').map(str::to_string)),
            None => out.push(token.clone()),
        }
    }
    out
}

/// Tokenize and expand in one step; the normalized form every classifier
/// consumes.
pub fn normalize(raw: &str) -> Vec<String> {
    expand(&tokenize(raw))
}

/// The normalized form re-joined into a phrase (for n-gram vectorizers).
pub fn normalize_phrase(raw: &str) -> String {
    normalize(raw).join(" ")
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toks(raw: &str) -> Vec<String> {
        tokenize(raw)
    }

    #[test]
    fn splits_snake_and_kebab() {
        assert_eq!(toks("device_id"), ["device", "id"]);
        assert_eq!(toks("user-agent"), ["user", "agent"]);
        assert_eq!(toks("a.b.c"), ["a", "b", "c"]);
    }

    #[test]
    fn splits_camel_case() {
        assert_eq!(toks("deviceId"), ["device", "id"]);
        assert_eq!(
            toks("IsOptOutEmailShown"),
            ["is", "opt", "out", "email", "shown"]
        );
        assert_eq!(toks("HTTPRequest"), ["http", "request"]);
        assert_eq!(toks("parseJSONBody"), ["parse", "json", "body"]);
    }

    #[test]
    fn splits_digits() {
        assert_eq!(toks("ip4addr"), ["ip", "4", "addr"]);
        assert_eq!(toks("utm_source2"), ["utm", "source", "2"]);
    }

    #[test]
    fn header_style() {
        assert_eq!(toks("X-Advertising-Id"), ["x", "advertising", "id"]);
    }

    #[test]
    fn paper_examples() {
        assert_eq!(
            toks("pers_ad_show_third_part_measurement"),
            ["pers", "ad", "show", "third", "part", "measurement"]
        );
    }

    #[test]
    fn empty_and_punct_only() {
        assert!(toks("").is_empty());
        assert!(toks("___--..").is_empty());
    }

    #[test]
    fn expansion() {
        assert_eq!(normalize_phrase("os_ver"), "operating system version");
        assert_eq!(normalize_phrase("rtt"), "round trip time");
        assert_eq!(normalize_phrase("user_dob"), "user date of birth");
        assert_eq!(normalize_phrase("idfa"), "advertising identifier");
        assert_eq!(normalize_phrase("unknown_blob"), "unknown blob");
    }

    #[test]
    fn arena_keeps_tokens_across_keys_and_clears() {
        let mut arena = TokenArena::new();
        let a = arena.split("deviceId");
        let b = arena.split("HTTPRequest");
        let got_a: Vec<&str> = a.map(|i| arena.token(i)).collect();
        let got_b: Vec<&str> = b.map(|i| arena.token(i)).collect();
        assert_eq!(got_a, ["device", "id"]);
        assert_eq!(got_b, ["http", "request"]);
        assert_eq!(arena.len(), 4);
        arena.clear();
        assert!(arena.is_empty());
        let c = arena.split("ip4addr");
        let got_c: Vec<&str> = c.map(|i| arena.token(i)).collect();
        assert_eq!(got_c, ["ip", "4", "addr"]);
    }

    #[test]
    fn lexicon_keys_are_unique_and_lowercase() {
        let mut keys: Vec<&str> = LEXICON.iter().map(|(k, _)| *k).collect();
        keys.sort_unstable();
        let n = keys.len();
        keys.dedup();
        assert_eq!(keys.len(), n, "duplicate lexicon key");
        for (k, v) in LEXICON {
            assert_eq!(*k, k.to_lowercase());
            assert_eq!(*v, v.to_lowercase());
        }
    }
}
