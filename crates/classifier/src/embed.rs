//! A deliberately coarse dense embedder ("toy BERT").
//!
//! The paper's PolyFuzz-BERT baseline used frozen BERT token embeddings and
//! scored 18% — *worse* than character TF-IDF, because averaged contextual
//! embeddings of terse payload keys wash out the discriminative signal. This
//! embedder reproduces that failure mode honestly: each word token hashes to
//! a pseudo-random unit vector (the hashing trick), and a phrase is the mean
//! of its token vectors. Related words share no structure (no training), so
//! only exact token overlap creates similarity — and mean pooling dilutes
//! even that.

const DIM: usize = 128;

/// A dense phrase embedding.
#[derive(Debug, Clone, PartialEq)]
pub struct Dense(pub Vec<f64>);

impl Dense {
    /// Cosine similarity.
    pub fn cosine(&self, other: &Dense) -> f64 {
        let dot: f64 = self.0.iter().zip(&other.0).map(|(a, b)| a * b).sum();
        let na: f64 = self.0.iter().map(|v| v * v).sum::<f64>().sqrt();
        let nb: f64 = other.0.iter().map(|v| v * v).sum::<f64>().sqrt();
        if na == 0.0 || nb == 0.0 {
            0.0
        } else {
            (dot / (na * nb)).clamp(-1.0, 1.0)
        }
    }

    /// `true` when every component is zero (no tokens).
    pub fn is_zero(&self) -> bool {
        self.0.iter().all(|&v| v == 0.0)
    }
}

/// Embed one subword piece into a deterministic pseudo-random unit vector.
fn piece_vector(piece: &str) -> Vec<f64> {
    let seed = diffaudit_util::fnv1a64(piece.as_bytes());
    let mut rng = diffaudit_util::Rng::new(seed);
    let mut v: Vec<f64> = (0..DIM).map(|_| rng.gaussian(0.0, 1.0)).collect();
    let norm: f64 = v.iter().map(|x| x * x).sum::<f64>().sqrt();
    for x in &mut v {
        *x /= norm;
    }
    v
}

/// Embed one token as the mean of its character-trigram subword pieces —
/// the WordPiece-ish behavior that makes frozen-BERT mean pooling mushy on
/// terse keys (and the reason the paper's BERT baseline loses to TF-IDF:
/// no IDF weighting, so common subwords dominate).
fn token_vector(token: &str) -> Vec<f64> {
    let padded: Vec<char> = std::iter::once('^')
        .chain(token.chars())
        .chain(std::iter::once('$'))
        .collect();
    let mut acc = vec![0.0; DIM];
    let mut pieces = 0usize;
    if padded.len() < 3 {
        return piece_vector(token);
    }
    for window in padded.windows(3) {
        let piece: String = window.iter().collect();
        for (a, b) in acc.iter_mut().zip(piece_vector(&piece)) {
            *a += b;
        }
        pieces += 1;
    }
    for a in &mut acc {
        *a /= pieces as f64;
    }
    acc
}

/// Embed a phrase: mean of token vectors (this pooling is the point — it is
/// what makes the baseline weak).
pub fn embed_phrase(phrase: &str) -> Dense {
    let tokens: Vec<&str> = phrase.split_whitespace().collect();
    let mut acc = vec![0.0; DIM];
    if tokens.is_empty() {
        return Dense(acc);
    }
    for token in &tokens {
        for (a, b) in acc.iter_mut().zip(token_vector(token)) {
            *a += b;
        }
    }
    for a in &mut acc {
        *a /= tokens.len() as f64;
    }
    Dense(acc)
}

/// Mean of several phrase embeddings (the few-shot centroid).
pub fn centroid(embeddings: &[Dense]) -> Dense {
    let mut acc = vec![0.0; DIM];
    if embeddings.is_empty() {
        return Dense(acc);
    }
    for e in embeddings {
        for (a, b) in acc.iter_mut().zip(&e.0) {
            *a += b;
        }
    }
    for a in &mut acc {
        *a /= embeddings.len() as f64;
    }
    Dense(acc)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic() {
        assert_eq!(embed_phrase("device id"), embed_phrase("device id"));
    }

    #[test]
    fn identical_phrases_similarity_one() {
        let a = embed_phrase("email address");
        assert!((a.cosine(&a) - 1.0).abs() < 1e-9);
    }

    #[test]
    fn token_overlap_creates_similarity() {
        let a = embed_phrase("device id");
        let b = embed_phrase("device serial");
        let c = embed_phrase("marital status");
        assert!(a.cosine(&b) > a.cosine(&c));
    }

    #[test]
    fn unrelated_tokens_near_orthogonal() {
        let a = embed_phrase("latitude");
        let b = embed_phrase("password");
        assert!(a.cosine(&b).abs() < 0.35, "cos={}", a.cosine(&b));
    }

    #[test]
    fn empty_phrase_is_zero() {
        let z = embed_phrase("");
        assert!(z.is_zero());
        assert_eq!(z.cosine(&embed_phrase("anything")), 0.0);
    }

    #[test]
    fn centroid_of_one_is_identity() {
        let a = embed_phrase("session token");
        let c = centroid(&[a.clone()]);
        assert!((a.cosine(&c) - 1.0).abs() < 1e-9);
    }

    #[test]
    fn centroid_between_members() {
        let a = embed_phrase("alpha");
        let b = embed_phrase("beta");
        let c = centroid(&[a.clone(), b.clone()]);
        assert!(c.cosine(&a) > 0.3);
        assert!(c.cosine(&b) > 0.3);
    }
}
