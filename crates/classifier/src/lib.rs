#![forbid(unsafe_code)]
#![warn(missing_docs)]

//! # diffaudit-classifier
//!
//! Data-type classification: raw payload keys → ontology categories
//! (paper §3.2.2 and Appendix C).
//!
//! The paper's primary classifier is GPT-4 driven through the Chat
//! Completions API with the ontology's level-3 labels and level-4 examples
//! in the prompt, a 0–1 temperature sweep, per-answer confidence scores, and
//! a majority-vote ensemble. It is validated against a manually labeled 10%
//! sample and compared with four weaker baselines (fuzzy TF-IDF, fuzzy BERT,
//! zero-shot, few-shot).
//!
//! This crate reimplements the entire stack offline:
//!
//! - [`text`] — key normalization: case/punctuation splitting plus the
//!   acronym/abbreviation lexicon GPT-4's world knowledge supplies in the
//!   paper ("for text with acronyms … use the meaning of the acronyms");
//! - [`tfidf`] — a character-n-gram TF-IDF vectorizer with cosine
//!   similarity (the PolyFuzz-TFIDF baseline);
//! - [`embed`] — a deliberately coarse hashing-trick embedder standing in
//!   for the frozen BERT embeddings baseline;
//! - [`fuzzy`] — fuzzy string matching over the ontology's example terms
//!   using either vectorizer;
//! - [`zeroshot`] — label-name-only classification (the bart-large-mnli
//!   baseline's structure: no examples, just labels);
//! - [`fewshot`] — nearest-centroid one-vs-rest over example embeddings
//!   (the SetFit baseline's structure);
//! - [`llm`] — the GPT-4 simulator: Chat-Completions-shaped API, semantic
//!   scoring with the lexicon, temperature-driven nondeterminism, confidence
//!   output, and the paper's `<input> // <category> // <score> //
//!   <explanation>` response format;
//! - [`majority`] — the temperature-ensemble majority vote with Max/Avg
//!   confidence aggregation (paper Table 3's "Majority-Max"/"Majority-Avg");
//! - [`validate`] — sample accuracy / coverage at confidence thresholds,
//!   reproducing Table 3's harness;
//! - [`cache`] — the persistent, crash-safe, content-addressed store of
//!   finished ensemble verdicts that lets warm re-audits skip the ensemble
//!   entirely.

pub mod cache;
pub mod distill;
pub mod embed;
pub mod fewshot;
pub mod fuzzy;
pub mod llm;
pub mod majority;
pub mod text;
pub mod tfidf;
pub mod validate;
pub mod zeroshot;

pub use cache::{config_fingerprint, CacheDamage, CacheReport, ClassifyCache};
pub use distill::{DistillOptions, DistilledModel};
pub use llm::{ChatMessage, Classification, LlmClassifier, LlmOptions};
pub use majority::{ConfidenceAggregation, MajorityEnsemble};
pub use validate::{LabeledExample, ThresholdReport, ValidationReport};

use diffaudit_ontology::DataTypeCategory;

/// Common interface all classifier implementations expose so the validation
/// harness can sweep them uniformly.
pub trait Classifier {
    /// Short display name (used in reports).
    fn name(&self) -> &str;

    /// Classify one raw data type; `None` when the classifier abstains.
    /// The `f64` is the classifier's confidence in `[0, 1]`.
    fn classify(&mut self, raw: &str) -> Option<(DataTypeCategory, f64)>;
}
