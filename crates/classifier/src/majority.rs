//! The temperature-ensemble majority vote (paper §3.2.2, Table 3).
//!
//! "Considering the inherent nondeterminism of GPT-4, we build a
//! majority-vote model where we take the majority label assigned across all
//! the different temperature models … For the majority-vote model confidence
//! score threshold, we either compute … the maximum confidence score amongst
//! the models that assigned the majority label or we can use the average."

use crate::llm::{
    roundtrip_safe, Classification, ClassifyScratch, LabelOut, LlmClassifier, LlmOptions, PreScored,
};
use diffaudit_ontology::DataTypeCategory;
use std::collections::HashMap;
use std::fmt::Write as _;

/// How the ensemble aggregates member confidences (the paper's
/// Majority-Max vs Majority-Avg rows).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ConfidenceAggregation {
    /// Maximum confidence among members that voted for the majority label.
    Max,
    /// Average confidence among members that voted for the majority label.
    Average,
}

/// The standard temperature grid the paper sweeps.
pub const TEMPERATURE_GRID: [f64; 5] = [0.0, 0.25, 0.5, 0.75, 1.0];

/// An ensemble of simulated GPT-4 models at different temperatures.
pub struct MajorityEnsemble {
    members: Vec<LlmClassifier>,
    aggregation: ConfidenceAggregation,
}

impl MajorityEnsemble {
    /// Build the paper's five-temperature ensemble.
    pub fn new(seed: u64, aggregation: ConfidenceAggregation) -> Self {
        let members = TEMPERATURE_GRID
            .iter()
            .map(|&temperature| LlmClassifier::new(LlmOptions { temperature, seed }))
            .collect();
        Self {
            members,
            aggregation,
        }
    }

    /// Build with an explicit temperature list.
    pub fn with_temperatures(
        seed: u64,
        temperatures: &[f64],
        aggregation: ConfidenceAggregation,
    ) -> Self {
        let members = temperatures
            .iter()
            .map(|&temperature| LlmClassifier::new(LlmOptions { temperature, seed }))
            .collect();
        Self {
            members,
            aggregation,
        }
    }

    /// The aggregation strategy.
    pub fn aggregation(&self) -> ConfidenceAggregation {
        self.aggregation
    }

    /// Classify a batch: each member votes; the majority label wins (ties
    /// broken toward the label with the highest aggregated confidence, then
    /// deterministically by category order).
    pub fn classify_batch(&self, inputs: &[&str]) -> Vec<Classification> {
        self.classify_batch_threads(inputs, 1)
    }

    /// [`Self::classify_batch`] with an explicit worker count.
    ///
    /// For well-formed inputs (single trimmed lines — every key the pipeline
    /// produces) this takes the shared-scoring fast path: the lexicon engine
    /// scores each input **once** and every member replays only its own
    /// temperature noise over the shared [`PreScored`], instead of each
    /// member re-tokenizing, re-scoring, and round-tripping the whole batch
    /// through the textual chat format. The textual render-then-parse loop
    /// is emulated bit-exactly (label validity, `{:.2}` confidence
    /// round-trip), and any input that would not survive that round-trip
    /// unchanged sends the whole batch down the real textual path — results
    /// are identical either way, which `fast_path_matches_textual_path`
    /// pins.
    pub fn classify_batch_threads(&self, inputs: &[&str], threads: usize) -> Vec<Classification> {
        if !inputs.iter().all(|input| roundtrip_safe(input)) {
            return self.classify_textual(inputs);
        }
        diffaudit_util::par::par_map_ctx(
            threads,
            inputs,
            ClassifyScratch::new,
            |scratch, _idx, input| {
                let pre = PreScored::compute(input, scratch);
                let mut votes: Vec<(Option<DataTypeCategory>, f64)> =
                    Vec::with_capacity(self.members.len());
                for member in &self.members {
                    let (label, confidence) = member.answer_scored(&pre);
                    // Emulate the textual round-trip: hallucinated labels
                    // fail `from_label` (no vote), and the confidence passes
                    // through `format!("{:.2}")` + parse exactly as
                    // `parse_response` would see it.
                    let category = match label {
                        LabelOut::Valid(category) => Some(category),
                        LabelOut::Hallucinated(..) => None,
                    };
                    scratch.fmt.clear();
                    let _ = write!(scratch.fmt, "{confidence:.2}");
                    let confidence = scratch.fmt.parse::<f64>().unwrap_or(0.0).clamp(0.0, 1.0);
                    votes.push((category, confidence));
                }
                self.combine(input, &votes)
            },
            |_| {},
        )
    }

    /// The reference implementation: every member renders and parses the
    /// full chat-format response. Kept as the fallback for inputs that do
    /// not survive the textual round-trip, and as the oracle the fast path
    /// is tested against.
    fn classify_textual(&self, inputs: &[&str]) -> Vec<Classification> {
        let member_outputs: Vec<Vec<Classification>> = self
            .members
            .iter()
            .map(|m| m.classify_batch(inputs))
            .collect();
        (0..inputs.len())
            .map(|i| {
                let votes: Vec<(Option<DataTypeCategory>, f64)> = member_outputs
                    .iter()
                    .map(|out| (out[i].category, out[i].confidence))
                    .collect();
                self.combine(inputs[i], &votes)
            })
            .collect()
    }

    fn combine(&self, input: &str, votes: &[(Option<DataTypeCategory>, f64)]) -> Classification {
        let mut tally: HashMap<DataTypeCategory, Vec<f64>> = HashMap::new();
        for &(category, confidence) in votes {
            if let Some(category) = category {
                tally.entry(category).or_default().push(confidence);
            }
        }
        if tally.is_empty() {
            return Classification {
                input: input.to_string(),
                category: None,
                confidence: 0.0,
                explanation: "no member produced a valid label".to_string(),
            };
        }
        let mut entries: Vec<(DataTypeCategory, usize, f64)> = tally
            .into_iter()
            .map(|(category, confidences)| {
                let aggregated = match self.aggregation {
                    ConfidenceAggregation::Max => {
                        confidences.iter().copied().fold(f64::MIN, f64::max)
                    }
                    ConfidenceAggregation::Average => {
                        confidences.iter().sum::<f64>() / confidences.len() as f64
                    }
                };
                (category, confidences.len(), aggregated)
            })
            .collect();
        entries.sort_by(|a, b| {
            b.1.cmp(&a.1)
                .then(b.2.partial_cmp(&a.2).expect("no NaN"))
                .then(a.0.cmp(&b.0))
        });
        let (category, vote_count, confidence) = entries[0];
        Classification {
            input: input.to_string(),
            category: Some(category),
            confidence,
            explanation: format!("majority vote: {vote_count}/{} members", votes.len()),
        }
    }
}

impl crate::Classifier for MajorityEnsemble {
    fn name(&self) -> &str {
        match self.aggregation {
            ConfidenceAggregation::Max => "majority-max",
            ConfidenceAggregation::Average => "majority-avg",
        }
    }

    fn classify(&mut self, raw: &str) -> Option<(DataTypeCategory, f64)> {
        let result = self.classify_batch(&[raw]).into_iter().next()?;
        result.category.map(|c| (c, result.confidence))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Classifier;

    #[test]
    fn majority_agrees_on_clear_inputs() {
        let mut ensemble = MajorityEnsemble::new(11, ConfidenceAggregation::Average);
        let (cat, conf) = ensemble.classify("email_address").unwrap();
        assert_eq!(cat, DataTypeCategory::ContactInfo);
        assert!(conf > 0.5);
    }

    #[test]
    fn max_vs_average_confidence() {
        let max_e = MajorityEnsemble::new(3, ConfidenceAggregation::Max);
        let avg_e = MajorityEnsemble::new(3, ConfidenceAggregation::Average);
        let inputs = ["device_id", "lang", "evt_blob", "geo_x", "usr_7"];
        let maxes = max_e.classify_batch(&inputs);
        let avgs = avg_e.classify_batch(&inputs);
        for (mx, av) in maxes.iter().zip(&avgs) {
            if mx.category == av.category {
                assert!(
                    mx.confidence >= av.confidence - 1e-9,
                    "max ({}) < avg ({}) for {:?}",
                    mx.confidence,
                    av.confidence,
                    mx.input
                );
            }
        }
    }

    #[test]
    fn deterministic_across_calls() {
        let e = MajorityEnsemble::new(9, ConfidenceAggregation::Average);
        let a = e.classify_batch(&["session_token", "qq_zz"]);
        let b = e.classify_batch(&["session_token", "qq_zz"]);
        assert_eq!(a, b);
    }

    #[test]
    fn ensemble_never_abstains_on_valid_grid() {
        // With temps ≤ 1 every member produces a valid label, so the
        // ensemble always answers.
        let e = MajorityEnsemble::new(5, ConfidenceAggregation::Max);
        for r in e.classify_batch(&["a", "zz_blob", "device_id"]) {
            assert!(r.category.is_some());
        }
    }

    #[test]
    fn hallucinating_members_are_outvoted() {
        // Include temps > 1: hallucinated (unparseable) answers do not count
        // as votes, but valid members still carry the majority.
        let e = MajorityEnsemble::with_temperatures(
            13,
            &[0.0, 0.25, 1.8, 2.0],
            ConfidenceAggregation::Average,
        );
        let r = &e.classify_batch(&["email_address"])[0];
        assert_eq!(r.category, Some(DataTypeCategory::ContactInfo));
    }

    #[test]
    fn fast_path_matches_textual_path() {
        // A mix of exact vocab hits, partial matches, opaque keys, acronyms,
        // and keys whose gap/overconfidence rolls fire.
        let inputs = [
            "email_address",
            "device_id",
            "idfa",
            "lang",
            "xp_total",
            "zq9_blk",
            "session_token",
            "geo_blob",
            "usr_stat_7",
            "IsOptOutEmailShown",
            "a",
            "",
            "net_t_44",
        ];
        for temps in [&TEMPERATURE_GRID[..], &[0.0, 0.25, 1.8, 2.0][..]] {
            for aggregation in [ConfidenceAggregation::Average, ConfidenceAggregation::Max] {
                let e = MajorityEnsemble::with_temperatures(17, temps, aggregation);
                let textual = e.classify_textual(&inputs);
                for threads in [1, 3] {
                    let fast = e.classify_batch_threads(&inputs, threads);
                    assert_eq!(fast, textual, "temps {temps:?} threads {threads}");
                }
            }
        }
    }

    #[test]
    fn unsafe_inputs_fall_back_to_textual_path() {
        // " // " inside a key would corrupt the chat line format; the batch
        // must take the textual path and still agree with it.
        let inputs = ["email_address", "weird // key", " padded "];
        let e = MajorityEnsemble::new(17, ConfidenceAggregation::Average);
        let fast = e.classify_batch_threads(&inputs, 2);
        let textual = e.classify_textual(&inputs);
        assert_eq!(fast, textual);
    }

    #[test]
    fn vote_counts_in_explanation() {
        let e = MajorityEnsemble::new(1, ConfidenceAggregation::Average);
        let r = &e.classify_batch(&["password"])[0];
        assert!(r.explanation.contains("/5 members"), "{}", r.explanation);
    }
}
