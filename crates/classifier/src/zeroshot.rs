//! Zero-shot classification over label names only.
//!
//! Reproduces the structure of the paper's weakest baseline
//! (`bart-large-mnli` zero-shot, 4% sample accuracy): "We only inputted the
//! data type categories, and not any of the examples, as labels". With no
//! examples and no lexicon, the classifier can only relate an input to the
//! 35 label *phrases* — and payload keys almost never contain label words
//! like "Reasonably Linkable Personal Identifiers", so it mostly guesses.

use crate::embed::{embed_phrase, Dense};
use crate::text::tokenize;
use crate::Classifier;
use diffaudit_ontology::DataTypeCategory;

/// Label-name-only classifier.
pub struct ZeroShot {
    labels: Vec<(DataTypeCategory, Dense)>,
}

impl ZeroShot {
    /// Build by embedding the 35 label names.
    pub fn new() -> Self {
        let labels = DataTypeCategory::ALL
            .iter()
            .map(|c| (*c, embed_phrase(&c.label().to_lowercase())))
            .collect();
        Self { labels }
    }
}

impl Default for ZeroShot {
    fn default() -> Self {
        Self::new()
    }
}

impl Classifier for ZeroShot {
    fn name(&self) -> &str {
        "zero-shot"
    }

    fn classify(&mut self, raw: &str) -> Option<(DataTypeCategory, f64)> {
        let probe = embed_phrase(&tokenize(raw).join(" "));
        if probe.is_zero() {
            return None;
        }
        // An entailment model never abstains: it always produces a label
        // distribution. Mirror that by always answering, softmax-ish score.
        let mut best = (self.labels[0].0, f64::MIN);
        let mut sum_exp = 0.0;
        for (category, label_vec) in &self.labels {
            let sim = probe.cosine(label_vec);
            sum_exp += (sim * 5.0).exp();
            if sim > best.1 {
                best = (*category, sim);
            }
        }
        let prob = (best.1 * 5.0).exp() / sum_exp;
        Some((best.0, prob))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn only_label_words_classify_well() {
        let mut clf = ZeroShot::new();
        // Input literally containing the label word.
        let (cat, _) = clf.classify("language").unwrap();
        assert_eq!(cat, DataTypeCategory::Language);
    }

    #[test]
    fn typical_payload_keys_misclassify() {
        let mut clf = ZeroShot::new();
        // "password" appears in LoginInfo's *vocabulary*, not its *label*
        // ("Login Information") — zero-shot cannot see vocabularies.
        let (cat, _) = clf.classify("password").unwrap();
        assert_ne!(cat, DataTypeCategory::LoginInfo);
    }

    #[test]
    fn always_answers_nonempty() {
        let mut clf = ZeroShot::new();
        assert!(clf.classify("qqzz_blob_7").is_some());
        assert!(clf.classify("").is_none());
    }

    #[test]
    fn confidence_is_a_probability() {
        let mut clf = ZeroShot::new();
        let (_, p) = clf.classify("device").unwrap();
        assert!((0.0..=1.0).contains(&p));
    }
}
