//! Few-shot classification: nearest centroid, one-vs-rest (the SetFit
//! baseline, 16% sample accuracy in the paper).
//!
//! SetFit trains a classification head over sentence embeddings of the
//! labeled examples with a one-vs-rest strategy. Without contrastive
//! fine-tuning of the encoder (which is the part that makes real SetFit
//! work), that reduces to nearest-centroid over frozen embeddings — so
//! that is what this is: each category's level-4 vocabulary embeds to a
//! centroid, and the margin between the best and second-best centroid
//! becomes the one-vs-rest confidence.

use crate::embed::{centroid, embed_phrase, Dense};
use crate::text::tokenize;
use crate::Classifier;
use diffaudit_ontology::DataTypeCategory;

/// Nearest-centroid few-shot classifier.
pub struct FewShot {
    centroids: Vec<(DataTypeCategory, Dense)>,
}

impl FewShot {
    /// Build centroids from the ontology vocabulary ("we inputted our
    /// categories and examples as the labeled training data").
    pub fn new() -> Self {
        let centroids = DataTypeCategory::ALL
            .iter()
            .map(|c| {
                let embeddings: Vec<Dense> =
                    c.vocabulary().iter().map(|t| embed_phrase(t)).collect();
                (*c, centroid(&embeddings))
            })
            .collect();
        Self { centroids }
    }
}

impl Default for FewShot {
    fn default() -> Self {
        Self::new()
    }
}

impl Classifier for FewShot {
    fn name(&self) -> &str {
        "few-shot"
    }

    fn classify(&mut self, raw: &str) -> Option<(DataTypeCategory, f64)> {
        let probe = embed_phrase(&tokenize(raw).join(" "));
        if probe.is_zero() {
            return None;
        }
        let mut scored: Vec<(DataTypeCategory, f64)> = self
            .centroids
            .iter()
            .map(|(c, cv)| (*c, probe.cosine(cv)))
            .collect();
        scored.sort_by(|a, b| b.1.partial_cmp(&a.1).expect("no NaN"));
        let (best_cat, best) = scored[0];
        let second = scored[1].1;
        // One-vs-rest margin as confidence, squashed to [0, 1].
        let margin = (best - second).max(0.0);
        let confidence = (best.max(0.0) * 0.5 + margin * 5.0).min(1.0);
        Some((best_cat, confidence))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_vocab_token_can_classify() {
        let mut clf = FewShot::new();
        // "cookie" is a DeviceSoftwareIdentifiers vocabulary term; centroid
        // dilution makes this weaker than fuzzy matching but the token still
        // pulls toward the right centroid.
        let (cat, _) = clf.classify("cookie").unwrap();
        assert_eq!(cat, DataTypeCategory::DeviceSoftwareIdentifiers);
    }

    #[test]
    fn centroid_dilution_hurts_large_categories() {
        let mut clf = FewShot::new();
        // DeviceInfo has ~28 vocabulary terms; its centroid is mush. A key
        // matching exactly one of them gets low confidence.
        let conf = clf.classify("latency").map(|(_, c)| c).unwrap_or(0.0);
        assert!(conf < 0.6, "expected dilution, got {conf}");
    }

    #[test]
    fn abstains_only_on_empty() {
        let mut clf = FewShot::new();
        assert!(clf.classify("").is_none());
        assert!(clf.classify("anything_at_all").is_some());
    }

    #[test]
    fn confidence_in_range() {
        let mut clf = FewShot::new();
        for probe in ["password", "xyz", "device model", "ad click"] {
            let (_, c) = clf.classify(probe).unwrap();
            assert!((0.0..=1.0).contains(&c), "{probe} -> {c}");
        }
    }
}
