//! The GPT-4 classifier simulator.
//!
//! The paper drives OpenAI's GPT-4 8K model through the Chat Completions
//! API with a prompt carrying the ontology's 35 labels and their example
//! terms, asks for a confidence score and a 15-word explanation, and parses
//! the reply format `<input> // <category> // <score> // <explanation>`
//! (Appendix C). This module reproduces that interface and behavior
//! offline:
//!
//! - the **semantic engine** scores each category by informativeness-
//!   weighted token overlap between the lexicon-normalized input and the
//!   category's vocabulary — the explicit stand-in for GPT-4's world
//!   knowledge;
//! - **temperature** (0–2) injects seeded label noise that grows with both
//!   the temperature and the input's ambiguity, matching the paper's
//!   observation that accuracy decays monotonically from temp 0 to 1;
//!   above 1.0 the simulator *hallucinates* — it emits category names that
//!   do not exist, which the response parser rejects (the paper saw
//!   "hallucinatory responses" there and excluded those settings);
//! - every classification round-trips through the textual response format,
//!   so the parse-the-LLM-output path is exercised end to end.

use crate::text::normalize;
use crate::Classifier;
use diffaudit_ontology::DataTypeCategory;
use diffaudit_util::{fnv1a64, Rng};
use std::collections::HashMap;

/// A Chat-Completions-style message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ChatMessage {
    /// `"system"` | `"user"` | `"assistant"`.
    pub role: &'static str,
    /// Message text.
    pub content: String,
}

/// Options for the simulated model.
#[derive(Debug, Clone)]
pub struct LlmOptions {
    /// Sampling temperature, 0–2 (values above 1 hallucinate).
    pub temperature: f64,
    /// Seed for the nondeterminism simulation.
    pub seed: u64,
}

impl Default for LlmOptions {
    fn default() -> Self {
        Self {
            temperature: 0.0,
            seed: 0,
        }
    }
}

/// One classification result.
#[derive(Debug, Clone, PartialEq)]
pub struct Classification {
    /// The raw input text.
    pub input: String,
    /// Assigned category; `None` when the model's answer failed to parse
    /// (hallucinated label) — the paper drops those too.
    pub category: Option<DataTypeCategory>,
    /// Model-reported confidence in `[0, 1]`.
    pub confidence: f64,
    /// The model's one-line explanation.
    pub explanation: String,
}

/// The paper's final classification prompt (Appendix C, verbatim).
pub const SYSTEM_PROMPT: &str = "You are a text classifier for network traffic payload data. \
I am going to give you some categories and examples for each category. Then I will give you \
text sequences that I want you to categorize using the provided categories. The input texts \
were collected from network traffic payloads. Try to determine the meaning of the input texts \
and use the similarity of the categories and input texts to do the classification. For text \
with acronyms and abbreviations, use the meaning of the acronyms and abbreviations to do the \
classification. Provide an explanation for each classification in 15 words or less. Report a \
score of confidence on a scale of 0 to 1 for each categorization. Format your response exactly \
like this for each input text: <input text> // <category> // <score> // <explanation>.";

/// Pre-computed vocabulary index: category → list of term token sets, plus
/// global token weights.
struct Engine {
    /// (category, term tokens) for every vocabulary term.
    terms: Vec<(DataTypeCategory, Vec<String>)>,
    /// token → informativeness weight (rare tokens discriminate more).
    weights: HashMap<String, f64>,
}

impl Engine {
    fn build() -> Engine {
        let mut terms = Vec::new();
        let mut doc_freq: HashMap<String, usize> = HashMap::new();
        for category in DataTypeCategory::ALL {
            for term in category.vocabulary() {
                // Vocabulary terms run through the same lexicon expansion as
                // inputs, so "rtt" (term) meets "rtt" (key) in the shared
                // "round trip time" form.
                let tokens: Vec<String> = normalize(term);
                let mut seen = tokens.clone();
                seen.sort();
                seen.dedup();
                for t in seen {
                    *doc_freq.entry(t).or_insert(0) += 1;
                }
                terms.push((category, tokens));
            }
        }
        let weights = doc_freq
            .into_iter()
            .map(|(t, df)| (t, 1.0 / (1.0 + (df as f64).ln().max(0.0))))
            .collect();
        Engine { terms, weights }
    }

    fn token_weight(&self, token: &str) -> f64 {
        // Unknown tokens get a middling weight: they are informative about
        // nothing we know.
        self.weights.get(token).copied().unwrap_or(0.0)
    }

    /// Score every category against the normalized input tokens; returns
    /// sorted (category, score) best-first.
    fn score(&self, input_tokens: &[String]) -> Vec<(DataTypeCategory, f64)> {
        let mut best_per_category: HashMap<DataTypeCategory, f64> = HashMap::new();

        for (category, term_tokens) in &self.terms {
            // Weighted overlap: how much of this term is present in the
            // input, and how much of the input the term explains.
            let mut matched_weight = 0.0;
            let mut term_weight = 0.0;
            for t in term_tokens {
                let w = self.token_weight(t);
                term_weight += w;
                if input_tokens.contains(t) {
                    matched_weight += w;
                }
            }
            if term_weight == 0.0 {
                continue;
            }
            let term_coverage = matched_weight / term_weight;
            // Exact phrase bonus.
            let exact = term_tokens.len() == input_tokens.len()
                && term_tokens.iter().zip(input_tokens).all(|(a, b)| a == b);
            let score = if exact {
                1.0
            } else {
                // Penalize terms that only match on weak tokens.
                term_coverage * (0.55 + 0.45 * (matched_weight / (matched_weight + 0.5)))
            };
            let entry = best_per_category.entry(*category).or_insert(0.0);
            if score > *entry {
                *entry = score;
            }
        }
        let mut scored: Vec<(DataTypeCategory, f64)> = best_per_category
            .into_iter()
            .filter(|&(_, s)| s > 0.0)
            .collect();
        // Deterministic order: score desc, then category for ties.
        scored.sort_by(|a, b| b.1.partial_cmp(&a.1).expect("no NaN").then(a.0.cmp(&b.0)));
        scored
    }
}

fn engine() -> &'static Engine {
    use std::sync::OnceLock;
    // lint:allow(global-state): immutable cache of the deterministic classifier engine, built once from const data
    static ENGINE: OnceLock<Engine> = OnceLock::new();
    ENGINE.get_or_init(Engine::build)
}

/// The simulated GPT-4 classifier.
pub struct LlmClassifier {
    options: LlmOptions,
}

impl LlmClassifier {
    /// Create a model handle with the given options.
    pub fn new(options: LlmOptions) -> Self {
        Self { options }
    }

    /// The sampling temperature.
    pub fn temperature(&self) -> f64 {
        self.options.temperature
    }

    /// Classify a batch of raw inputs. Internally renders the model's
    /// textual response and parses it back, exactly like the paper's
    /// pipeline.
    pub fn classify_batch(&self, inputs: &[&str]) -> Vec<Classification> {
        let response = self.chat_completion(&[
            ChatMessage {
                role: "system",
                content: SYSTEM_PROMPT.to_string(),
            },
            ChatMessage {
                role: "user",
                content: inputs.join("\n"),
            },
        ]);
        parse_response(&response, inputs)
    }

    /// The Chat-Completions-shaped entry point: the last user message
    /// carries one input per line; the return value is the model's textual
    /// reply in the mandated format.
    pub fn chat_completion(&self, messages: &[ChatMessage]) -> String {
        let inputs: Vec<&str> = messages
            .iter()
            .rev()
            .find(|m| m.role == "user")
            .map(|m| m.content.lines().collect())
            .unwrap_or_default();
        let mut out = String::new();
        for input in inputs {
            let (label, confidence, explanation) = self.answer(input);
            out.push_str(&format!(
                "{input} // {label} // {confidence:.2} // {explanation}\n"
            ));
        }
        out
    }

    /// Produce the model's answer for one input: `(label text, confidence,
    /// explanation)`. The label text may be a hallucination at temperature
    /// above 1.
    fn answer(&self, input: &str) -> (String, f64, String) {
        let tokens = normalize(input);
        let scored = engine().score(&tokens);
        // Per-input deterministic noise stream: depends on seed,
        // temperature, and the input itself, so batch order is irrelevant.
        let noise_seed = self.options.seed
            ^ fnv1a64(input.as_bytes())
            ^ (self.options.temperature * 1000.0) as u64;
        let mut rng = Rng::new(noise_seed);

        let (mut category, base_score, margin) = match scored.len() {
            0 => {
                // Nothing matched: the model guesses a behavioral catch-all,
                // with low confidence — like GPT-4 facing opaque keys.
                let guess = if tokens.len() <= 1 {
                    DataTypeCategory::ServiceInfo
                } else {
                    DataTypeCategory::AppServiceUsage
                };
                (guess, 0.12, 0.0)
            }
            1 => (scored[0].0, scored[0].1, scored[0].1),
            _ => (scored[0].0, scored[0].1, scored[0].1 - scored[1].1),
        };

        // Confidence model: driven by match strength and separation.
        let mut confidence = (0.30 + 0.58 * base_score + 0.22 * margin.min(0.5)).clamp(0.05, 0.99);

        // World-knowledge gaps: on a small, temperature-independent fraction
        // of inputs the model is *confidently wrong* — it picks a plausible
        // neighboring category at full confidence. Real LLMs are not
        // well-calibrated (the paper's Table 3 shows accuracy at the 0.7
        // threshold only a few points above overall accuracy), and this is
        // the mechanism that reproduces that miscalibration.
        let gap_roll = fnv1a64(&[input.as_bytes(), b"::gap"].concat()) as f64 / u64::MAX as f64;
        if gap_roll < 0.085 && scored.len() > 1 && base_score < 0.97 {
            // (exact vocabulary matches are immune — even a miscalibrated
            // model does not misread "email address")
            category = scored[1].0;
        }
        // Overconfident guessing: some opaque inputs nonetheless draw a
        // fluent, high-confidence answer.
        if base_score < 0.35 {
            let oc_roll = fnv1a64(&[input.as_bytes(), b"::oc"].concat()) as f64 / u64::MAX as f64;
            if oc_roll < 0.45 {
                confidence = (0.68 + 0.3 * oc_roll).min(0.95);
            }
        }

        // Temperature-driven label noise. Ambiguous inputs (small margin,
        // weak match) flip more readily.
        let t = self.options.temperature;
        if t > 0.0 {
            let ambiguity = 1.0 - (base_score * 0.6 + margin.min(0.5) * 0.8).min(1.0);
            let flip_prob = (t * (0.06 + 0.38 * ambiguity)).min(0.9);
            if rng.chance(flip_prob) {
                if scored.len() > 1 && rng.chance(0.7) {
                    category = scored[1].0; // plausible confusion
                } else {
                    category = *rng.choose(&DataTypeCategory::ALL);
                }
                // The model does not know it erred; confidence barely moves.
                confidence = (confidence - 0.05).max(0.05);
            }
            // Confidence jitter.
            confidence = (confidence + rng.gaussian(0.0, 0.03 * t)).clamp(0.05, 0.99);
        }

        // Hallucination regime (temperature > 1): invented category names.
        let label_text = if t > 1.0 && rng.chance((t - 1.0).min(1.0) * 0.8) {
            let adjectives = ["Quantum", "Holistic", "Meta", "Hyper", "Latent"];
            let nouns = ["Signals", "Essence", "Vibes", "Artifacts", "Residue"];
            format!("{} {}", rng.choose(&adjectives), rng.choose(&nouns))
        } else {
            category.label().to_string()
        };

        let explanation = match scored.first() {
            Some((c, s)) if *s >= 0.8 => {
                format!("matches {} examples directly", c.label().to_lowercase())
            }
            Some((c, _)) => format!(
                "tokens suggest {} based on partial example overlap",
                c.label().to_lowercase()
            ),
            None => "unclear key; guessing from structure".to_string(),
        };
        (label_text, confidence, explanation)
    }
}

impl Classifier for LlmClassifier {
    fn name(&self) -> &str {
        "gpt4-sim"
    }

    fn classify(&mut self, raw: &str) -> Option<(DataTypeCategory, f64)> {
        let results = self.classify_batch(&[raw]);
        let r = results.into_iter().next()?;
        r.category.map(|c| (c, r.confidence))
    }
}

/// Parse a model response in the `<input> // <category> // <score> //
/// <explanation>` format back into classifications. Lines whose category is
/// not one of the 35 labels (hallucinations) yield `category: None`; inputs
/// with no corresponding line also yield `None` entries (the model skipped
/// them).
pub fn parse_response(response: &str, inputs: &[&str]) -> Vec<Classification> {
    let mut by_input: HashMap<&str, (Option<DataTypeCategory>, f64, String)> = HashMap::new();
    for line in response.lines() {
        let parts: Vec<&str> = line.split(" // ").collect();
        if parts.len() != 4 {
            continue;
        }
        let input = parts[0].trim();
        let category = DataTypeCategory::from_label(parts[1]);
        let confidence: f64 = parts[2].trim().parse().unwrap_or(0.0);
        by_input.insert(
            input,
            (
                category,
                confidence.clamp(0.0, 1.0),
                parts[3].trim().to_string(),
            ),
        );
    }
    inputs
        .iter()
        .map(|input| match by_input.get(input.trim()) {
            Some((category, confidence, explanation)) => Classification {
                input: input.to_string(),
                category: *category,
                confidence: *confidence,
                explanation: explanation.clone(),
            },
            None => Classification {
                input: input.to_string(),
                category: None,
                confidence: 0.0,
                explanation: "no response line".to_string(),
            },
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn model(temperature: f64) -> LlmClassifier {
        LlmClassifier::new(LlmOptions {
            temperature,
            seed: 7,
        })
    }

    #[test]
    fn clear_keys_classify_correctly_at_temp_zero() {
        let m = model(0.0);
        let cases = [
            ("email_address", DataTypeCategory::ContactInfo),
            (
                "advertising_id",
                DataTypeCategory::DeviceSoftwareIdentifiers,
            ),
            ("idfa", DataTypeCategory::DeviceSoftwareIdentifiers),
            ("latitude", DataTypeCategory::PreciseGeolocation),
            ("password", DataTypeCategory::LoginInfo),
            ("os_version", DataTypeCategory::DeviceInfo),
            ("date_of_birth", DataTypeCategory::Age),
            ("rtt", DataTypeCategory::NetworkConnectionInfo),
            ("timezone", DataTypeCategory::LocationTime),
            ("ad_click", DataTypeCategory::ProductsAndAdvertising),
        ];
        for (raw, expected) in cases {
            let r = &m.classify_batch(&[raw])[0];
            assert_eq!(r.category, Some(expected), "input {raw:?} -> {r:?}");
            assert!(r.confidence > 0.5, "{raw}: confidence {}", r.confidence);
        }
    }

    #[test]
    fn acronym_expansion_beats_baselines() {
        // "IsOptOutEmailShown" from the paper: contains email + opt out.
        let m = model(0.0);
        let r = &m.classify_batch(&["IsOptOutEmailShown"])[0];
        assert!(r.category.is_some());
    }

    #[test]
    fn cryptic_keys_get_low_confidence() {
        let m = model(0.0);
        let r = &m.classify_batch(&["zq9_blk"])[0];
        assert!(
            r.confidence < 0.5,
            "cryptic key confidence {}",
            r.confidence
        );
    }

    #[test]
    fn temp_zero_is_deterministic() {
        let m = model(0.0);
        let a = m.classify_batch(&["device_id", "lang", "xp_total"]);
        let b = m.classify_batch(&["device_id", "lang", "xp_total"]);
        assert_eq!(a, b);
    }

    #[test]
    fn same_seed_same_temp_reproducible() {
        let a = model(0.75).classify_batch(&["session_info", "blob7"]);
        let b = model(0.75).classify_batch(&["session_info", "blob7"]);
        assert_eq!(a, b);
    }

    #[test]
    fn batch_order_does_not_change_answers() {
        let m = model(0.5);
        let ab = m.classify_batch(&["device_id", "cryptic_zz"]);
        let ba = m.classify_batch(&["cryptic_zz", "device_id"]);
        assert_eq!(ab[0], ba[1]);
        assert_eq!(ab[1], ba[0]);
    }

    #[test]
    fn higher_temperature_flips_more_labels() {
        let inputs: Vec<String> = (0..200)
            .map(|i| {
                // Mildly ambiguous keys: short mutations of vocab terms.
                let terms = ["event_ts", "geo_c", "usr_stat", "s_info", "net_t", "dat_x"];
                format!("{}_{}", terms[i % terms.len()], i)
            })
            .collect();
        let refs: Vec<&str> = inputs.iter().map(String::as_str).collect();
        let base = model(0.0).classify_batch(&refs);
        let count_diff = |t: f64| {
            let out = model(t).classify_batch(&refs);
            out.iter()
                .zip(&base)
                .filter(|(a, b)| a.category != b.category)
                .count()
        };
        let d025 = count_diff(0.25);
        let d100 = count_diff(1.0);
        assert!(
            d100 > d025,
            "flips at t=1.0 ({d100}) should exceed t=0.25 ({d025})"
        );
    }

    #[test]
    fn hallucination_above_one() {
        let m = model(2.0);
        let results = m.classify_batch(&[
            "device_id",
            "lang_pref",
            "session_x",
            "user_stat",
            "geo_blob",
            "evt_nine",
            "zq_1",
            "zq_2",
            "zq_3",
            "zq_4",
        ]);
        let hallucinated = results.iter().filter(|r| r.category.is_none()).count();
        assert!(hallucinated > 0, "temperature 2.0 should hallucinate");
    }

    #[test]
    fn no_hallucination_at_or_below_one() {
        for t in [0.0, 0.5, 1.0] {
            let m = model(t);
            let results = m.classify_batch(&["device_id", "zq_blob", "x1"]);
            assert!(
                results.iter().all(|r| r.category.is_some()),
                "t={t} should always produce a valid label"
            );
        }
    }

    #[test]
    fn response_format_matches_paper() {
        let m = model(0.0);
        let response = m.chat_completion(&[
            ChatMessage {
                role: "system",
                content: SYSTEM_PROMPT.to_string(),
            },
            ChatMessage {
                role: "user",
                content: "email_address".to_string(),
            },
        ]);
        let parts: Vec<&str> = response.trim().split(" // ").collect();
        assert_eq!(parts.len(), 4, "format: {response:?}");
        assert_eq!(parts[0], "email_address");
        assert_eq!(parts[1], "Contact Information");
        assert!(parts[2].parse::<f64>().is_ok());
        assert!(parts[3].split_whitespace().count() <= 15, "≤15 words");
    }

    #[test]
    fn parse_response_handles_missing_and_garbage_lines() {
        let response = "a // Contact Information // 0.9 // fine\ngarbage line\n";
        let parsed = parse_response(response, &["a", "b"]);
        assert_eq!(parsed[0].category, Some(DataTypeCategory::ContactInfo));
        assert_eq!(parsed[1].category, None);
        assert_eq!(parsed[1].explanation, "no response line");
    }

    #[test]
    fn parse_response_rejects_unknown_labels() {
        let response = "x // Quantum Vibes // 0.8 // hallucinated\n";
        let parsed = parse_response(response, &["x"]);
        assert_eq!(parsed[0].category, None);
        assert!((parsed[0].confidence - 0.8).abs() < 1e-9);
    }

    #[test]
    fn confidence_always_in_range() {
        for t in [0.0, 0.25, 0.5, 0.75, 1.0] {
            let m = model(t);
            for r in m.classify_batch(&["a", "device_id", "zz_9", "lat", "evt"]) {
                assert!((0.0..=1.0).contains(&r.confidence));
            }
        }
    }
}
