//! The GPT-4 classifier simulator.
//!
//! The paper drives OpenAI's GPT-4 8K model through the Chat Completions
//! API with a prompt carrying the ontology's 35 labels and their example
//! terms, asks for a confidence score and a 15-word explanation, and parses
//! the reply format `<input> // <category> // <score> // <explanation>`
//! (Appendix C). This module reproduces that interface and behavior
//! offline:
//!
//! - the **semantic engine** scores each category by informativeness-
//!   weighted token overlap between the lexicon-normalized input and the
//!   category's vocabulary — the explicit stand-in for GPT-4's world
//!   knowledge;
//! - **temperature** (0–2) injects seeded label noise that grows with both
//!   the temperature and the input's ambiguity, matching the paper's
//!   observation that accuracy decays monotonically from temp 0 to 1;
//!   above 1.0 the simulator *hallucinates* — it emits category names that
//!   do not exist, which the response parser rejects (the paper saw
//!   "hallucinatory responses" there and excluded those settings);
//! - every classification round-trips through the textual response format,
//!   so the parse-the-LLM-output path is exercised end to end.

use crate::text::normalize;
use crate::Classifier;
use diffaudit_ontology::DataTypeCategory;
use diffaudit_util::{fnv1a64, Rng};
use std::collections::HashMap;

/// A Chat-Completions-style message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ChatMessage {
    /// `"system"` | `"user"` | `"assistant"`.
    pub role: &'static str,
    /// Message text.
    pub content: String,
}

/// Options for the simulated model.
#[derive(Debug, Clone)]
pub struct LlmOptions {
    /// Sampling temperature, 0–2 (values above 1 hallucinate).
    pub temperature: f64,
    /// Seed for the nondeterminism simulation.
    pub seed: u64,
}

impl Default for LlmOptions {
    fn default() -> Self {
        Self {
            temperature: 0.0,
            seed: 0,
        }
    }
}

/// One classification result.
#[derive(Debug, Clone, PartialEq)]
pub struct Classification {
    /// The raw input text.
    pub input: String,
    /// Assigned category; `None` when the model's answer failed to parse
    /// (hallucinated label) — the paper drops those too.
    pub category: Option<DataTypeCategory>,
    /// Model-reported confidence in `[0, 1]`.
    pub confidence: f64,
    /// The model's one-line explanation.
    pub explanation: String,
}

/// The paper's final classification prompt (Appendix C, verbatim).
pub const SYSTEM_PROMPT: &str = "You are a text classifier for network traffic payload data. \
I am going to give you some categories and examples for each category. Then I will give you \
text sequences that I want you to categorize using the provided categories. The input texts \
were collected from network traffic payloads. Try to determine the meaning of the input texts \
and use the similarity of the categories and input texts to do the classification. For text \
with acronyms and abbreviations, use the meaning of the acronyms and abbreviations to do the \
classification. Provide an explanation for each classification in 15 words or less. Report a \
score of confidence on a scale of 0 to 1 for each categorization. Format your response exactly \
like this for each input text: <input text> // <category> // <score> // <explanation>.";

/// Number of ontology categories (the score-accumulator array size).
const NUM_CATEGORIES: usize = DataTypeCategory::ALL.len();

/// Sentinel symbol for tokens outside the vocabulary. Vocabulary tokens are
/// numbered from 0, so no term symbol ever equals it — unknown input tokens
/// can never match a term token, exactly like the string comparison they
/// replace.
const UNKNOWN_SYM: u32 = u32::MAX;

/// One vocabulary term, symbolized: its category (as an index into
/// `DataTypeCategory::ALL`) plus `(symbol, weight)` per token in original
/// order (duplicates kept, so float accumulation order is identical to the
/// string-based scorer this replaced).
struct EngineTerm {
    cat_idx: usize,
    syms_w: Vec<(u32, f64)>,
}

/// Pre-computed vocabulary index. Tokens are interned to `u32` symbols once
/// at build time; scoring a key is then integer comparisons over a scratch
/// symbol buffer instead of `String` allocation + comparison per token.
struct Engine {
    /// Normalized vocabulary token → symbol.
    token_ids: HashMap<String, u32>,
    /// Lexicon abbreviation → symbolized expansion (replaces the per-key
    /// linear `LEXICON` scan and per-word `String` allocation).
    lexicon_syms: HashMap<&'static str, Vec<u32>>,
    /// Every vocabulary term, symbolized.
    terms: Vec<EngineTerm>,
}

/// Reusable per-thread scratch for batch classification: the token arena,
/// the symbolized input, the per-category best-score array, and the sorted
/// score vector. One of these per worker amortizes every allocation in the
/// hot path across the whole batch.
pub(crate) struct ClassifyScratch {
    arena: crate::text::TokenArena,
    syms: Vec<u32>,
    best: [f64; NUM_CATEGORIES],
    scored: Vec<(DataTypeCategory, f64)>,
    /// Reusable buffer for the `{:.2}` confidence round-trip emulation.
    pub(crate) fmt: String,
}

impl ClassifyScratch {
    pub(crate) fn new() -> Self {
        Self {
            arena: crate::text::TokenArena::new(),
            syms: Vec::new(),
            best: [0.0; NUM_CATEGORIES],
            scored: Vec::new(),
            fmt: String::new(),
        }
    }
}

impl Engine {
    fn build() -> Engine {
        // Pass 1: normalize every vocabulary term (the same lexicon
        // expansion inputs get, so "rtt" meets "rtt" in the shared "round
        // trip time" form), intern tokens, count document frequencies.
        let mut token_ids: HashMap<String, u32> = HashMap::new();
        let mut doc_freq: HashMap<String, usize> = HashMap::new();
        let mut raw_terms: Vec<(usize, Vec<String>)> = Vec::new();
        for (cat_idx, category) in DataTypeCategory::ALL.into_iter().enumerate() {
            for term in category.vocabulary() {
                let tokens: Vec<String> = normalize(term);
                let mut seen = tokens.clone();
                seen.sort();
                seen.dedup();
                for t in seen {
                    *doc_freq.entry(t).or_insert(0) += 1;
                }
                for t in &tokens {
                    if !token_ids.contains_key(t) {
                        let id = token_ids.len() as u32;
                        token_ids.insert(t.clone(), id);
                    }
                }
                raw_terms.push((cat_idx, tokens));
            }
        }
        // Rare tokens discriminate more.
        let weights: HashMap<String, f64> = doc_freq
            .into_iter()
            .map(|(t, df)| (t, 1.0 / (1.0 + (df as f64).ln().max(0.0))))
            .collect();
        // Pass 2: symbolize terms and the lexicon expansions.
        let terms = raw_terms
            .into_iter()
            .map(|(cat_idx, tokens)| EngineTerm {
                cat_idx,
                syms_w: tokens
                    .iter()
                    .map(|t| {
                        (
                            token_ids[t.as_str()],
                            weights.get(t.as_str()).copied().unwrap_or(0.0),
                        )
                    })
                    .collect(),
            })
            .collect();
        let lexicon_syms = crate::text::LEXICON
            .iter()
            .map(|&(abbr, expansion)| {
                let syms = expansion
                    .split(' ')
                    .map(|w| token_ids.get(w).copied().unwrap_or(UNKNOWN_SYM))
                    .collect();
                (abbr, syms)
            })
            .collect();
        Engine {
            token_ids,
            lexicon_syms,
            terms,
        }
    }

    /// Tokenize + lexicon-expand `raw` into `scratch.syms` (the symbolized
    /// equivalent of [`normalize`]).
    fn symbolize(&self, raw: &str, scratch: &mut ClassifyScratch) {
        scratch.arena.clear();
        scratch.syms.clear();
        for i in scratch.arena.split(raw) {
            let token = scratch.arena.token(i);
            match self.lexicon_syms.get(token) {
                Some(expansion) => scratch.syms.extend_from_slice(expansion),
                None => scratch
                    .syms
                    .push(self.token_ids.get(token).copied().unwrap_or(UNKNOWN_SYM)),
            }
        }
    }

    /// Score every category against the symbolized input; leaves the sorted
    /// (category, score) list, best-first, in `scratch.scored`.
    fn score_syms(&self, scratch: &mut ClassifyScratch) {
        scratch.best.fill(0.0);
        let input_syms = &scratch.syms;
        for term in &self.terms {
            // Weighted overlap: how much of this term is present in the
            // input, and how much of the input the term explains.
            let mut matched_weight = 0.0;
            let mut term_weight = 0.0;
            for &(sym, w) in &term.syms_w {
                term_weight += w;
                if input_syms.contains(&sym) {
                    matched_weight += w;
                }
            }
            if term_weight == 0.0 {
                continue;
            }
            let term_coverage = matched_weight / term_weight;
            // Exact phrase bonus.
            let exact = term.syms_w.len() == input_syms.len()
                && term
                    .syms_w
                    .iter()
                    .zip(input_syms)
                    .all(|(&(a, _), &b)| a == b);
            let score = if exact {
                1.0
            } else {
                // Penalize terms that only match on weak tokens.
                term_coverage * (0.55 + 0.45 * (matched_weight / (matched_weight + 0.5)))
            };
            if score > scratch.best[term.cat_idx] {
                scratch.best[term.cat_idx] = score;
            }
        }
        scratch.scored.clear();
        for (i, &s) in scratch.best.iter().enumerate() {
            if s > 0.0 {
                scratch.scored.push((DataTypeCategory::ALL[i], s));
            }
        }
        // Deterministic order: score desc, then category for ties.
        scratch
            .scored
            .sort_by(|a, b| b.1.partial_cmp(&a.1).expect("no NaN").then(a.0.cmp(&b.0)));
    }
}

fn engine() -> &'static Engine {
    use std::sync::OnceLock;
    // lint:allow(global-state): immutable cache of the deterministic classifier engine, built once from const data
    static ENGINE: OnceLock<Engine> = OnceLock::new();
    ENGINE.get_or_init(Engine::build)
}

/// Everything about one input that is independent of temperature and seed:
/// the scored category list collapsed to the fields the noise model needs.
/// Computing this once and replaying [`LlmClassifier::answer_scored`] per
/// ensemble member is what lets the ensemble share the lexicon scoring work
/// across its five members.
pub(crate) struct PreScored {
    /// Winning category after the temperature-independent gap flip.
    category: DataTypeCategory,
    /// Runner-up category, when one exists (plausible-confusion target).
    second: Option<DataTypeCategory>,
    /// The top raw (category, score) entry, for the explanation line.
    top: Option<(DataTypeCategory, f64)>,
    base_score: f64,
    margin: f64,
    /// Confidence after the overconfident-guess adjustment, before
    /// temperature jitter.
    confidence: f64,
    /// `fnv1a64(input)` — the per-input part of each member's noise seed.
    input_hash: u64,
}

/// A model answer label: valid, or an invented name (temperature > 1).
pub(crate) enum LabelOut {
    Valid(DataTypeCategory),
    Hallucinated(&'static str, &'static str),
}

impl PreScored {
    /// Run the temperature-independent part of the noise model for `input`.
    pub(crate) fn compute(input: &str, scratch: &mut ClassifyScratch) -> PreScored {
        let eng = engine();
        eng.symbolize(input, scratch);
        eng.score_syms(scratch);
        let scored = &scratch.scored;
        let (mut category, base_score, margin) = match scored.len() {
            0 => {
                // Nothing matched: the model guesses a behavioral catch-all,
                // with low confidence — like GPT-4 facing opaque keys.
                let guess = if scratch.syms.len() <= 1 {
                    DataTypeCategory::ServiceInfo
                } else {
                    DataTypeCategory::AppServiceUsage
                };
                (guess, 0.12, 0.0)
            }
            1 => (scored[0].0, scored[0].1, scored[0].1),
            _ => (scored[0].0, scored[0].1, scored[0].1 - scored[1].1),
        };

        // Confidence model: driven by match strength and separation.
        let mut confidence = (0.30 + 0.58 * base_score + 0.22 * margin.min(0.5)).clamp(0.05, 0.99);

        // World-knowledge gaps: on a small, temperature-independent fraction
        // of inputs the model is *confidently wrong* — it picks a plausible
        // neighboring category at full confidence. Real LLMs are not
        // well-calibrated (the paper's Table 3 shows accuracy at the 0.7
        // threshold only a few points above overall accuracy), and this is
        // the mechanism that reproduces that miscalibration.
        let mut gap_hash = diffaudit_util::Fnv64::new();
        gap_hash.write(input.as_bytes());
        gap_hash.write(b"::gap");
        let gap_roll = gap_hash.finish() as f64 / u64::MAX as f64;
        if gap_roll < 0.085 && scored.len() > 1 && base_score < 0.97 {
            // (exact vocabulary matches are immune — even a miscalibrated
            // model does not misread "email address")
            category = scored[1].0;
        }
        // Overconfident guessing: some opaque inputs nonetheless draw a
        // fluent, high-confidence answer.
        if base_score < 0.35 {
            let mut oc_hash = diffaudit_util::Fnv64::new();
            oc_hash.write(input.as_bytes());
            oc_hash.write(b"::oc");
            let oc_roll = oc_hash.finish() as f64 / u64::MAX as f64;
            if oc_roll < 0.45 {
                confidence = (0.68 + 0.3 * oc_roll).min(0.95);
            }
        }

        PreScored {
            category,
            second: scored.get(1).map(|&(c, _)| c),
            top: scored.first().copied(),
            base_score,
            margin,
            confidence,
            input_hash: fnv1a64(input.as_bytes()),
        }
    }

    /// The model's one-line explanation (depends only on the raw scores).
    pub(crate) fn explanation(&self) -> String {
        match self.top {
            Some((c, s)) if s >= 0.8 => {
                format!("matches {} examples directly", c.label().to_lowercase())
            }
            Some((c, _)) => format!(
                "tokens suggest {} based on partial example overlap",
                c.label().to_lowercase()
            ),
            None => "unclear key; guessing from structure".to_string(),
        }
    }
}

/// The simulated GPT-4 classifier.
pub struct LlmClassifier {
    options: LlmOptions,
}

impl LlmClassifier {
    /// Create a model handle with the given options.
    pub fn new(options: LlmOptions) -> Self {
        Self { options }
    }

    /// The sampling temperature.
    pub fn temperature(&self) -> f64 {
        self.options.temperature
    }

    /// Classify a batch of raw inputs. Internally renders the model's
    /// textual response and parses it back, exactly like the paper's
    /// pipeline.
    pub fn classify_batch(&self, inputs: &[&str]) -> Vec<Classification> {
        let response = self.chat_completion(&[
            ChatMessage {
                role: "system",
                content: SYSTEM_PROMPT.to_string(),
            },
            ChatMessage {
                role: "user",
                content: inputs.join("\n"),
            },
        ]);
        parse_response(&response, inputs)
    }

    /// The Chat-Completions-shaped entry point: the last user message
    /// carries one input per line; the return value is the model's textual
    /// reply in the mandated format.
    pub fn chat_completion(&self, messages: &[ChatMessage]) -> String {
        let inputs: Vec<&str> = messages
            .iter()
            .rev()
            .find(|m| m.role == "user")
            .map(|m| m.content.lines().collect())
            .unwrap_or_default();
        let mut scratch = ClassifyScratch::new();
        let mut out = String::new();
        for input in inputs {
            let pre = PreScored::compute(input, &mut scratch);
            let (label, confidence) = self.answer_scored(&pre);
            let explanation = pre.explanation();
            match label {
                LabelOut::Valid(category) => {
                    let label = category.label();
                    out.push_str(&format!(
                        "{input} // {label} // {confidence:.2} // {explanation}\n"
                    ));
                }
                LabelOut::Hallucinated(adjective, noun) => out.push_str(&format!(
                    "{input} // {adjective} {noun} // {confidence:.2} // {explanation}\n"
                )),
            }
        }
        out
    }

    /// Replay the temperature/seed-dependent part of the noise model over a
    /// [`PreScored`] input: label flips, confidence jitter, hallucination.
    /// The RNG draw sequence is exactly the original single-pass model's, so
    /// sharing one `PreScored` across ensemble members changes nothing.
    pub(crate) fn answer_scored(&self, pre: &PreScored) -> (LabelOut, f64) {
        // Per-input deterministic noise stream: depends on seed,
        // temperature, and the input itself, so batch order is irrelevant.
        let noise_seed =
            self.options.seed ^ pre.input_hash ^ (self.options.temperature * 1000.0) as u64;
        let mut rng = Rng::new(noise_seed);

        let mut category = pre.category;
        let mut confidence = pre.confidence;

        // Temperature-driven label noise. Ambiguous inputs (small margin,
        // weak match) flip more readily.
        let t = self.options.temperature;
        if t > 0.0 {
            let ambiguity = 1.0 - (pre.base_score * 0.6 + pre.margin.min(0.5) * 0.8).min(1.0);
            let flip_prob = (t * (0.06 + 0.38 * ambiguity)).min(0.9);
            if rng.chance(flip_prob) {
                match pre.second {
                    Some(second) if rng.chance(0.7) => category = second, // plausible confusion
                    _ => category = *rng.choose(&DataTypeCategory::ALL),
                }
                // The model does not know it erred; confidence barely moves.
                confidence = (confidence - 0.05).max(0.05);
            }
            // Confidence jitter.
            confidence = (confidence + rng.gaussian(0.0, 0.03 * t)).clamp(0.05, 0.99);
        }

        // Hallucination regime (temperature > 1): invented category names.
        if t > 1.0 && rng.chance((t - 1.0).min(1.0) * 0.8) {
            let adjectives = ["Quantum", "Holistic", "Meta", "Hyper", "Latent"];
            let nouns = ["Signals", "Essence", "Vibes", "Artifacts", "Residue"];
            let adjective = *rng.choose(&adjectives);
            let noun = *rng.choose(&nouns);
            (LabelOut::Hallucinated(adjective, noun), confidence)
        } else {
            (LabelOut::Valid(category), confidence)
        }
    }
}

/// `true` when `input` survives the textual round-trip unchanged: a single
/// trimmed line with no ` // ` separator inside it. The ensemble's batch
/// fast path may emulate the render-then-parse loop only for such inputs;
/// anything else falls back to the real textual path.
pub(crate) fn roundtrip_safe(input: &str) -> bool {
    !input.contains('\n') && !input.contains(" // ") && input.trim() == input
}

impl Classifier for LlmClassifier {
    fn name(&self) -> &str {
        "gpt4-sim"
    }

    fn classify(&mut self, raw: &str) -> Option<(DataTypeCategory, f64)> {
        let results = self.classify_batch(&[raw]);
        let r = results.into_iter().next()?;
        r.category.map(|c| (c, r.confidence))
    }
}

/// Parse a model response in the `<input> // <category> // <score> //
/// <explanation>` format back into classifications. Lines whose category is
/// not one of the 35 labels (hallucinations) yield `category: None`; inputs
/// with no corresponding line also yield `None` entries (the model skipped
/// them).
pub fn parse_response(response: &str, inputs: &[&str]) -> Vec<Classification> {
    let mut by_input: HashMap<&str, (Option<DataTypeCategory>, f64, String)> = HashMap::new();
    for line in response.lines() {
        let parts: Vec<&str> = line.split(" // ").collect();
        if parts.len() != 4 {
            continue;
        }
        let input = parts[0].trim();
        let category = DataTypeCategory::from_label(parts[1]);
        let confidence: f64 = parts[2].trim().parse().unwrap_or(0.0);
        by_input.insert(
            input,
            (
                category,
                confidence.clamp(0.0, 1.0),
                parts[3].trim().to_string(),
            ),
        );
    }
    inputs
        .iter()
        .map(|input| match by_input.get(input.trim()) {
            Some((category, confidence, explanation)) => Classification {
                input: input.to_string(),
                category: *category,
                confidence: *confidence,
                explanation: explanation.clone(),
            },
            None => Classification {
                input: input.to_string(),
                category: None,
                confidence: 0.0,
                explanation: "no response line".to_string(),
            },
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn model(temperature: f64) -> LlmClassifier {
        LlmClassifier::new(LlmOptions {
            temperature,
            seed: 7,
        })
    }

    #[test]
    fn clear_keys_classify_correctly_at_temp_zero() {
        let m = model(0.0);
        let cases = [
            ("email_address", DataTypeCategory::ContactInfo),
            (
                "advertising_id",
                DataTypeCategory::DeviceSoftwareIdentifiers,
            ),
            ("idfa", DataTypeCategory::DeviceSoftwareIdentifiers),
            ("latitude", DataTypeCategory::PreciseGeolocation),
            ("password", DataTypeCategory::LoginInfo),
            ("os_version", DataTypeCategory::DeviceInfo),
            ("date_of_birth", DataTypeCategory::Age),
            ("rtt", DataTypeCategory::NetworkConnectionInfo),
            ("timezone", DataTypeCategory::LocationTime),
            ("ad_click", DataTypeCategory::ProductsAndAdvertising),
        ];
        for (raw, expected) in cases {
            let r = &m.classify_batch(&[raw])[0];
            assert_eq!(r.category, Some(expected), "input {raw:?} -> {r:?}");
            assert!(r.confidence > 0.5, "{raw}: confidence {}", r.confidence);
        }
    }

    #[test]
    fn acronym_expansion_beats_baselines() {
        // "IsOptOutEmailShown" from the paper: contains email + opt out.
        let m = model(0.0);
        let r = &m.classify_batch(&["IsOptOutEmailShown"])[0];
        assert!(r.category.is_some());
    }

    #[test]
    fn cryptic_keys_get_low_confidence() {
        let m = model(0.0);
        let r = &m.classify_batch(&["zq9_blk"])[0];
        assert!(
            r.confidence < 0.5,
            "cryptic key confidence {}",
            r.confidence
        );
    }

    #[test]
    fn temp_zero_is_deterministic() {
        let m = model(0.0);
        let a = m.classify_batch(&["device_id", "lang", "xp_total"]);
        let b = m.classify_batch(&["device_id", "lang", "xp_total"]);
        assert_eq!(a, b);
    }

    #[test]
    fn same_seed_same_temp_reproducible() {
        let a = model(0.75).classify_batch(&["session_info", "blob7"]);
        let b = model(0.75).classify_batch(&["session_info", "blob7"]);
        assert_eq!(a, b);
    }

    #[test]
    fn batch_order_does_not_change_answers() {
        let m = model(0.5);
        let ab = m.classify_batch(&["device_id", "cryptic_zz"]);
        let ba = m.classify_batch(&["cryptic_zz", "device_id"]);
        assert_eq!(ab[0], ba[1]);
        assert_eq!(ab[1], ba[0]);
    }

    #[test]
    fn higher_temperature_flips_more_labels() {
        let inputs: Vec<String> = (0..200)
            .map(|i| {
                // Mildly ambiguous keys: short mutations of vocab terms.
                let terms = ["event_ts", "geo_c", "usr_stat", "s_info", "net_t", "dat_x"];
                format!("{}_{}", terms[i % terms.len()], i)
            })
            .collect();
        let refs: Vec<&str> = inputs.iter().map(String::as_str).collect();
        let base = model(0.0).classify_batch(&refs);
        let count_diff = |t: f64| {
            let out = model(t).classify_batch(&refs);
            out.iter()
                .zip(&base)
                .filter(|(a, b)| a.category != b.category)
                .count()
        };
        let d025 = count_diff(0.25);
        let d100 = count_diff(1.0);
        assert!(
            d100 > d025,
            "flips at t=1.0 ({d100}) should exceed t=0.25 ({d025})"
        );
    }

    #[test]
    fn hallucination_above_one() {
        let m = model(2.0);
        let results = m.classify_batch(&[
            "device_id",
            "lang_pref",
            "session_x",
            "user_stat",
            "geo_blob",
            "evt_nine",
            "zq_1",
            "zq_2",
            "zq_3",
            "zq_4",
        ]);
        let hallucinated = results.iter().filter(|r| r.category.is_none()).count();
        assert!(hallucinated > 0, "temperature 2.0 should hallucinate");
    }

    #[test]
    fn no_hallucination_at_or_below_one() {
        for t in [0.0, 0.5, 1.0] {
            let m = model(t);
            let results = m.classify_batch(&["device_id", "zq_blob", "x1"]);
            assert!(
                results.iter().all(|r| r.category.is_some()),
                "t={t} should always produce a valid label"
            );
        }
    }

    #[test]
    fn response_format_matches_paper() {
        let m = model(0.0);
        let response = m.chat_completion(&[
            ChatMessage {
                role: "system",
                content: SYSTEM_PROMPT.to_string(),
            },
            ChatMessage {
                role: "user",
                content: "email_address".to_string(),
            },
        ]);
        let parts: Vec<&str> = response.trim().split(" // ").collect();
        assert_eq!(parts.len(), 4, "format: {response:?}");
        assert_eq!(parts[0], "email_address");
        assert_eq!(parts[1], "Contact Information");
        assert!(parts[2].parse::<f64>().is_ok());
        assert!(parts[3].split_whitespace().count() <= 15, "≤15 words");
    }

    #[test]
    fn parse_response_handles_missing_and_garbage_lines() {
        let response = "a // Contact Information // 0.9 // fine\ngarbage line\n";
        let parsed = parse_response(response, &["a", "b"]);
        assert_eq!(parsed[0].category, Some(DataTypeCategory::ContactInfo));
        assert_eq!(parsed[1].category, None);
        assert_eq!(parsed[1].explanation, "no response line");
    }

    #[test]
    fn parse_response_rejects_unknown_labels() {
        let response = "x // Quantum Vibes // 0.8 // hallucinated\n";
        let parsed = parse_response(response, &["x"]);
        assert_eq!(parsed[0].category, None);
        assert!((parsed[0].confidence - 0.8).abs() < 1e-9);
    }

    #[test]
    fn confidence_always_in_range() {
        for t in [0.0, 0.25, 0.5, 0.75, 1.0] {
            let m = model(t);
            for r in m.classify_batch(&["a", "device_id", "zz_9", "lat", "evt"]) {
                assert!((0.0..=1.0).contains(&r.confidence));
            }
        }
    }
}
