//! Fuzzy string matching against the ontology's example terms (the
//! PolyFuzz baselines).
//!
//! Each input key is matched against every level-4 vocabulary term; the best
//! match's category wins and the similarity is the confidence. Two backends:
//! TF-IDF character n-grams ([`FuzzyTfIdf`]) and the toy dense embedder
//! ([`FuzzyBert`]). Neither sees the acronym lexicon — matching is purely
//! lexical, which is why these baselines score 31% / 18% in the paper.

use crate::embed::{embed_phrase, Dense};
use crate::text::tokenize;
use crate::tfidf::{cosine, SparseVec, TfIdf};
use crate::Classifier;
use diffaudit_ontology::DataTypeCategory;

/// Tokenized-but-unexpanded phrase (baselines lack the lexicon).
fn lexical_phrase(raw: &str) -> String {
    tokenize(raw).join(" ")
}

fn vocabulary_entries() -> Vec<(DataTypeCategory, &'static str)> {
    DataTypeCategory::ALL
        .iter()
        .flat_map(|c| c.vocabulary().iter().map(move |t| (*c, *t)))
        .collect()
}

/// PolyFuzz-style matcher over TF-IDF character trigrams.
pub struct FuzzyTfIdf {
    tfidf: TfIdf,
    terms: Vec<(DataTypeCategory, SparseVec)>,
    /// Minimum similarity to emit a label (below ⇒ abstain).
    pub min_similarity: f64,
}

impl FuzzyTfIdf {
    /// Build, fitting the vectorizer on the ontology vocabulary.
    pub fn new() -> Self {
        let entries = vocabulary_entries();
        let corpus: Vec<String> = entries.iter().map(|(_, t)| t.to_string()).collect();
        let tfidf = TfIdf::fit(&corpus, 3);
        let terms = entries
            .iter()
            .map(|(c, t)| (*c, tfidf.transform(t)))
            .collect();
        Self {
            tfidf,
            terms,
            min_similarity: 0.05,
        }
    }
}

impl Default for FuzzyTfIdf {
    fn default() -> Self {
        Self::new()
    }
}

impl Classifier for FuzzyTfIdf {
    fn name(&self) -> &str {
        "fuzzy-tfidf"
    }

    fn classify(&mut self, raw: &str) -> Option<(DataTypeCategory, f64)> {
        let probe = self.tfidf.transform(&lexical_phrase(raw));
        let mut best: Option<(DataTypeCategory, f64)> = None;
        for (category, term_vec) in &self.terms {
            let sim = cosine(&probe, term_vec);
            if best.is_none_or(|(_, b)| sim > b) {
                best = Some((*category, sim));
            }
        }
        best.filter(|&(_, sim)| sim >= self.min_similarity)
    }
}

/// PolyFuzz-style matcher over the toy dense embedder.
pub struct FuzzyBert {
    terms: Vec<(DataTypeCategory, Dense)>,
    /// Minimum similarity to emit a label.
    pub min_similarity: f64,
}

impl FuzzyBert {
    /// Build, embedding every vocabulary term.
    pub fn new() -> Self {
        let terms = vocabulary_entries()
            .iter()
            .map(|(c, t)| (*c, embed_phrase(t)))
            .collect();
        Self {
            terms,
            min_similarity: 0.05,
        }
    }
}

impl Default for FuzzyBert {
    fn default() -> Self {
        Self::new()
    }
}

impl Classifier for FuzzyBert {
    fn name(&self) -> &str {
        "fuzzy-bert"
    }

    fn classify(&mut self, raw: &str) -> Option<(DataTypeCategory, f64)> {
        let probe = embed_phrase(&lexical_phrase(raw));
        if probe.is_zero() {
            return None;
        }
        let mut best: Option<(DataTypeCategory, f64)> = None;
        for (category, term_vec) in &self.terms {
            let sim = probe.cosine(term_vec);
            if best.is_none_or(|(_, b)| sim > b) {
                best = Some((*category, sim));
            }
        }
        best.filter(|&(_, sim)| sim >= self.min_similarity)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tfidf_matches_near_verbatim_keys() {
        let mut clf = FuzzyTfIdf::new();
        let (cat, sim) = clf.classify("email_address").unwrap();
        assert_eq!(cat, DataTypeCategory::ContactInfo);
        assert!(sim > 0.5);
        let (cat, _) = clf.classify("latitude").unwrap();
        assert_eq!(cat, DataTypeCategory::PreciseGeolocation);
    }

    #[test]
    fn tfidf_fails_on_acronyms_outside_vocabulary() {
        // No lexicon: "tz" shares almost no trigrams with "timezone", so the
        // baseline cannot land on LocationTime with any strength.
        let mut clf = FuzzyTfIdf::new();
        match clf.classify("tz") {
            None => {}
            Some((cat, sim)) => {
                assert!(
                    cat != DataTypeCategory::LocationTime || sim < 0.3,
                    "baseline should not understand tz: {cat:?} @ {sim}"
                );
            }
        }
    }

    #[test]
    fn bert_matches_exact_tokens_only() {
        let mut clf = FuzzyBert::new();
        let (cat, sim) = clf.classify("password").unwrap();
        assert_eq!(cat, DataTypeCategory::LoginInfo);
        assert!(sim > 0.9, "exact token should be near 1, got {sim}");
    }

    #[test]
    fn bert_dilutes_multi_token_keys() {
        // Mean pooling: extra tokens drag similarity down.
        let mut clf = FuzzyBert::new();
        let exact = clf.classify("password").unwrap().1;
        let noisy = clf
            .classify("x_password_checksum_v2_blob")
            .map(|(_, s)| s)
            .unwrap_or(0.0);
        assert!(noisy < exact * 0.8, "noisy={noisy}, exact={exact}");
    }

    #[test]
    fn abstains_on_garbage() {
        let mut tf = FuzzyTfIdf::new();
        tf.min_similarity = 0.3;
        assert!(tf.classify("zzqx9").is_none());
    }
}
