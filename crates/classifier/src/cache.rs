//! Persistent content-addressed classification cache.
//!
//! Classification dominates pipeline wall time, yet its input — the set of
//! unique payload keys a service emits — barely changes between audits of
//! the same service. This module stores finished ensemble verdicts in an
//! **append-only, crash-safe, log-structured** file so warm re-audits skip
//! the ensemble entirely.
//!
//! ## Record format (`classify.log`)
//!
//! ```text
//! header:  8 bytes  b"DACLOG1\n"
//! record:  len u32 LE | body | fnv1a64(body) u64 LE
//! body:    fingerprint u64 LE | label u8 | key bytes (len - 9)
//! ```
//!
//! `label` 0 means "classified below threshold / no label"; `1 + i` means
//! `DataTypeCategory::ALL[i]`. The fingerprint is
//! [`config_fingerprint`] — a hash over the ontology (labels + vocabulary),
//! the lexicon, and the classifier configuration (seed, threshold,
//! temperature grid, aggregation). Any change to any of those yields a
//! different fingerprint, so stale entries *miss* instead of mis-hitting;
//! entries under other fingerprints are preserved verbatim (several
//! configurations can share one cache directory).
//!
//! ## Crash safety
//!
//! Appends are a single `write` + `fdatasync`; a crash can only lose or
//! truncate the tail. On open the log is scanned record-by-record:
//!
//! - a **checksum mismatch** with intact framing skips that record and keeps
//!   scanning (torn write in the middle, e.g. after compaction rename races);
//! - a **truncated tail** or implausible length stops the scan, and — when
//!   the cache is writable — the file is truncated back to the last
//!   structurally complete record so future appends re-align;
//! - a **bad header** abandons the whole file (it is rewritten empty).
//!
//! Every salvage decision is recorded as a [`CacheDamage`] entry, which the
//! pipeline mirrors into the degradation ledger as `cache:` drops — damage
//! is survived *and* reported, never silent.
//!
//! ## Locking
//!
//! A `cache.lock` file (created with `O_EXCL`, containing the owner pid)
//! serializes writers. A second opener — say a batch CLI run while the serve
//! daemon holds the cache — degrades to **read-only**: hits are still
//! served, but nothing is inserted, truncated, or compacted. Stale locks
//! from crashed processes are detected via `/proc/<pid>` and broken.
//!
//! ## Compaction
//!
//! Superseded (re-inserted) and damaged records accumulate as dead weight.
//! When the log holds at least [`COMPACT_MIN_RECORDS`] records and more than
//! half are dead, open() rewrites the live set to `classify.log.tmp`,
//! fsyncs, and atomically renames it over the log.

use diffaudit_ontology::DataTypeCategory;
use diffaudit_util::{fnv1a64, Fnv64};
use std::collections::{BTreeMap, HashMap};
use std::fs::{self, File, OpenOptions};
use std::io::{self, Read, Write};
use std::path::{Path, PathBuf};

/// Log header magic (8 bytes, version-bearing).
pub const MAGIC: &[u8; 8] = b"DACLOG1\n";
/// Log file name inside the cache directory.
pub const LOG_FILE: &str = "classify.log";
/// Advisory lock file name inside the cache directory.
pub const LOCK_FILE: &str = "cache.lock";
/// Compaction only considers logs with at least this many records.
pub const COMPACT_MIN_RECORDS: u64 = 64;
/// Upper bound on one record's body length; anything larger is framing
/// damage, not a real key.
const MAX_RECORD_BODY: u32 = 1 << 20;

/// One salvage decision made while opening the log.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CacheDamage {
    /// Human-readable description of what was wrong.
    pub reason: String,
    /// Byte offset of the damaged record, when meaningful.
    pub offset: Option<u64>,
}

/// What the cache did during one pipeline run: the counters the pipeline
/// fills in (hits/misses/inserts) plus the open-time state of the store.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct CacheReport {
    /// Keys answered from the cache.
    pub hits: u64,
    /// Keys that had to go to the ensemble.
    pub misses: u64,
    /// Fresh verdicts appended to the log.
    pub inserts: u64,
    /// `true` when another process held the lock and this run could only
    /// read.
    pub read_only: bool,
    /// Live records (all fingerprints) after open.
    pub live_records: u64,
    /// `true` when open() compacted the log.
    pub compacted: bool,
    /// Salvage decisions made while opening the log.
    pub damage: Vec<CacheDamage>,
}

/// Fingerprint of everything that determines a classification verdict: the
/// ontology (labels and vocabulary — the "ontology version"), the lexicon,
/// and the ensemble configuration. Cached entries are only trusted under an
/// exactly matching fingerprint.
pub fn config_fingerprint(
    seed: u64,
    threshold: f64,
    temperatures: &[f64],
    aggregation: &str,
) -> u64 {
    let mut hash = Fnv64::new();
    hash.write(b"diffaudit-classify-cache/v1");
    for category in DataTypeCategory::ALL {
        hash.write(&[0]);
        hash.write(category.label().as_bytes());
        for term in category.vocabulary() {
            hash.write(&[0]);
            hash.write(term.as_bytes());
        }
    }
    for (abbr, expansion) in crate::text::LEXICON {
        hash.write(&[0]);
        hash.write(abbr.as_bytes());
        hash.write(&[0]);
        hash.write(expansion.as_bytes());
    }
    hash.write(&seed.to_le_bytes());
    hash.write(&threshold.to_bits().to_le_bytes());
    for t in temperatures {
        hash.write(&t.to_bits().to_le_bytes());
    }
    hash.write(&[0]);
    hash.write(aggregation.as_bytes());
    hash.finish()
}

/// How the advisory lock was resolved at open time.
enum LockState {
    /// We created `cache.lock`; writes allowed; removed on drop.
    Owned,
    /// Another live process holds it; read-only mode.
    Contended,
}

/// The open classification store. See the module docs for the format and
/// the recovery protocol.
pub struct ClassifyCache {
    dir: PathBuf,
    fingerprint: u64,
    /// key → verdict, for entries under our fingerprint.
    own: HashMap<String, Option<DataTypeCategory>>,
    /// (fingerprint, key) → label byte, for entries under other
    /// fingerprints — preserved through compaction, never served.
    foreign: BTreeMap<(u64, String), u8>,
    /// Append handle (absent in read-only mode).
    appender: Option<File>,
    lock: LockState,
    damage: Vec<CacheDamage>,
    live_records: u64,
    compacted: bool,
    bytes_loaded: u64,
}

impl ClassifyCache {
    /// Open (creating if necessary) the cache at `dir` for `fingerprint`.
    ///
    /// Always succeeds on a damaged log (salvage semantics); only real I/O
    /// errors — unreadable directory, permission failures — are returned.
    pub fn open(dir: &Path, fingerprint: u64) -> io::Result<ClassifyCache> {
        fs::create_dir_all(dir)?;
        let lock = acquire_lock(&dir.join(LOCK_FILE))?;
        let writable = matches!(lock, LockState::Owned);

        let log_path = dir.join(LOG_FILE);
        let mut bytes = Vec::new();
        match File::open(&log_path) {
            Ok(mut f) => {
                f.read_to_end(&mut bytes)?;
            }
            Err(e) if e.kind() == io::ErrorKind::NotFound => {}
            Err(e) => return Err(e),
        }

        let mut cache = ClassifyCache {
            dir: dir.to_path_buf(),
            fingerprint,
            own: HashMap::new(),
            foreign: BTreeMap::new(),
            appender: None,
            lock,
            damage: Vec::new(),
            live_records: 0,
            compacted: false,
            bytes_loaded: bytes.len() as u64,
        };

        let scan = cache.scan(&bytes);
        if writable {
            if scan.reset_file {
                // Unrecognized header: abandon the file and start fresh.
                let mut f = File::create(&log_path)?;
                f.write_all(MAGIC)?;
                f.sync_data()?;
            } else if (scan.keep_len as usize) < bytes.len() {
                // Structural tail damage: cut back to the last complete
                // record so future appends re-align with the framing.
                let f = OpenOptions::new().write(true).open(&log_path)?;
                f.set_len(scan.keep_len)?;
                f.sync_data()?;
            } else if bytes.is_empty() {
                let mut f = File::create(&log_path)?;
                f.write_all(MAGIC)?;
                f.sync_data()?;
            }

            let dead = scan.superseded + scan.damaged_records;
            if scan.records_seen >= COMPACT_MIN_RECORDS && dead * 2 > scan.records_seen {
                cache.compact()?;
            }

            cache.appender = Some(OpenOptions::new().append(true).open(&log_path)?);
        }
        cache.live_records = (cache.own.len() + cache.foreign.len()) as u64;
        Ok(cache)
    }

    /// Scan the raw log bytes into the in-memory maps, recording damage.
    fn scan(&mut self, bytes: &[u8]) -> ScanOutcome {
        let mut out = ScanOutcome {
            keep_len: MAGIC.len() as u64,
            ..ScanOutcome::default()
        };
        if bytes.is_empty() {
            return out;
        }
        if bytes.len() < MAGIC.len() || &bytes[..MAGIC.len()] != MAGIC {
            self.damage.push(CacheDamage {
                reason: "unrecognized log header".to_string(),
                offset: Some(0),
            });
            out.reset_file = true;
            return out;
        }
        let mut pos = MAGIC.len();
        while pos < bytes.len() {
            let remaining = bytes.len() - pos;
            if remaining < 4 {
                self.damage.push(CacheDamage {
                    reason: "truncated record length".to_string(),
                    offset: Some(pos as u64),
                });
                return out;
            }
            let len =
                u32::from_le_bytes([bytes[pos], bytes[pos + 1], bytes[pos + 2], bytes[pos + 3]]);
            if len < 9 || len > MAX_RECORD_BODY {
                self.damage.push(CacheDamage {
                    reason: format!("implausible record length {len}"),
                    offset: Some(pos as u64),
                });
                return out;
            }
            let body_start = pos + 4;
            let body_end = body_start + len as usize;
            let record_end = body_end + 8;
            if record_end > bytes.len() {
                self.damage.push(CacheDamage {
                    reason: "truncated record body".to_string(),
                    offset: Some(pos as u64),
                });
                return out;
            }
            let body = &bytes[body_start..body_end];
            let stored =
                u64::from_le_bytes(bytes[body_end..record_end].try_into().unwrap_or([0u8; 8]));
            // Framing is intact from here on: whatever is wrong with this
            // record, the next one is still addressable.
            out.records_seen += 1;
            out.keep_len = record_end as u64;
            pos = record_end;
            if fnv1a64(body) != stored {
                out.damaged_records += 1;
                self.damage.push(CacheDamage {
                    reason: "checksum mismatch".to_string(),
                    offset: Some((body_start - 4) as u64),
                });
                continue;
            }
            let fp = u64::from_le_bytes(body[..8].try_into().unwrap_or([0u8; 8]));
            let label = body[8];
            if label as usize > DataTypeCategory::ALL.len() {
                out.damaged_records += 1;
                self.damage.push(CacheDamage {
                    reason: format!("invalid label byte {label}"),
                    offset: Some((body_start - 4) as u64),
                });
                continue;
            }
            let Ok(key) = std::str::from_utf8(&body[9..]) else {
                out.damaged_records += 1;
                self.damage.push(CacheDamage {
                    reason: "key is not valid UTF-8".to_string(),
                    offset: Some((body_start - 4) as u64),
                });
                continue;
            };
            if fp == self.fingerprint {
                if self
                    .own
                    .insert(key.to_string(), decode_label(label))
                    .is_some()
                {
                    out.superseded += 1;
                }
            } else if self.foreign.insert((fp, key.to_string()), label).is_some() {
                out.superseded += 1;
            }
        }
        out
    }

    /// Rewrite the live set and atomically replace the log.
    fn compact(&mut self) -> io::Result<()> {
        let log_path = self.dir.join(LOG_FILE);
        let tmp_path = self.dir.join("classify.log.tmp");
        let mut buf = Vec::with_capacity(MAGIC.len() + (self.own.len() + self.foreign.len()) * 64);
        buf.extend_from_slice(MAGIC);
        for ((fp, key), label) in &self.foreign {
            push_record(&mut buf, *fp, *label, key);
        }
        let mut keys: Vec<&String> = self.own.keys().collect();
        keys.sort_unstable();
        for key in keys {
            push_record(&mut buf, self.fingerprint, encode_label(self.own[key]), key);
        }
        let mut tmp = File::create(&tmp_path)?;
        tmp.write_all(&buf)?;
        tmp.sync_all()?;
        drop(tmp);
        fs::rename(&tmp_path, &log_path)?;
        // Best effort: persist the rename itself.
        if let Ok(d) = File::open(&self.dir) {
            let _ = d.sync_all();
        }
        self.compacted = true;
        Ok(())
    }

    /// Look up one key under this cache's fingerprint. `Some(verdict)` is a
    /// hit (the verdict itself may be "no label"); `None` is a miss.
    pub fn get(&self, key: &str) -> Option<Option<DataTypeCategory>> {
        self.own.get(key).copied()
    }

    /// Append a batch of fresh verdicts in one write + fdatasync; returns
    /// the number of records actually persisted (0 in read-only mode).
    pub fn insert_batch(
        &mut self,
        entries: &[(&str, Option<DataTypeCategory>)],
    ) -> io::Result<u64> {
        let Some(appender) = self.appender.as_mut() else {
            return Ok(0);
        };
        if entries.is_empty() {
            return Ok(0);
        }
        let mut buf = Vec::with_capacity(entries.len() * 64);
        for &(key, verdict) in entries {
            push_record(&mut buf, self.fingerprint, encode_label(verdict), key);
        }
        appender.write_all(&buf)?;
        appender.sync_data()?;
        for &(key, verdict) in entries {
            if self.own.insert(key.to_string(), verdict).is_none() {
                self.live_records += 1;
            }
        }
        Ok(entries.len() as u64)
    }

    /// `true` when another process holds the lock and writes are disabled.
    pub fn read_only(&self) -> bool {
        matches!(self.lock, LockState::Contended)
    }

    /// Salvage decisions made while opening the log.
    pub fn damage(&self) -> &[CacheDamage] {
        &self.damage
    }

    /// Live records across all fingerprints.
    pub fn live_records(&self) -> u64 {
        self.live_records
    }

    /// `true` when open() compacted the log.
    pub fn compacted(&self) -> bool {
        self.compacted
    }

    /// Bytes read from the log at open time.
    pub fn bytes_loaded(&self) -> u64 {
        self.bytes_loaded
    }

    /// Seed a [`CacheReport`] with this store's open-time state.
    pub fn report(&self) -> CacheReport {
        CacheReport {
            hits: 0,
            misses: 0,
            inserts: 0,
            read_only: self.read_only(),
            live_records: self.live_records,
            compacted: self.compacted,
            damage: self.damage.clone(),
        }
    }
}

impl Drop for ClassifyCache {
    fn drop(&mut self) {
        if matches!(self.lock, LockState::Owned) {
            let _ = fs::remove_file(self.dir.join(LOCK_FILE));
        }
    }
}

/// Per-open scan bookkeeping.
#[derive(Default)]
struct ScanOutcome {
    /// Byte length of the structurally intact prefix.
    keep_len: u64,
    /// All framed records scanned (live, superseded, or damaged).
    records_seen: u64,
    /// Records replaced by a later record for the same (fingerprint, key).
    superseded: u64,
    /// Framed records whose content failed validation.
    damaged_records: u64,
    /// Header unrecognized: rewrite the file from scratch.
    reset_file: bool,
}

fn decode_label(label: u8) -> Option<DataTypeCategory> {
    if label == 0 {
        None
    } else {
        Some(DataTypeCategory::ALL[label as usize - 1])
    }
}

fn encode_label(verdict: Option<DataTypeCategory>) -> u8 {
    match verdict {
        None => 0,
        Some(category) => {
            // Position in the canonical ordering; ALL is small enough that a
            // linear scan beats carrying an index map around.
            let idx = DataTypeCategory::ALL
                .iter()
                .position(|c| *c == category)
                .unwrap_or(0);
            idx as u8 + 1
        }
    }
}

fn push_record(buf: &mut Vec<u8>, fp: u64, label: u8, key: &str) {
    let body_len = 8 + 1 + key.len();
    buf.extend_from_slice(&(body_len as u32).to_le_bytes());
    let body_start = buf.len();
    buf.extend_from_slice(&fp.to_le_bytes());
    buf.push(label);
    buf.extend_from_slice(key.as_bytes());
    let checksum = fnv1a64(&buf[body_start..]);
    buf.extend_from_slice(&checksum.to_le_bytes());
}

/// Create-or-contend on the advisory lock file. A lock left by a dead
/// process (checked via `/proc/<pid>`) is broken and re-acquired; when
/// liveness cannot be determined the holder is assumed alive.
fn acquire_lock(lock_path: &Path) -> io::Result<LockState> {
    for attempt in 0..2 {
        match OpenOptions::new()
            .write(true)
            .create_new(true)
            .open(lock_path)
        {
            Ok(mut f) => {
                let _ = writeln!(f, "{}", std::process::id());
                return Ok(LockState::Owned);
            }
            Err(e) if e.kind() == io::ErrorKind::AlreadyExists => {
                if attempt > 0 || !holder_is_dead(lock_path) {
                    return Ok(LockState::Contended);
                }
                // Stale lock from a crashed process: break it and retry once.
                let _ = fs::remove_file(lock_path);
            }
            Err(e) => return Err(e),
        }
    }
    Ok(LockState::Contended)
}

/// `true` only when we can positively establish the lock holder is gone.
fn holder_is_dead(lock_path: &Path) -> bool {
    if !Path::new("/proc").is_dir() {
        return false; // cannot tell; assume alive
    }
    let Ok(contents) = fs::read_to_string(lock_path) else {
        return false;
    };
    match contents.trim().parse::<u32>() {
        // An unparseable pid means a corrupt lock file: treat as stale.
        Err(_) => true,
        Ok(pid) => !Path::new(&format!("/proc/{pid}")).exists(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fingerprint_changes_with_every_input() {
        let base = config_fingerprint(1, 0.8, &[0.0, 0.5], "avg");
        assert_ne!(base, config_fingerprint(2, 0.8, &[0.0, 0.5], "avg"));
        assert_ne!(base, config_fingerprint(1, 0.7, &[0.0, 0.5], "avg"));
        assert_ne!(base, config_fingerprint(1, 0.8, &[0.0, 0.25], "avg"));
        assert_ne!(base, config_fingerprint(1, 0.8, &[0.0], "avg"));
        assert_ne!(base, config_fingerprint(1, 0.8, &[0.0, 0.5], "max"));
        assert_eq!(base, config_fingerprint(1, 0.8, &[0.0, 0.5], "avg"));
    }

    #[test]
    fn label_codec_round_trips() {
        assert_eq!(decode_label(0), None);
        for category in DataTypeCategory::ALL {
            let byte = encode_label(Some(category));
            assert_eq!(decode_label(byte), Some(category));
        }
        assert_eq!(decode_label(encode_label(None)), None);
    }
}
