//! Character-n-gram TF-IDF vectorization with cosine similarity.
//!
//! This is the vector space behind the paper's strongest baseline (PolyFuzz
//! with TF-IDF embeddings, 31% sample accuracy). Character trigrams over the
//! normalized phrase are robust to small spelling variations but blind to
//! semantics — which is precisely why the baseline loses to the LLM.

use std::collections::HashMap;

/// A sparse vector keyed by feature id.
pub type SparseVec = HashMap<u64, f64>;

/// Hash a char window as if it were collected into a `String` first: the
/// streaming FNV writer over each char's UTF-8 bytes produces exactly
/// `fnv1a64(window.iter().collect::<String>())` without the allocation.
fn hash_chars(window: &[char]) -> u64 {
    let mut hash = diffaudit_util::Fnv64::new();
    let mut buf = [0u8; 4];
    for &c in window {
        hash.write(c.encode_utf8(&mut buf).as_bytes());
    }
    hash.finish()
}

/// Extract character n-grams (as feature hashes) from a phrase into `out`,
/// with word boundary markers so `"id"` inside `"video"` differs from the
/// token `"id"`. `padded` is caller-provided scratch, so a batch of phrases
/// shares one buffer instead of allocating per word and per window.
fn char_ngrams_into(phrase: &str, n: usize, padded: &mut Vec<char>, out: &mut Vec<u64>) {
    for word in phrase.split_whitespace() {
        padded.clear();
        padded.push('^');
        padded.extend(word.chars());
        padded.push('$');
        if padded.len() < n {
            out.push(hash_chars(padded));
            continue;
        }
        for window in padded.windows(n) {
            out.push(hash_chars(window));
        }
    }
}

/// One-shot convenience wrapper around [`char_ngrams_into`].
fn char_ngrams(phrase: &str, n: usize) -> Vec<u64> {
    let mut padded = Vec::new();
    let mut grams = Vec::new();
    char_ngrams_into(phrase, n, &mut padded, &mut grams);
    grams
}

/// A fitted TF-IDF vectorizer.
#[derive(Debug, Clone)]
pub struct TfIdf {
    n: usize,
    /// feature → inverse document frequency.
    idf: HashMap<u64, f64>,
    documents: usize,
}

impl TfIdf {
    /// Fit on a corpus of phrases with character n-gram size `n` (3 is the
    /// classic choice).
    pub fn fit(corpus: &[String], n: usize) -> TfIdf {
        assert!(n >= 2, "n-gram size must be at least 2");
        let mut doc_freq: HashMap<u64, usize> = HashMap::new();
        let mut padded = Vec::new();
        let mut grams = Vec::new();
        for phrase in corpus {
            grams.clear();
            char_ngrams_into(phrase, n, &mut padded, &mut grams);
            grams.sort_unstable();
            grams.dedup();
            for &g in &grams {
                *doc_freq.entry(g).or_insert(0) += 1;
            }
        }
        let documents = corpus.len().max(1);
        let idf = doc_freq
            .into_iter()
            .map(|(g, df)| {
                // Smoothed IDF, never negative.
                let idf = ((1.0 + documents as f64) / (1.0 + df as f64)).ln() + 1.0;
                (g, idf)
            })
            .collect();
        TfIdf { n, idf, documents }
    }

    /// Transform a phrase into an L2-normalized sparse vector. Features
    /// unseen at fit time get the maximum IDF (they are maximally
    /// surprising).
    pub fn transform(&self, phrase: &str) -> SparseVec {
        let default_idf = ((1.0 + self.documents as f64) / 1.0).ln() + 1.0;
        let mut tf: HashMap<u64, f64> = HashMap::new();
        for g in char_ngrams(phrase, self.n) {
            *tf.entry(g).or_insert(0.0) += 1.0;
        }
        let mut vec: SparseVec = tf
            .into_iter()
            .map(|(g, count)| {
                let idf = self.idf.get(&g).copied().unwrap_or(default_idf);
                (g, count * idf)
            })
            .collect();
        let norm: f64 = vec.values().map(|v| v * v).sum::<f64>().sqrt();
        if norm > 0.0 {
            for v in vec.values_mut() {
                *v /= norm;
            }
        }
        vec
    }

    /// Number of fitted features.
    pub fn feature_count(&self) -> usize {
        self.idf.len()
    }
}

/// Cosine similarity between two sparse vectors (assumed normalized, so this
/// is just the dot product — but computed defensively for raw vectors too).
pub fn cosine(a: &SparseVec, b: &SparseVec) -> f64 {
    let (small, large) = if a.len() <= b.len() { (a, b) } else { (b, a) };
    let dot: f64 = small
        .iter()
        .filter_map(|(k, va)| large.get(k).map(|vb| va * vb))
        .sum();
    let na: f64 = a.values().map(|v| v * v).sum::<f64>().sqrt();
    let nb: f64 = b.values().map(|v| v * v).sum::<f64>().sqrt();
    if na == 0.0 || nb == 0.0 {
        0.0
    } else {
        (dot / (na * nb)).clamp(-1.0, 1.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn corpus() -> Vec<String> {
        [
            "email address",
            "device id",
            "advertising identifier",
            "latitude",
            "session token",
        ]
        .iter()
        .map(|s| s.to_string())
        .collect()
    }

    #[test]
    fn char_hashing_matches_string_hashing() {
        // Feature ids must not move when the allocation-free hasher changed:
        // multi-byte chars included.
        for window in [
            vec!['^', 'i', 'd', '$'],
            vec!['^', 'é', 'm', '✓'],
            vec!['a'],
        ] {
            let s: String = window.iter().collect();
            assert_eq!(hash_chars(&window), diffaudit_util::fnv1a64(s.as_bytes()));
        }
    }

    #[test]
    fn self_similarity_is_one() {
        let tfidf = TfIdf::fit(&corpus(), 3);
        let v = tfidf.transform("email address");
        assert!((cosine(&v, &v) - 1.0).abs() < 1e-9);
    }

    #[test]
    fn near_match_beats_far_match() {
        let tfidf = TfIdf::fit(&corpus(), 3);
        let probe = tfidf.transform("email addr");
        let near = tfidf.transform("email address");
        let far = tfidf.transform("latitude");
        assert!(cosine(&probe, &near) > cosine(&probe, &far));
        assert!(cosine(&probe, &near) > 0.5);
    }

    #[test]
    fn disjoint_strings_near_zero() {
        let tfidf = TfIdf::fit(&corpus(), 3);
        let a = tfidf.transform("xyzzy");
        let b = tfidf.transform("qqfrob");
        assert!(cosine(&a, &b) < 0.10);
    }

    #[test]
    fn word_boundaries_matter() {
        let tfidf = TfIdf::fit(&corpus(), 3);
        // "id" as a token vs "id" inside "video": boundary markers separate them.
        let id = tfidf.transform("id");
        let video = tfidf.transform("video");
        assert!(cosine(&id, &video) < 0.3);
    }

    #[test]
    fn short_words_handled() {
        let tfidf = TfIdf::fit(&corpus(), 3);
        let v = tfidf.transform("a");
        assert!(!v.is_empty());
    }

    #[test]
    fn empty_phrase_zero_vector() {
        let tfidf = TfIdf::fit(&corpus(), 3);
        let v = tfidf.transform("");
        assert!(v.is_empty());
        assert_eq!(cosine(&v, &tfidf.transform("email")), 0.0);
    }

    #[test]
    fn feature_count_grows_with_corpus() {
        let small = TfIdf::fit(&corpus()[..2].to_vec(), 3);
        let large = TfIdf::fit(&corpus(), 3);
        assert!(large.feature_count() > small.feature_count());
    }
}
