//! Daemon configuration. Everything arrives through this struct — the
//! serve crate reads no ambient environment.

use std::path::PathBuf;

/// Tunables for [`crate::server::Server`]. The defaults favor a small
/// footprint: shedding load early beats queueing unbounded work.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// TCP port to bind on 127.0.0.1 (0 = ephemeral, the bound port is
    /// printed on stdout and available via [`crate::server::Server::addr`]).
    pub port: u16,
    /// Bounded job-queue capacity; submissions past it get `429`.
    pub queue_capacity: usize,
    /// Job-runner worker threads (concurrent jobs).
    pub workers: usize,
    /// Pipeline worker threads *per job* (the batch CLI's `--threads`).
    pub threads_per_job: usize,
    /// Deadline applied to a job when the request does not set one.
    pub default_deadline_ms: u64,
    /// Upper bound on any requested deadline.
    pub max_deadline_ms: u64,
    /// How long a drain waits for in-flight and queued jobs to finish
    /// before cancelling them.
    pub drain_deadline_ms: u64,
    /// Grace period after cancellation before survivors are counted as
    /// orphans.
    pub drain_grace_ms: u64,
    /// Largest accepted request body (uploads); bigger gets `413`.
    pub max_body_bytes: usize,
    /// Allow the `chaos` field on job submissions (fault injection for
    /// tests and drills). Off by default: a production daemon should not
    /// let clients panic its workers on request.
    pub enable_chaos: bool,
    /// Directory for the persistent classification cache shared by every
    /// job (the batch CLI's `--cache-dir`). `None` runs uncached.
    pub cache_dir: Option<PathBuf>,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            port: 0,
            queue_capacity: 4,
            workers: 2,
            threads_per_job: 1,
            default_deadline_ms: 30_000,
            max_deadline_ms: 120_000,
            drain_deadline_ms: 5_000,
            drain_grace_ms: 2_000,
            max_body_bytes: 16 * 1024 * 1024,
            enable_chaos: false,
            cache_dir: None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_are_bounded() {
        let config = ServeConfig::default();
        assert!(config.queue_capacity >= 1);
        assert!(config.workers >= 1);
        assert!(config.default_deadline_ms <= config.max_deadline_ms);
        assert!(!config.enable_chaos);
    }
}
