//! A minimal, robust HTTP/1.1 server-side codec over std I/O.
//!
//! Only what the daemon needs: one request per connection
//! (`Connection: close`), `Content-Length` bodies, a bounded header
//! section, and a bounded body. Anything malformed maps to a typed error
//! the server renders as `400`/`413` — a bad client must never take the
//! accept loop down.
//!
//! The request body is treated as payload (it may be a raw capture full
//! of personal data): this module never logs or prints body bytes, only
//! lengths.

use std::io::{Read, Write};

/// Cap on the request-line + header section.
const MAX_HEAD_BYTES: usize = 32 * 1024;

/// Decode errors, split by the HTTP status they map to.
#[derive(Debug)]
pub enum HttpError {
    /// Unparseable request (`400`).
    Malformed(String),
    /// Declared body exceeds the configured bound (`413`).
    TooLarge {
        /// The configured limit that was exceeded.
        limit: usize,
    },
    /// Transport failure mid-read (connection reset, timeout).
    Io(std::io::Error),
}

impl std::fmt::Display for HttpError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            HttpError::Malformed(msg) => write!(f, "malformed request: {msg}"),
            HttpError::TooLarge { limit } => {
                write!(f, "request body exceeds {limit} bytes")
            }
            HttpError::Io(e) => write!(f, "io error: {e}"),
        }
    }
}

impl std::error::Error for HttpError {}

/// A parsed request: method, raw target (path + query), headers, body.
#[derive(Debug)]
pub struct Request {
    /// Request method (`GET`, `POST`, ...).
    pub method: String,
    /// The raw request target, e.g. `/api/v1/traces?label=a.har`.
    pub target: String,
    /// Header name/value pairs in arrival order.
    pub headers: Vec<(String, String)>,
    /// The request body (may be raw capture payload — never log it).
    pub body: Vec<u8>,
}

impl Request {
    /// The target's path component (before `?`).
    pub fn path(&self) -> &str {
        match self.target.split_once('?') {
            Some((path, _)) => path,
            None => &self.target,
        }
    }

    /// First query parameter named `name`, percent-decoded.
    pub fn query_param(&self, name: &str) -> Option<String> {
        let (_, query) = self.target.split_once('?')?;
        for pair in query.split('&') {
            let (key, value) = match pair.split_once('=') {
                Some(kv) => kv,
                None => (pair, ""),
            };
            if key == name {
                return Some(percent_decode(value));
            }
        }
        None
    }

    /// Case-insensitive header lookup.
    pub fn header(&self, name: &str) -> Option<&str> {
        self.headers
            .iter()
            .find(|(k, _)| k.eq_ignore_ascii_case(name))
            .map(|(_, v)| v.as_str())
    }
}

/// Decode `%XX` escapes and `+` (space) in a query value.
fn percent_decode(s: &str) -> String {
    let bytes = s.as_bytes();
    let mut out = Vec::with_capacity(bytes.len());
    let mut i = 0;
    while let Some(&b) = bytes.get(i) {
        match b {
            b'%' => {
                let parsed = bytes
                    .get(i + 1..i + 3)
                    .and_then(|hex| std::str::from_utf8(hex).ok())
                    .and_then(|h| u8::from_str_radix(h, 16).ok());
                match parsed {
                    Some(v) => {
                        out.push(v);
                        i += 3;
                    }
                    None => {
                        out.push(b'%');
                        i += 1;
                    }
                }
            }
            b'+' => {
                out.push(b' ');
                i += 1;
            }
            b => {
                out.push(b);
                i += 1;
            }
        }
    }
    String::from_utf8_lossy(&out).into_owned()
}

/// Read one request off `stream`. The header section is capped at
/// [`MAX_HEAD_BYTES`]; the body at `max_body`. The caller is expected to
/// have set a read timeout on the underlying socket so a stalled client
/// surfaces as [`HttpError::Io`] rather than a hung accept loop.
pub fn read_request<S: Read>(stream: &mut S, max_body: usize) -> Result<Request, HttpError> {
    let mut head = Vec::with_capacity(1024);
    let mut buf = [0u8; 4096];
    let split = loop {
        if let Some(pos) = find_header_end(&head) {
            break pos;
        }
        if head.len() > MAX_HEAD_BYTES {
            return Err(HttpError::Malformed("header section too large".into()));
        }
        let n = stream.read(&mut buf).map_err(HttpError::Io)?;
        if n == 0 {
            return Err(HttpError::Malformed(
                "connection closed before end of headers".into(),
            ));
        }
        head.extend_from_slice(buf.get(..n).unwrap_or_default());
    };

    let header_text = std::str::from_utf8(head.get(..split).unwrap_or_default())
        .map_err(|_| HttpError::Malformed("headers are not UTF-8".into()))?;
    let mut lines = header_text.split("\r\n");
    let request_line = lines
        .next()
        .ok_or_else(|| HttpError::Malformed("empty request".into()))?;
    let mut parts = request_line.split_whitespace();
    let method = parts
        .next()
        .ok_or_else(|| HttpError::Malformed("missing method".into()))?
        .to_string();
    let target = parts
        .next()
        .ok_or_else(|| HttpError::Malformed("missing request target".into()))?
        .to_string();
    match parts.next() {
        Some(version) if version.starts_with("HTTP/1.") => {}
        _ => return Err(HttpError::Malformed("expected HTTP/1.x version".into())),
    }

    let mut headers = Vec::new();
    for line in lines {
        if line.is_empty() {
            continue;
        }
        let (name, value) = line
            .split_once(':')
            .ok_or_else(|| HttpError::Malformed(format!("header line without colon: {line:?}")))?;
        headers.push((name.trim().to_string(), value.trim().to_string()));
    }

    let content_length = match headers
        .iter()
        .find(|(k, _)| k.eq_ignore_ascii_case("content-length"))
    {
        Some((_, v)) => v
            .parse::<usize>()
            .map_err(|_| HttpError::Malformed(format!("bad content-length {v:?}")))?,
        None => 0,
    };
    if content_length > max_body {
        return Err(HttpError::TooLarge { limit: max_body });
    }

    let mut body = head.get(split + 4..).unwrap_or_default().to_vec();
    if body.len() > content_length {
        return Err(HttpError::Malformed(
            "body longer than declared content-length".into(),
        ));
    }
    while body.len() < content_length {
        let n = stream.read(&mut buf).map_err(HttpError::Io)?;
        if n == 0 {
            return Err(HttpError::Malformed("connection closed mid-body".into()));
        }
        let want = content_length - body.len();
        if n > want {
            return Err(HttpError::Malformed(
                "body longer than declared content-length".into(),
            ));
        }
        body.extend_from_slice(buf.get(..n).unwrap_or_default());
    }

    Ok(Request {
        method,
        target,
        headers,
        body,
    })
}

/// Offset of the `\r\n\r\n` header terminator, if present.
fn find_header_end(head: &[u8]) -> Option<usize> {
    head.windows(4).position(|w| w == b"\r\n\r\n")
}

/// An outgoing response; always `Connection: close`.
#[derive(Debug)]
pub struct Response {
    /// HTTP status code.
    pub status: u16,
    /// `Content-Type` header value.
    pub content_type: &'static str,
    /// Response body bytes.
    pub body: Vec<u8>,
}

impl Response {
    /// A JSON response from a rendered document string.
    pub fn json(status: u16, body: String) -> Response {
        Response {
            status,
            content_type: "application/json",
            body: body.into_bytes(),
        }
    }

    /// A plain-text response.
    pub fn text(status: u16, body: String) -> Response {
        Response {
            status,
            content_type: "text/plain; charset=utf-8",
            body: body.into_bytes(),
        }
    }

    /// A Prometheus text-exposition response (`GET /metrics`).
    pub fn exposition(body: String) -> Response {
        Response {
            status: 200,
            content_type: "text/plain; version=0.0.4",
            body: body.into_bytes(),
        }
    }

    /// A JSON `{"error": msg}` response.
    pub fn error(status: u16, msg: &str) -> Response {
        let doc = diffaudit_json::Json::obj().with("error", diffaudit_json::Json::str(msg));
        Response::json(status, doc.to_string())
    }

    /// Serialize onto the wire.
    pub fn write_to<W: Write>(&self, stream: &mut W) -> std::io::Result<()> {
        let head = format!(
            "HTTP/1.1 {} {}\r\nContent-Type: {}\r\nContent-Length: {}\r\nConnection: close\r\n\r\n",
            self.status,
            reason(self.status),
            self.content_type,
            self.body.len(),
        );
        stream.write_all(head.as_bytes())?;
        stream.write_all(&self.body)?;
        stream.flush()
    }
}

/// Reason phrase for the status codes the daemon emits.
pub fn reason(status: u16) -> &'static str {
    match status {
        200 => "OK",
        201 => "Created",
        202 => "Accepted",
        206 => "Partial Content",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        409 => "Conflict",
        413 => "Payload Too Large",
        422 => "Unprocessable Content",
        429 => "Too Many Requests",
        500 => "Internal Server Error",
        503 => "Service Unavailable",
        504 => "Gateway Timeout",
        _ => "Unknown",
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(raw: &[u8]) -> Result<Request, HttpError> {
        let mut cursor = raw;
        read_request(&mut cursor, 1024)
    }

    #[test]
    fn parses_a_post_with_body() {
        let raw = b"POST /api/v1/traces?label=a.har HTTP/1.1\r\nHost: x\r\nContent-Length: 5\r\n\r\nhello";
        let req = parse(raw).expect("valid request");
        assert_eq!(req.method, "POST");
        assert_eq!(req.path(), "/api/v1/traces");
        assert_eq!(req.query_param("label").as_deref(), Some("a.har"));
        assert_eq!(req.header("host"), Some("x"));
        assert_eq!(req.body, b"hello");
    }

    #[test]
    fn get_without_body_parses() {
        let req = parse(b"GET /healthz HTTP/1.1\r\n\r\n").expect("valid");
        assert_eq!(req.method, "GET");
        assert!(req.body.is_empty());
        assert!(req.query_param("missing").is_none());
    }

    #[test]
    fn garbage_is_malformed_not_a_panic() {
        assert!(matches!(
            parse(b"\x00\xff\xfe not http"),
            Err(HttpError::Malformed(_))
        ));
        assert!(matches!(
            parse(b"GET\r\n\r\n"),
            Err(HttpError::Malformed(_))
        ));
        assert!(matches!(
            parse(b"GET / FTP/9\r\n\r\n"),
            Err(HttpError::Malformed(_))
        ));
    }

    #[test]
    fn oversized_body_is_too_large() {
        let raw = b"POST /x HTTP/1.1\r\nContent-Length: 999999\r\n\r\n";
        assert!(matches!(
            parse(raw),
            Err(HttpError::TooLarge { limit: 1024 })
        ));
    }

    #[test]
    fn truncated_body_is_malformed() {
        let raw = b"POST /x HTTP/1.1\r\nContent-Length: 10\r\n\r\nshort";
        assert!(matches!(parse(raw), Err(HttpError::Malformed(_))));
    }

    #[test]
    fn percent_decoding_round_trips() {
        assert_eq!(percent_decode("a%20b+c"), "a b c");
        assert_eq!(percent_decode("plain"), "plain");
        assert_eq!(percent_decode("bad%zz"), "bad%zz");
    }

    #[test]
    fn response_wire_format() {
        let mut out = Vec::new();
        Response::text(200, "hi".into())
            .write_to(&mut out)
            .expect("write");
        let text = String::from_utf8(out).expect("utf8");
        assert!(text.starts_with("HTTP/1.1 200 OK\r\n"), "{text}");
        assert!(text.contains("Content-Length: 2\r\n"));
        assert!(text.ends_with("\r\n\r\nhi"));
    }
}
