#![forbid(unsafe_code)]
#![warn(missing_docs)]

//! # diffaudit-serve
//!
//! A fault-contained audit daemon over the DiffAudit pipeline.
//!
//! The batch CLI audits capture directories and exits; this crate runs the
//! same pipeline as a long-lived service: clients upload traces (HAR,
//! pcap, pcapng) over a hand-rolled std-only HTTP/1.1 API, enqueue audit
//! jobs against them, poll status, and fetch the audit document and run
//! report. The daemon's value is not the transport — it is the fault
//! containment contract around each job:
//!
//! - **Bounded queueing** — a fixed-capacity job queue sheds load with an
//!   explicit `429 queue full` instead of accepting unbounded work
//!   ([`queue::BoundedQueue`]).
//! - **Deadlines and cancellation** — every job runs under a
//!   [`diffaudit_util::cancel::Ctl`] (deadline + cancel token) threaded
//!   through the loader and every pipeline phase; a stalled decode times
//!   out at the deadline and surfaces as ledger drops or a `504`, never a
//!   wedged worker ([`runner`]).
//! - **Panic isolation** — a panicking job is caught at the worker
//!   boundary, recorded as that job's hard failure, and the worker
//!   returns to the pool ([`server`]).
//! - **Observability isolation** — each job accumulates metrics and spans
//!   in a private [`diffaudit_obs::Scope`]; nothing touches the global
//!   registry until the job completes and its snapshot is merged at the
//!   one sanctioned join point.
//! - **Graceful drain** — `POST /api/v1/shutdown` stops intake, completes
//!   in-flight and queued work within the drain deadline, then cancels
//!   stragglers and reports any orphans in the exit code.
//!
//! See DESIGN.md §9 for the protocol and the job state machine.

pub mod client;
pub mod config;
pub mod http;
pub mod job;
pub mod names;
pub mod queue;
pub mod runner;
pub mod server;

pub use config::ServeConfig;
pub use server::{Server, ServerExit};
