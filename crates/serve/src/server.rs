//! The daemon: TCP accept loop, REST routing, the worker pool, and the
//! graceful-drain protocol.
//!
//! Architecture: a single-threaded HTTP front end (requests are small and
//! bounded — parse, mutate shared state, respond) over a pool of job
//! workers that do the actual audits. Uploads land in an in-memory trace
//! store; job submission snapshots the referenced traces into a
//! [`JobRequest`] and enqueues it, so later uploads never mutate a running
//! job.
//!
//! ## REST surface (`/api/v1`)
//!
//! | method | path | purpose |
//! |---|---|---|
//! | POST | `/traces?label&platform&kind&category` | upload HAR/pcap/pcapng body → `{"traceId"}` |
//! | POST | `/traces/<id>/keylog` | attach an `SSLKEYLOGFILE` to a capture |
//! | POST | `/jobs` | enqueue an audit → `202` / `429 queue full` / `503 draining` |
//! | GET | `/jobs` | list job statuses |
//! | GET | `/jobs/<id>` | one job's status |
//! | GET | `/jobs/<id>/result` | audit JSON; HTTP status mirrors the exit contract |
//! | GET | `/jobs/<id>/report` | text run report |
//! | GET | `/metrics` | global metrics snapshot (JSON) |
//! | GET | `/events?since` | retained warn/error ring, for live tailing |
//! | GET | `/healthz` | liveness + queue depth |
//! | POST | `/shutdown` | begin graceful drain |
//!
//! Outside the `/api/v1` prefix, `GET /metrics` serves the same registry
//! in Prometheus text exposition format (counters, gauges, histogram
//! buckets), and every routed request feeds per-endpoint × status-class
//! latency histograms plus queue/in-flight/busy gauges (see
//! [`crate::names`]).
//!
//! ## Drain protocol
//!
//! `shutdown` flips the draining flag (new submissions get `503`), the
//! accept loop exits, the queue closes. Workers finish running jobs and
//! drain what is already queued. If anything is still unfinished at the
//! drain deadline, every active job's cancel token is tripped and the
//! cooperative checkpoints get a grace period to unwind; whatever still
//! survives is counted as orphaned and reported in [`ServerExit`] — a
//! nonzero orphan count is the operator's signal that a job ignored its
//! checkpoints.
//!
//! SIGTERM handling is a supervisor concern: pure-std cannot trap
//! signals, so process managers should send `POST /shutdown` first and
//! SIGKILL after a timeout (see DESIGN.md §9).

use crate::config::ServeConfig;
use crate::http::{self, HttpError, Request, Response};
use crate::job::{JobCompletion, JobPhase, JobRecord, JobTable, JobView};
use crate::names;
use crate::queue::{BoundedQueue, PushError};
use crate::runner::{self, ChaosMode, JobRequest};
use diffaudit::loader::{MemoryArtifact, MemoryService, MemoryUnit};
use diffaudit::salvage::SalvagePolicy;
use diffaudit_json::{parse, Json};
use diffaudit_obs as obs;
use diffaudit_services::{Platform, TraceCategory, TraceKind};
use diffaudit_util::cancel::CancelToken;
use std::collections::HashMap;
use std::net::{SocketAddr, TcpListener};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, MutexGuard};
use std::time::{Duration, Instant};

/// Read/write timeout on accepted connections: a stalled client must not
/// wedge the accept loop.
const CONN_TIMEOUT: Duration = Duration::from_secs(5);

/// An uploaded artifact waiting to be referenced by jobs.
#[derive(Clone)]
struct StoredTrace {
    label: String,
    platform: Platform,
    kind: TraceKind,
    category: TraceCategory,
    artifact: MemoryArtifact,
}

struct QueuedJob {
    id: String,
    request: JobRequest,
}

/// State shared between the accept loop and the workers.
struct Shared {
    config: ServeConfig,
    traces: Mutex<HashMap<String, StoredTrace>>,
    jobs: JobTable,
    queue: BoundedQueue<QueuedJob>,
    draining: AtomicBool,
    next_trace: AtomicU64,
    next_job: AtomicU64,
}

impl Shared {
    fn traces(&self) -> MutexGuard<'_, HashMap<String, StoredTrace>> {
        match self.traces.lock() {
            Ok(guard) => guard,
            Err(poisoned) => poisoned.into_inner(),
        }
    }
}

/// What a finished daemon reports to its supervisor.
#[derive(Debug, Clone, Copy)]
pub struct ServerExit {
    /// Jobs that reached a terminal phase.
    pub jobs_finished: usize,
    /// Jobs still unfinished after drain + cancellation + grace. Nonzero
    /// means a job ignored its cancellation checkpoints.
    pub orphaned: usize,
}

/// A bound, not-yet-running daemon. [`Server::bind`] then [`Server::run`];
/// the two-step split lets tests learn the ephemeral port before starting
/// the accept loop on another thread.
pub struct Server {
    listener: TcpListener,
    shared: Arc<Shared>,
}

impl Server {
    /// Bind the listening socket on 127.0.0.1 and set up shared state.
    pub fn bind(config: ServeConfig) -> std::io::Result<Server> {
        let listener = TcpListener::bind(("127.0.0.1", config.port))?;
        let shared = Arc::new(Shared {
            queue: BoundedQueue::new(config.queue_capacity).with_depth_gauge(names::QUEUE_DEPTH),
            config,
            traces: Mutex::new(HashMap::new()),
            jobs: JobTable::new(),
            draining: AtomicBool::new(false),
            next_trace: AtomicU64::new(0),
            next_job: AtomicU64::new(0),
        });
        Ok(Server { listener, shared })
    }

    /// The bound address (resolves port 0).
    pub fn addr(&self) -> std::io::Result<SocketAddr> {
        self.listener.local_addr()
    }

    /// Run the accept loop until a shutdown request, then drain. Consumes
    /// the server; returns the drain accounting.
    pub fn run(self) -> ServerExit {
        let shared = self.shared;
        let workers: Vec<std::thread::JoinHandle<()>> = (0..shared.config.workers.max(1))
            .map(|_| {
                let shared = Arc::clone(&shared);
                std::thread::spawn(move || worker_loop(&shared))
            })
            .collect();

        for conn in self.listener.incoming() {
            let mut stream = match conn {
                Ok(stream) => stream,
                Err(_) => continue,
            };
            let _ = stream.set_read_timeout(Some(CONN_TIMEOUT));
            let _ = stream.set_write_timeout(Some(CONN_TIMEOUT));
            let response = match http::read_request(&mut stream, shared.config.max_body_bytes) {
                Ok(request) => route(&shared, &request),
                Err(error) => transport_error_response(&error),
            };
            let _ = response.write_to(&mut stream);
            if shared.draining.load(Ordering::SeqCst) {
                break;
            }
        }
        drop(self.listener);

        // Drain: close intake, let workers finish running + queued jobs.
        shared.queue.close();
        let drain_deadline =
            Instant::now() + Duration::from_millis(shared.config.drain_deadline_ms);
        while shared.jobs.unfinished() > 0 && Instant::now() < drain_deadline {
            std::thread::sleep(Duration::from_millis(10));
        }
        // Past the deadline: cancel survivors and give the cooperative
        // checkpoints a grace period to unwind.
        if shared.jobs.unfinished() > 0 {
            obs::warn(
                "drain deadline exceeded; cancelling jobs",
                &[obs::field("unfinished", shared.jobs.unfinished())],
            );
            for token in shared.jobs.active_tokens() {
                token.cancel();
            }
            let grace = Instant::now() + Duration::from_millis(shared.config.drain_grace_ms);
            while shared.jobs.unfinished() > 0 && Instant::now() < grace {
                std::thread::sleep(Duration::from_millis(10));
            }
        }
        let orphaned = shared.jobs.unfinished();
        if orphaned == 0 {
            // Workers have no more work and no stuck job: join them so
            // their final table writes land before we report.
            for worker in workers {
                let _ = worker.join();
            }
        } else {
            // A worker is wedged inside a job that ignores cancellation.
            // Joining would hang the drain; leak the thread and report the
            // orphan instead (the supervisor escalates to SIGKILL).
            obs::warn(
                "orphaned jobs at shutdown",
                &[obs::field("orphaned", orphaned)],
            );
        }
        obs::flush();
        ServerExit {
            jobs_finished: shared.jobs.finished(),
            orphaned,
        }
    }
}

/// One worker: pop, run under `catch_unwind`, record, repeat. A panicking
/// job is recorded as that job's `panicked` phase; the worker itself
/// survives and returns to the queue.
fn worker_loop(shared: &Arc<Shared>) {
    while let Some(QueuedJob { id, request }) = shared.queue.pop() {
        let Some(token) = shared.jobs.begin(&id) else {
            continue;
        };
        let threads = shared.config.threads_per_job.max(1);
        // The busy gauge brackets the catch_unwind region from outside:
        // instrumentation must stay out of the unwind-contained job body
        // (the par-discipline pass enforces this), and decrementing before
        // the completion write means a terminal phase always implies the
        // worker is already accounted free.
        obs::gauge_add(names::WORKERS_BUSY, 1);
        let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            runner::run_job(request, token, threads)
        }));
        obs::gauge_sub(names::WORKERS_BUSY, 1);
        match outcome {
            Ok(output) => {
                // The one sanctioned join point: the job is over, its
                // private snapshot merges into the global registry.
                if let Some(snapshot) = output.metrics {
                    obs::global().merge(snapshot.metrics);
                }
                obs::add(names::JOBS_FINISHED, 1);
                shared.jobs.complete(&id, output.completion);
            }
            Err(payload) => {
                let reason = panic_message(payload.as_ref());
                obs::add(names::JOBS_PANICKED, 1);
                obs::warn(
                    "job panicked; worker contained it",
                    &[
                        obs::field("job", id.as_str()),
                        obs::field("reason", reason.as_str()),
                    ],
                );
                let doc = Json::obj()
                    .with("error", Json::str(format!("job panicked: {reason}")))
                    .to_pretty_string();
                shared.jobs.complete(
                    &id,
                    JobCompletion {
                        phase: JobPhase::Panicked,
                        result_json: doc,
                        report: None,
                        metrics_json: None,
                        error: Some(reason),
                    },
                );
            }
        }
    }
}

fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

fn transport_error_response(error: &HttpError) -> Response {
    match error {
        HttpError::Malformed(msg) => Response::error(400, &format!("malformed request: {msg}")),
        HttpError::TooLarge { limit } => {
            Response::error(413, &format!("request body exceeds {limit} bytes"))
        }
        HttpError::Io(_) => Response::error(400, "request read failed"),
    }
}

// ------------------------------------------------------------- routing

/// Route one request, wrapped in per-request instrumentation: an access
/// span, the request counters (total + sliding window), and the
/// per-endpoint × status-class latency histograms. Endpoint and status
/// both come from closed matches in [`names`], so the series set is
/// bounded no matter what clients send.
fn route(shared: &Arc<Shared>, request: &Request) -> Response {
    let _span = obs::span(names::HTTP_SPAN);
    let started = Instant::now();
    let path = request.path().to_string();
    let segments: Vec<&str> = path.trim_matches('/').split('/').collect();
    let endpoint = names::endpoint_class(&segments);
    let response = dispatch(shared, request, &segments);
    let elapsed_us = u64::try_from(started.elapsed().as_micros()).unwrap_or(u64::MAX);
    obs::add(names::HTTP_REQUESTS, 1);
    obs::window_add(names::HTTP_REQUESTS_WINDOW, 1);
    obs::observe(
        names::http_latency(endpoint, response.status),
        &obs::LATENCY_US_BOUNDS,
        elapsed_us,
    );
    obs::window_observe(
        names::HTTP_LATENCY_WINDOW,
        &obs::LATENCY_US_BOUNDS,
        elapsed_us,
    );
    response
}

fn dispatch(shared: &Arc<Shared>, request: &Request, segments: &[&str]) -> Response {
    match (request.method.as_str(), segments) {
        ("GET", ["healthz"]) => health(shared),
        ("GET", ["metrics"]) => Response::exposition(obs::render_exposition(&obs::snapshot())),
        ("POST", ["api", "v1", "traces"]) => upload_trace(shared, request),
        ("POST", ["api", "v1", "traces", id, "keylog"]) => attach_keylog(shared, id, request),
        ("POST", ["api", "v1", "jobs"]) => submit_job(shared, request),
        ("GET", ["api", "v1", "jobs"]) => list_jobs(shared),
        ("GET", ["api", "v1", "jobs", id]) => job_status(shared, id),
        ("GET", ["api", "v1", "jobs", id, "result"]) => job_result(shared, id),
        ("GET", ["api", "v1", "jobs", id, "report"]) => job_report(shared, id),
        ("GET", ["api", "v1", "metrics"]) => {
            Response::json(200, obs::snapshot().to_json().to_pretty_string())
        }
        ("GET", ["api", "v1", "events"]) => events(request),
        ("POST", ["api", "v1", "shutdown"]) => shutdown(shared),
        (_, ["healthz"])
        | (_, ["metrics"])
        | (_, ["api", "v1", "traces", ..])
        | (_, ["api", "v1", "jobs", ..])
        | (_, ["api", "v1", "metrics"])
        | (_, ["api", "v1", "events"])
        | (_, ["api", "v1", "shutdown"]) => Response::error(405, "method not allowed"),
        _ => Response::error(404, "no such endpoint"),
    }
}

/// `GET /api/v1/events?since=<cursor>`: the retained warn/error event
/// ring, for `diffaudit obs tail`. The cursor is the ring sequence of the
/// newest event returned; pass it back to receive only newer events.
///
/// With nothing new to return, the cursor is the daemon's *own* ring
/// position rather than an echo of `since`: after a daemon restart the
/// ring sequence restarts from zero, and echoing a stale high cursor back
/// would let the client poll past the new head forever. Returning the
/// authoritative position lets `obs tail` detect the regression and
/// resync.
fn events(request: &Request) -> Response {
    let since = request
        .query_param("since")
        .and_then(|s| s.parse::<u64>().ok())
        .unwrap_or(0);
    let events = obs::events_since(since);
    let cursor = events
        .last()
        .map(|e| e.seq)
        .unwrap_or_else(|| obs::global().ring_cursor());
    let doc = Json::obj()
        .with("schema", Json::str("diffaudit-events/v1"))
        .with("cursor", Json::int(cursor as i64))
        .with(
            "events",
            Json::Arr(events.iter().map(obs::RingEvent::to_json).collect()),
        );
    Response::json(200, doc.to_pretty_string())
}

fn health(shared: &Arc<Shared>) -> Response {
    let draining = shared.draining.load(Ordering::SeqCst);
    let doc = Json::obj()
        .with(
            "status",
            Json::str(if draining { "draining" } else { "ok" }),
        )
        .with("queueDepth", Json::int(shared.queue.len() as i64))
        .with("unfinishedJobs", Json::int(shared.jobs.unfinished() as i64));
    Response::json(200, doc.to_pretty_string())
}

fn parse_platform(s: &str) -> Option<Platform> {
    match s.to_ascii_lowercase().as_str() {
        "web" => Some(Platform::Web),
        "mobile" => Some(Platform::Mobile),
        "desktop" => Some(Platform::Desktop),
        _ => None,
    }
}

fn parse_kind(s: &str) -> Option<TraceKind> {
    match s.to_ascii_lowercase().as_str() {
        "account-creation" | "account_creation" => Some(TraceKind::AccountCreation),
        "logged-in" | "logged_in" => Some(TraceKind::LoggedIn),
        "logged-out" | "logged_out" => Some(TraceKind::LoggedOut),
        _ => None,
    }
}

fn parse_category(s: &str) -> Option<TraceCategory> {
    match s.to_ascii_lowercase().as_str() {
        "child" => Some(TraceCategory::Child),
        "adolescent" => Some(TraceCategory::Adolescent),
        "adult" => Some(TraceCategory::Adult),
        "logged-out" | "logged_out" => Some(TraceCategory::LoggedOut),
        _ => None,
    }
}

/// Classify an upload body by magic bytes: pcap (either byte order),
/// pcapng SHB, otherwise HAR text (which must be UTF-8).
fn sniff_artifact(body: &[u8]) -> Result<(MemoryArtifact, &'static str), Response> {
    const PCAP_LE: [u8; 4] = [0xd4, 0xc3, 0xb2, 0xa1];
    const PCAP_BE: [u8; 4] = [0xa1, 0xb2, 0xc3, 0xd4];
    const PCAPNG_SHB: [u8; 4] = [0x0a, 0x0d, 0x0d, 0x0a];
    if body.len() >= 4 {
        let magic = &body[..4];
        if magic == PCAP_LE || magic == PCAP_BE || magic == PCAPNG_SHB {
            return Ok((
                MemoryArtifact::Capture {
                    bytes: body.to_vec(),
                    keylog: None,
                },
                "capture",
            ));
        }
    }
    match std::str::from_utf8(body) {
        Ok(text) => Ok((MemoryArtifact::Har(text.to_string()), "har")),
        Err(_) => Err(Response::error(
            400,
            "body is neither a capture (pcap/pcapng magic) nor UTF-8 HAR text",
        )),
    }
}

fn upload_trace(shared: &Arc<Shared>, request: &Request) -> Response {
    if shared.draining.load(Ordering::SeqCst) {
        return Response::error(503, "draining");
    }
    if request.body.is_empty() {
        return Response::error(400, "empty trace body");
    }
    let Some(platform) = request
        .query_param("platform")
        .as_deref()
        .and_then(parse_platform)
    else {
        return Response::error(400, "platform query param must be web|mobile|desktop");
    };
    let Some(kind) = request.query_param("kind").as_deref().and_then(parse_kind) else {
        return Response::error(
            400,
            "kind query param must be account-creation|logged-in|logged-out",
        );
    };
    let Some(category) = request
        .query_param("category")
        .as_deref()
        .and_then(parse_category)
    else {
        return Response::error(
            400,
            "category query param must be child|adolescent|adult|logged-out",
        );
    };
    let (artifact, format) = match sniff_artifact(&request.body) {
        Ok(found) => found,
        Err(response) => return response,
    };
    let id = format!("t-{}", shared.next_trace.fetch_add(1, Ordering::SeqCst) + 1);
    let label = request.query_param("label").unwrap_or_else(|| id.clone());
    let bytes = request.body.len();
    shared.traces().insert(
        id.clone(),
        StoredTrace {
            label,
            platform,
            kind,
            category,
            artifact,
        },
    );
    obs::add(names::TRACES_UPLOADED, 1);
    let doc = Json::obj()
        .with("traceId", Json::str(id))
        .with("format", Json::str(format))
        .with("bytes", Json::int(bytes as i64));
    Response::json(201, doc.to_pretty_string())
}

fn attach_keylog(shared: &Arc<Shared>, id: &str, request: &Request) -> Response {
    let text = match std::str::from_utf8(&request.body) {
        Ok(text) => text.to_string(),
        Err(_) => return Response::error(400, "keylog must be UTF-8 text"),
    };
    let mut traces = shared.traces();
    let Some(trace) = traces.get_mut(id) else {
        return Response::error(404, "no such trace");
    };
    match &mut trace.artifact {
        MemoryArtifact::Capture { keylog, .. } => {
            *keylog = Some(text);
            Response::json(
                200,
                Json::obj().with("attached", Json::Bool(true)).to_string(),
            )
        }
        MemoryArtifact::Har(_) => {
            Response::error(400, "trace is a HAR; key logs attach to captures")
        }
    }
}

fn submit_job(shared: &Arc<Shared>, request: &Request) -> Response {
    if shared.draining.load(Ordering::SeqCst) {
        return Response::error(503, "draining");
    }
    let text = match std::str::from_utf8(&request.body) {
        Ok(text) => text,
        Err(_) => return Response::error(400, "job body must be UTF-8 JSON"),
    };
    let doc = match parse(text) {
        Ok(doc) => doc,
        Err(e) => return Response::error(400, &format!("invalid JSON: {e}")),
    };

    let Some(service) = doc.get("service") else {
        return Response::error(400, "missing \"service\" object");
    };
    let (Some(name), Some(slug)) = (
        service.get("name").and_then(Json::as_str),
        service.get("slug").and_then(Json::as_str),
    ) else {
        return Response::error(400, "service needs string fields name and slug");
    };
    let first_party_domains: Vec<String> = service
        .get("firstPartyDomains")
        .and_then(Json::as_arr)
        .map(|arr| {
            arr.iter()
                .filter_map(|v| v.as_str().map(str::to_string))
                .collect()
        })
        .unwrap_or_default();
    if first_party_domains.is_empty() {
        return Response::error(400, "service.firstPartyDomains must be a non-empty array");
    }

    let Some(trace_ids) = doc.get("traces").and_then(Json::as_arr) else {
        return Response::error(400, "missing \"traces\" array of trace ids");
    };
    let mut units: Vec<MemoryUnit> = Vec::with_capacity(trace_ids.len());
    {
        let traces = shared.traces();
        for id_value in trace_ids {
            let Some(id) = id_value.as_str() else {
                return Response::error(400, "trace ids must be strings");
            };
            let Some(stored) = traces.get(id) else {
                return Response::error(400, &format!("unknown trace id {id:?}"));
            };
            units.push(MemoryUnit {
                label: stored.label.clone(),
                platform: stored.platform,
                kind: stored.kind,
                category: stored.category,
                artifact: stored.artifact.clone(),
            });
        }
    }
    if units.is_empty() {
        return Response::error(400, "a job needs at least one trace");
    }

    let mut policy = SalvagePolicy::default();
    if doc.get("strict").and_then(Json::as_bool) == Some(true) {
        policy.strict = true;
    }
    if let Some(pct) = doc.get("maxDropPct").and_then(Json::as_f64) {
        if !(0.0..=100.0).contains(&pct) {
            return Response::error(400, "maxDropPct must be in [0, 100]");
        }
        policy.max_drop_fraction = Some(pct / 100.0);
    }
    let seed = doc
        .get("ensemble")
        .and_then(Json::as_i64)
        .map(|v| v as u64)
        .unwrap_or(2023);
    let threshold = doc.get("threshold").and_then(Json::as_f64).unwrap_or(0.8);
    let deadline_ms = doc
        .get("deadlineMs")
        .and_then(Json::as_i64)
        .map(|v| v.max(1) as u64)
        .unwrap_or(shared.config.default_deadline_ms)
        .min(shared.config.max_deadline_ms);
    let chaos = match doc.get("chaos").and_then(Json::as_str) {
        None => None,
        Some(_) if !shared.config.enable_chaos => {
            return Response::error(400, "chaos injection is disabled on this daemon");
        }
        Some("panic") => Some(ChaosMode::Panic),
        Some("stall-decode") => Some(ChaosMode::StallDecode),
        Some(other) => {
            return Response::error(400, &format!("unknown chaos mode {other:?}"));
        }
    };

    let job_request = JobRequest {
        service: MemoryService {
            name: name.to_string(),
            slug: slug.to_string(),
            first_party_domains,
            units,
        },
        policy,
        seed,
        threshold,
        deadline: Duration::from_millis(deadline_ms),
        chaos,
        cache_dir: shared.config.cache_dir.clone(),
    };
    let id = format!("j-{}", shared.next_job.fetch_add(1, Ordering::SeqCst) + 1);
    shared.jobs.insert(JobRecord {
        id: id.clone(),
        service: slug.to_string(),
        phase: JobPhase::Queued,
        token: CancelToken::new(),
        deadline_ms,
        result_json: None,
        report: None,
        metrics_json: None,
        error: None,
    });
    match shared.queue.try_push(QueuedJob {
        id: id.clone(),
        request: job_request,
    }) {
        Ok(depth) => {
            obs::add(names::JOBS_SUBMITTED, 1);
            let doc = Json::obj()
                .with("jobId", Json::str(id))
                .with("queueDepth", Json::int(depth as i64));
            Response::json(202, doc.to_pretty_string())
        }
        Err(PushError::Full) => {
            shared.jobs.remove(&id);
            obs::add(names::QUEUE_SHED, 1);
            Response::error(429, "queue full")
        }
        Err(PushError::Closed) => {
            shared.jobs.remove(&id);
            Response::error(503, "draining")
        }
    }
}

fn view_to_json(view: &JobView) -> Json {
    let mut doc = Json::obj()
        .with("jobId", Json::str(view.id.clone()))
        .with("service", Json::str(view.service.clone()))
        .with("state", Json::str(view.phase.label()))
        .with("deadlineMs", Json::int(view.deadline_ms as i64));
    match view.phase.exit_style() {
        Some(code) => doc.set("exitStyle", Json::int(i64::from(code))),
        None => doc.set("exitStyle", Json::Null),
    };
    match &view.error {
        Some(error) => doc.set("error", Json::str(error.clone())),
        None => doc.set("error", Json::Null),
    };
    doc
}

fn list_jobs(shared: &Arc<Shared>) -> Response {
    let jobs: Vec<Json> = shared.jobs.views().iter().map(view_to_json).collect();
    Response::json(
        200,
        Json::obj().with("jobs", Json::Arr(jobs)).to_pretty_string(),
    )
}

fn job_status(shared: &Arc<Shared>, id: &str) -> Response {
    let views = shared.jobs.views();
    match views.iter().find(|v| v.id == id) {
        Some(view) => Response::json(200, view_to_json(view).to_pretty_string()),
        None => Response::error(404, "no such job"),
    }
}

fn job_result(shared: &Arc<Shared>, id: &str) -> Response {
    let found = shared
        .jobs
        .with(id, |job| (job.phase, job.result_json.clone()));
    match found {
        None => Response::error(404, "no such job"),
        Some((phase, _)) if !phase.terminal() => {
            let doc = Json::obj()
                .with("error", Json::str("job not finished"))
                .with("state", Json::str(phase.label()));
            Response::json(409, doc.to_string())
        }
        Some((phase, Some(result))) => Response::json(phase.http_status(), result),
        Some((phase, None)) => Response::error(phase.http_status(), "job produced no document"),
    }
}

fn job_report(shared: &Arc<Shared>, id: &str) -> Response {
    let found = shared.jobs.with(id, |job| {
        (job.phase, job.report.clone(), job.metrics_json.clone())
    });
    match found {
        None => Response::error(404, "no such job"),
        Some((phase, _, _)) if !phase.terminal() => Response::error(409, "job not finished"),
        Some((_, Some(report), metrics)) => {
            let mut text = report;
            if let Some(metrics_json) = metrics {
                text.push_str("\nJob metrics:\n");
                text.push_str(&metrics_json);
                text.push('\n');
            }
            Response::text(200, text)
        }
        Some((phase, None, _)) => {
            Response::error(phase.http_status(), "job finished without a report")
        }
    }
}

fn shutdown(shared: &Arc<Shared>) -> Response {
    shared.draining.store(true, Ordering::SeqCst);
    obs::info("shutdown requested; draining", &[]);
    Response::json(
        202,
        Json::obj()
            .with("draining", Json::Bool(true))
            .to_pretty_string(),
    )
}
