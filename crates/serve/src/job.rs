//! The job table: every submitted job's state machine and results.
//!
//! State machine (DESIGN.md §9):
//!
//! ```text
//! Queued ──▶ Running ──▶ Done(Clean | Salvaged | Failed)
//!                  ├────▶ TimedOut     (deadline tripped a pipeline phase)
//!                  ├────▶ Cancelled    (drain cancelled the job)
//!                  └────▶ Panicked     (caught at the worker boundary)
//! ```
//!
//! Terminal phases map onto the batch CLI's exit-code contract (0 clean,
//! 2 salvaged, 1 hard failure) and onto HTTP statuses for the result
//! endpoint, so a scripted client can treat the daemon exactly like the
//! CLI.

use crate::names;
use diffaudit::salvage::RunStatus;
use diffaudit_obs as obs;
use diffaudit_util::cancel::CancelToken;
use std::sync::{Mutex, MutexGuard};

/// Where a job is in its lifecycle.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum JobPhase {
    /// Accepted, waiting for a worker.
    Queued,
    /// A worker is executing it.
    Running,
    /// The pipeline finished and the salvage policy judged the run.
    Done(RunStatus),
    /// The deadline expired mid-pipeline; no audit document.
    TimedOut,
    /// Cancelled (drain) before completing.
    Cancelled,
    /// The job panicked; caught at the worker boundary.
    Panicked,
}

impl JobPhase {
    /// Stable wire label for the status API.
    pub fn label(&self) -> &'static str {
        match self {
            JobPhase::Queued => "queued",
            JobPhase::Running => "running",
            JobPhase::Done(RunStatus::Clean) => "clean",
            JobPhase::Done(RunStatus::Salvaged) => "salvaged",
            JobPhase::Done(RunStatus::Failed) => "failed",
            JobPhase::TimedOut => "timed-out",
            JobPhase::Cancelled => "cancelled",
            JobPhase::Panicked => "panicked",
        }
    }

    /// Whether the job has reached a terminal phase.
    pub fn terminal(&self) -> bool {
        !matches!(self, JobPhase::Queued | JobPhase::Running)
    }

    /// HTTP status for `GET /api/v1/jobs/<id>/result`. Non-terminal
    /// phases answer `409` (result not ready).
    pub fn http_status(&self) -> u16 {
        match self {
            JobPhase::Queued | JobPhase::Running => 409,
            JobPhase::Done(RunStatus::Clean) => 200,
            JobPhase::Done(RunStatus::Salvaged) => 206,
            JobPhase::Done(RunStatus::Failed) => 422,
            JobPhase::TimedOut => 504,
            JobPhase::Cancelled => 503,
            JobPhase::Panicked => 500,
        }
    }

    /// The batch CLI's exit code for this outcome (`None` until terminal).
    pub fn exit_style(&self) -> Option<u8> {
        match self {
            JobPhase::Queued | JobPhase::Running => None,
            JobPhase::Done(status) => Some(status.exit_code()),
            JobPhase::TimedOut | JobPhase::Cancelled | JobPhase::Panicked => Some(1),
        }
    }
}

/// What a finished job hands back to the table.
#[derive(Debug)]
pub struct JobCompletion {
    /// Terminal phase.
    pub phase: JobPhase,
    /// The audit document (or an error document) as rendered JSON.
    pub result_json: String,
    /// Human-readable run report, when the job got far enough to render
    /// one.
    pub report: Option<String>,
    /// The job's private metrics snapshot as rendered JSON.
    pub metrics_json: Option<String>,
    /// Failure reason for non-clean terminal phases.
    pub error: Option<String>,
}

/// One job's full record.
#[derive(Debug)]
pub struct JobRecord {
    /// Job id (`j-1`, `j-2`, ...).
    pub id: String,
    /// Service slug under audit.
    pub service: String,
    /// Current phase.
    pub phase: JobPhase,
    /// Cooperative cancellation token; tripped by the drain protocol.
    pub token: CancelToken,
    /// Effective deadline in milliseconds.
    pub deadline_ms: u64,
    /// Rendered result document (terminal phases only).
    pub result_json: Option<String>,
    /// Rendered text report.
    pub report: Option<String>,
    /// Rendered per-job metrics snapshot.
    pub metrics_json: Option<String>,
    /// Failure reason.
    pub error: Option<String>,
}

/// A cheap copy of the status fields, for list/status endpoints.
#[derive(Debug, Clone)]
pub struct JobView {
    /// Job id.
    pub id: String,
    /// Service slug.
    pub service: String,
    /// Current phase.
    pub phase: JobPhase,
    /// Failure reason, if any.
    pub error: Option<String>,
    /// Effective deadline in milliseconds.
    pub deadline_ms: u64,
}

/// Shared, insertion-ordered job registry.
pub struct JobTable {
    jobs: Mutex<Vec<JobRecord>>,
}

impl Default for JobTable {
    fn default() -> Self {
        JobTable::new()
    }
}

impl JobTable {
    /// An empty table.
    pub fn new() -> JobTable {
        JobTable {
            jobs: Mutex::new(Vec::new()),
        }
    }

    fn lock(&self) -> MutexGuard<'_, Vec<JobRecord>> {
        match self.jobs.lock() {
            Ok(guard) => guard,
            Err(poisoned) => poisoned.into_inner(),
        }
    }

    /// Register a freshly queued job.
    pub fn insert(&self, record: JobRecord) {
        self.lock().push(record);
    }

    /// Remove a job (submission was shed after registration). Returns
    /// whether it existed.
    pub fn remove(&self, id: &str) -> bool {
        let mut jobs = self.lock();
        let before = jobs.len();
        jobs.retain(|j| j.id != id);
        jobs.len() != before
    }

    /// Transition a job to `Running` and hand back its cancel token.
    /// `None` if the job vanished (shed race).
    ///
    /// The in-flight gauge moves inside the table lock on the same
    /// transitions that define "in flight" (`Queued → Running` here,
    /// `Running → terminal` in [`complete`](JobTable::complete)), so the
    /// gauge can never disagree with what the state machine would report.
    pub fn begin(&self, id: &str) -> Option<CancelToken> {
        let mut jobs = self.lock();
        let job = jobs.iter_mut().find(|j| j.id == id)?;
        if job.phase == JobPhase::Queued {
            obs::gauge_add(names::JOBS_IN_FLIGHT, 1);
        }
        job.phase = JobPhase::Running;
        Some(job.token.clone())
    }

    /// Record a terminal outcome.
    pub fn complete(&self, id: &str, completion: JobCompletion) {
        let mut jobs = self.lock();
        if let Some(job) = jobs.iter_mut().find(|j| j.id == id) {
            if job.phase == JobPhase::Running && completion.phase.terminal() {
                obs::gauge_sub(names::JOBS_IN_FLIGHT, 1);
            }
            job.phase = completion.phase;
            job.result_json = Some(completion.result_json);
            job.report = completion.report;
            job.metrics_json = completion.metrics_json;
            job.error = completion.error;
        }
    }

    /// Status snapshot of every job, insertion order.
    pub fn views(&self) -> Vec<JobView> {
        self.lock()
            .iter()
            .map(|j| JobView {
                id: j.id.clone(),
                service: j.service.clone(),
                phase: j.phase,
                error: j.error.clone(),
                deadline_ms: j.deadline_ms,
            })
            .collect()
    }

    /// Run `f` against one job's record.
    pub fn with<R>(&self, id: &str, f: impl FnOnce(&JobRecord) -> R) -> Option<R> {
        let jobs = self.lock();
        jobs.iter().find(|j| j.id == id).map(f)
    }

    /// Jobs not yet in a terminal phase.
    pub fn unfinished(&self) -> usize {
        self.lock().iter().filter(|j| !j.phase.terminal()).count()
    }

    /// Jobs in a terminal phase.
    pub fn finished(&self) -> usize {
        self.lock().iter().filter(|j| j.phase.terminal()).count()
    }

    /// Cancel tokens of every non-terminal job (the drain protocol's
    /// cancellation phase).
    pub fn active_tokens(&self) -> Vec<CancelToken> {
        self.lock()
            .iter()
            .filter(|j| !j.phase.terminal())
            .map(|j| j.token.clone())
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn record(id: &str) -> JobRecord {
        JobRecord {
            id: id.to_string(),
            service: "tiktok".to_string(),
            phase: JobPhase::Queued,
            token: CancelToken::new(),
            deadline_ms: 1000,
            result_json: None,
            report: None,
            metrics_json: None,
            error: None,
        }
    }

    #[test]
    fn phase_contract_matches_cli_exit_codes() {
        assert_eq!(JobPhase::Done(RunStatus::Clean).http_status(), 200);
        assert_eq!(JobPhase::Done(RunStatus::Clean).exit_style(), Some(0));
        assert_eq!(JobPhase::Done(RunStatus::Salvaged).http_status(), 206);
        assert_eq!(JobPhase::Done(RunStatus::Salvaged).exit_style(), Some(2));
        assert_eq!(JobPhase::Done(RunStatus::Failed).http_status(), 422);
        assert_eq!(JobPhase::Done(RunStatus::Failed).exit_style(), Some(1));
        assert_eq!(JobPhase::TimedOut.http_status(), 504);
        assert_eq!(JobPhase::Panicked.http_status(), 500);
        assert_eq!(JobPhase::Cancelled.http_status(), 503);
        assert!(!JobPhase::Running.terminal());
        assert_eq!(JobPhase::Running.exit_style(), None);
    }

    #[test]
    fn lifecycle_queued_running_done() {
        let table = JobTable::new();
        table.insert(record("j-1"));
        assert_eq!(table.unfinished(), 1);
        let token = table.begin("j-1").expect("job exists");
        assert!(!token.is_cancelled());
        table.complete(
            "j-1",
            JobCompletion {
                phase: JobPhase::Done(RunStatus::Clean),
                result_json: "{}".to_string(),
                report: Some("report".to_string()),
                metrics_json: None,
                error: None,
            },
        );
        assert_eq!(table.unfinished(), 0);
        assert_eq!(table.finished(), 1);
        let phase = table.with("j-1", |j| j.phase).expect("job exists");
        assert_eq!(phase, JobPhase::Done(RunStatus::Clean));
        assert!(table.active_tokens().is_empty());
    }

    #[test]
    fn remove_reverses_a_shed_registration() {
        let table = JobTable::new();
        table.insert(record("j-1"));
        assert!(table.remove("j-1"));
        assert!(!table.remove("j-1"));
        assert!(table.views().is_empty());
    }
}
