//! A tiny blocking HTTP/1.1 client for exercising the daemon.
//!
//! Shared by the integration tests, the `serve_load` bench harness, and
//! the check-script smoke step, so they all speak to the daemon the same
//! way a scripted curl user would: one request per connection,
//! `Connection: close`, read to EOF.

use std::io::{Read, Write};
use std::net::TcpStream;
use std::time::Duration;

/// Per-request socket timeout — a wedged daemon should fail the caller,
/// not hang it.
const CLIENT_TIMEOUT: Duration = Duration::from_secs(30);

/// Send one request; return `(status, body)`.
pub fn request(
    addr: &str,
    method: &str,
    path: &str,
    body: &[u8],
) -> std::io::Result<(u16, Vec<u8>)> {
    let mut stream = TcpStream::connect(addr)?;
    stream.set_read_timeout(Some(CLIENT_TIMEOUT))?;
    stream.set_write_timeout(Some(CLIENT_TIMEOUT))?;
    let head = format!(
        "{method} {path} HTTP/1.1\r\nHost: {addr}\r\nContent-Length: {}\r\nConnection: close\r\n\r\n",
        body.len(),
    );
    // A server that rejects the request early (e.g. 413 on an oversized
    // declared body) may respond and close before the body is fully
    // written; the write error is then expected, and the response on the
    // read side is the authoritative outcome.
    let write_result = stream
        .write_all(head.as_bytes())
        .and_then(|()| stream.write_all(body))
        .and_then(|()| stream.flush());

    let mut raw = Vec::new();
    match stream.read_to_end(&mut raw) {
        Ok(_) => {}
        Err(e) if !raw.is_empty() => {
            // Partial response then reset: parse what arrived.
            let _ = e;
        }
        Err(e) => return Err(write_result.err().unwrap_or(e)),
    }
    if raw.is_empty() {
        return Err(write_result.err().unwrap_or_else(|| {
            std::io::Error::new(std::io::ErrorKind::UnexpectedEof, "empty response")
        }));
    }
    parse_response(&raw)
}

/// Convenience wrapper asserting the body is UTF-8.
pub fn request_text(
    addr: &str,
    method: &str,
    path: &str,
    body: &[u8],
) -> std::io::Result<(u16, String)> {
    let (status, bytes) = request(addr, method, path, body)?;
    match String::from_utf8(bytes) {
        Ok(text) => Ok((status, text)),
        Err(_) => Err(std::io::Error::new(
            std::io::ErrorKind::InvalidData,
            "response body is not UTF-8",
        )),
    }
}

/// Advance an `obs tail` event-ring cursor given the cursor a poll
/// returned. Normally the server cursor only moves forward; a server
/// cursor *below* ours means the daemon restarted and its ring sequence
/// reset, so the client must resync to the new head instead of polling
/// past it forever. Returns `(next_cursor, resynced)`.
pub fn next_cursor(current: u64, server: u64) -> (u64, bool) {
    if server < current {
        (server, true)
    } else {
        (server, false)
    }
}

fn bad(msg: &str) -> std::io::Error {
    std::io::Error::new(std::io::ErrorKind::InvalidData, msg.to_string())
}

fn parse_response(raw: &[u8]) -> std::io::Result<(u16, Vec<u8>)> {
    let split = raw
        .windows(4)
        .position(|w| w == b"\r\n\r\n")
        .ok_or_else(|| bad("no header terminator in response"))?;
    let head = std::str::from_utf8(&raw[..split]).map_err(|_| bad("response head not UTF-8"))?;
    let status_line = head.lines().next().ok_or_else(|| bad("empty response"))?;
    let status = status_line
        .split_whitespace()
        .nth(1)
        .and_then(|s| s.parse::<u16>().ok())
        .ok_or_else(|| bad("no status code in response"))?;
    Ok((status, raw[split + 4..].to_vec()))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_a_response() {
        let raw = b"HTTP/1.1 429 Too Many Requests\r\nContent-Length: 2\r\n\r\nhi";
        let (status, body) = parse_response(raw).expect("valid");
        assert_eq!(status, 429);
        assert_eq!(body, b"hi");
    }

    #[test]
    fn garbage_is_an_error_not_a_panic() {
        assert!(parse_response(b"not http at all").is_err());
        assert!(parse_response(b"HTTP/1.1\r\n\r\n").is_err());
    }

    #[test]
    fn cursor_advances_forward_and_resyncs_on_regression() {
        assert_eq!(next_cursor(0, 0), (0, false));
        assert_eq!(next_cursor(3, 7), (7, false));
        assert_eq!(next_cursor(7, 7), (7, false));
        // Daemon restarted: ring sequence reset below ours.
        assert_eq!(next_cursor(7, 0), (0, true));
        assert_eq!(next_cursor(7, 2), (2, true));
    }
}
