//! The daemon's metric-name registry.
//!
//! Every metric the daemon emits is declared here as a `&'static str`
//! constant (or selected from a closed match over such constants), so the
//! full set of series the daemon can produce is auditable in one file and
//! the analyzer's `metric-discipline` pass can verify no call site builds
//! a name dynamically. Labeled series use the in-name label encoding the
//! exposition renderer understands: `base{k="v",...}`.

/// Total HTTP requests routed (counter).
pub const HTTP_REQUESTS: &str = "serve.http.requests";

/// Access span entered around each routed request.
pub const HTTP_SPAN: &str = "serve.http.request";

/// Sliding-window HTTP request series (1m/5m rates).
pub const HTTP_REQUESTS_WINDOW: &str = "serve.http.requests.window";

/// Sliding-window HTTP latency series (window quantiles + rates).
pub const HTTP_LATENCY_WINDOW: &str = "serve.http.latency.window.us";

/// Jobs accepted onto the queue (counter).
pub const JOBS_SUBMITTED: &str = "serve.jobs.submitted";

/// Jobs that reached a terminal phase via a worker (counter).
pub const JOBS_FINISHED: &str = "serve.jobs.finished";

/// Jobs whose panic was contained at the worker boundary (counter).
pub const JOBS_PANICKED: &str = "serve.jobs.panicked";

/// Trace artifacts uploaded (counter).
pub const TRACES_UPLOADED: &str = "serve.traces.uploaded";

/// Submissions shed with `429 queue full` (counter). The serve
/// integration tests assert this equals the number of observed 429s.
pub const QUEUE_SHED: &str = "serve.queue.shed";

/// Current bounded-queue depth (gauge, authoritative writer: the queue).
pub const QUEUE_DEPTH: &str = "serve.queue.depth";

/// Jobs between `begin` and `complete` (gauge, written by the job table).
pub const JOBS_IN_FLIGHT: &str = "serve.jobs.in_flight";

/// Workers currently executing a job (gauge, written by the worker loop).
pub const WORKERS_BUSY: &str = "serve.workers.busy";

/// Process resident-set size in bytes (gauge, written by the `obs::res`
/// sampler the daemon starts at boot). Exposes on `GET /metrics` as
/// `diffaudit_process_resident_bytes`.
pub const PROCESS_RSS: &str = diffaudit_obs::res::PROCESS_RSS_GAUGE;

/// Cumulative process CPU time in microseconds (gauge, same writer). The
/// exposition renderer re-exports it as the counter
/// `diffaudit_process_cpu_seconds_total`.
pub const PROCESS_CPU_US: &str = diffaudit_obs::res::PROCESS_CPU_US_GAUGE;

/// Per-endpoint × status-class request latency histogram name. A closed
/// match over static literals: unknown paths and statuses collapse into
/// `other`, so the series set stays bounded no matter what clients send.
pub fn http_latency(endpoint: &str, status: u16) -> &'static str {
    macro_rules! by_status {
        ($e2:literal, $e4:literal, $e5:literal, $eo:literal) => {
            match status {
                200..=299 => $e2,
                400..=499 => $e4,
                500..=599 => $e5,
                _ => $eo,
            }
        };
    }
    match endpoint {
        "healthz" => by_status!(
            "serve.http.latency.us{endpoint=\"healthz\",status=\"2xx\"}",
            "serve.http.latency.us{endpoint=\"healthz\",status=\"4xx\"}",
            "serve.http.latency.us{endpoint=\"healthz\",status=\"5xx\"}",
            "serve.http.latency.us{endpoint=\"healthz\",status=\"other\"}"
        ),
        "metrics" => by_status!(
            "serve.http.latency.us{endpoint=\"metrics\",status=\"2xx\"}",
            "serve.http.latency.us{endpoint=\"metrics\",status=\"4xx\"}",
            "serve.http.latency.us{endpoint=\"metrics\",status=\"5xx\"}",
            "serve.http.latency.us{endpoint=\"metrics\",status=\"other\"}"
        ),
        "traces" => by_status!(
            "serve.http.latency.us{endpoint=\"traces\",status=\"2xx\"}",
            "serve.http.latency.us{endpoint=\"traces\",status=\"4xx\"}",
            "serve.http.latency.us{endpoint=\"traces\",status=\"5xx\"}",
            "serve.http.latency.us{endpoint=\"traces\",status=\"other\"}"
        ),
        "jobs" => by_status!(
            "serve.http.latency.us{endpoint=\"jobs\",status=\"2xx\"}",
            "serve.http.latency.us{endpoint=\"jobs\",status=\"4xx\"}",
            "serve.http.latency.us{endpoint=\"jobs\",status=\"5xx\"}",
            "serve.http.latency.us{endpoint=\"jobs\",status=\"other\"}"
        ),
        "events" => by_status!(
            "serve.http.latency.us{endpoint=\"events\",status=\"2xx\"}",
            "serve.http.latency.us{endpoint=\"events\",status=\"4xx\"}",
            "serve.http.latency.us{endpoint=\"events\",status=\"5xx\"}",
            "serve.http.latency.us{endpoint=\"events\",status=\"other\"}"
        ),
        "shutdown" => by_status!(
            "serve.http.latency.us{endpoint=\"shutdown\",status=\"2xx\"}",
            "serve.http.latency.us{endpoint=\"shutdown\",status=\"4xx\"}",
            "serve.http.latency.us{endpoint=\"shutdown\",status=\"5xx\"}",
            "serve.http.latency.us{endpoint=\"shutdown\",status=\"other\"}"
        ),
        _ => by_status!(
            "serve.http.latency.us{endpoint=\"other\",status=\"2xx\"}",
            "serve.http.latency.us{endpoint=\"other\",status=\"4xx\"}",
            "serve.http.latency.us{endpoint=\"other\",status=\"5xx\"}",
            "serve.http.latency.us{endpoint=\"other\",status=\"other\"}"
        ),
    }
}

/// Map a request path onto its endpoint class for [`http_latency`].
pub fn endpoint_class(segments: &[&str]) -> &'static str {
    match segments {
        ["healthz"] => "healthz",
        ["metrics"] | ["api", "v1", "metrics"] => "metrics",
        ["api", "v1", "traces", ..] => "traces",
        ["api", "v1", "jobs", ..] => "jobs",
        ["api", "v1", "events"] => "events",
        ["api", "v1", "shutdown"] => "shutdown",
        _ => "other",
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn latency_names_are_closed_over_endpoint_and_status() {
        assert_eq!(
            http_latency("jobs", 202),
            "serve.http.latency.us{endpoint=\"jobs\",status=\"2xx\"}"
        );
        assert_eq!(
            http_latency("jobs", 429),
            "serve.http.latency.us{endpoint=\"jobs\",status=\"4xx\"}"
        );
        assert_eq!(
            http_latency("nope", 500),
            "serve.http.latency.us{endpoint=\"other\",status=\"5xx\"}"
        );
        assert_eq!(
            http_latency("healthz", 101),
            "serve.http.latency.us{endpoint=\"healthz\",status=\"other\"}"
        );
    }

    #[test]
    fn endpoint_classes_cover_the_rest_surface() {
        assert_eq!(endpoint_class(&["healthz"]), "healthz");
        assert_eq!(endpoint_class(&["metrics"]), "metrics");
        assert_eq!(endpoint_class(&["api", "v1", "metrics"]), "metrics");
        assert_eq!(endpoint_class(&["api", "v1", "jobs", "j-1"]), "jobs");
        assert_eq!(endpoint_class(&["api", "v1", "traces"]), "traces");
        assert_eq!(endpoint_class(&["api", "v1", "events"]), "events");
        assert_eq!(endpoint_class(&["api", "v1", "shutdown"]), "shutdown");
        assert_eq!(endpoint_class(&["favicon.ico"]), "other");
    }
}
