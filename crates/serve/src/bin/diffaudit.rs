//! The `diffaudit` command-line tool.
//!
//! ```text
//! diffaudit generate --out DIR [--scale F] [--seed N] [--services a,b]
//!     Generate the synthetic capture campaign to disk (HAR/pcap/key-log
//!     artifacts plus per-service manifest.json).
//!
//! diffaudit audit DIR... [--ensemble SEED] [--threshold F]
//!                        [--format text|markdown|json] [--out FILE]
//!                        [--strict] [--max-drop PCT]
//!     Audit capture directories (each containing manifest.json). Works on
//!     generated captures AND on externally collected traces: drop your own
//!     .har / .pcap+.keys files next to a manifest and point the tool at it.
//!     Damaged records are skipped and tallied in a degradation ledger
//!     instead of aborting the audit; `--strict` turns any drop into a hard
//!     failure and `--max-drop PCT` bounds the tolerated drop percentage.
//!
//!     Exit codes: 0 = clean run, 1 = hard failure (unusable input, policy
//!     exceeded, bad usage), 2 = salvaged (audit produced, some records
//!     dropped).
//!
//! diffaudit serve [--port N] [--queue N] [--workers N] [--deadline-ms N]
//!                 [--drain-ms N] [--chaos]
//!     Run the audit daemon: upload traces and enqueue audit jobs over a
//!     local REST API (see DESIGN.md §9). Prints `listening on http://...`
//!     once bound (`--port 0` picks an ephemeral port). Bounded queueing
//!     sheds excess submissions with 429; every job runs under a deadline
//!     with cooperative cancellation; a panicking job is contained to its
//!     own record; `POST /api/v1/shutdown` drains gracefully. `--chaos`
//!     enables fault-injection job options (testing only). Exit codes:
//!     0 = clean drain, 1 = jobs orphaned at shutdown or bind failure.
//!
//! diffaudit classify KEY...
//!     Classify raw payload keys with the majority-vote ensemble.
//!
//! diffaudit ontology
//!     Print the COPPA/CCPA data-type ontology as JSON.
//!
//! diffaudit obs report TRACE.jsonl [--top K] [--resources]
//!     Analyze a `--trace-out` trace: reconstruct the span tree, attribute
//!     self vs. child time, and print the flame/critical-path report with
//!     the top-K self-time hotspots. `--resources` switches to the
//!     resource view: per-stage peak RSS, RSS delta, CPU seconds, and
//!     bytes-in throughput (requires a trace recorded under
//!     `--res-sample-ms`; otherwise reports resources unavailable).
//!     Malformed lines are skipped and counted (salvage-style). Exit
//!     codes: 0 = clean, 2 = report produced but some lines were skipped,
//!     1 = unusable input.
//!
//! diffaudit obs diff BASELINE.json CURRENT.json [--fail-over PCT]
//!                    [--fail-rss-over PCT] [--noise-floor-ms N]
//!     Diff two `--metrics-out` documents: per-stage wall-time deltas,
//!     counter deltas, bucket-derived p50/p90/p99 shifts, resource
//!     (peak-RSS) deltas, conservation checks, and an ok/regressed
//!     verdict. `--fail-over PCT` turns wall-time growth past PCT percent
//!     (and past the noise floor) into exit code 2, so CI can gate on a
//!     committed baseline; `--fail-rss-over PCT` gates peak-RSS growth the
//!     same way (4MiB noise floor). The wall-time noise floor is
//!     milliseconds (`--noise-floor-ms`, default 20ms, the same unit
//!     `serve_load --mode diff` uses; `--noise-floor-us` remains as a
//!     microsecond alias). Exit codes: 0 = ok, 2 = regressed, 1 = unusable
//!     input or bad usage.
//!
//! diffaudit obs top URL [--once] [--interval-ms N]
//!     Poll a running daemon's `GET /metrics` exposition endpoint and
//!     render a refreshing queue/worker/latency table to stderr. URL is
//!     `http://host:port` or bare `host:port`. Exit codes: 0 = clean
//!     (including the daemon draining away mid-watch), 2 = exposition
//!     stopped parsing after a successful poll, 1 = never connected.
//!
//! diffaudit obs tail URL [--once] [--interval-ms N] [--level warn|error]
//!     Stream the daemon's retained warn/error event ring
//!     (`GET /api/v1/events`) to stderr, following the ring cursor so each
//!     event prints once. Shares `obs top`'s exit contract.
//!
//! Global flags (any subcommand, stripped before dispatch):
//!   --threads N                         worker threads for the parallel
//!                                       pipeline stages (default: the
//!                                       machine's available parallelism;
//!                                       1 forces the serial path — output
//!                                       is byte-identical either way)
//!   --log-level error|warn|info|debug   stderr verbosity (default info)
//!   --trace-out FILE.jsonl              write a JSONL event/span trace
//!   --metrics-out FILE.json             write end-of-run metrics JSON
//!   --res-sample-ms N                   sample process RSS/CPU from /proc
//!                                       every N ms and attribute them to
//!                                       spans (Linux; elsewhere a warning)
//!   -v | --verbose                      debug level + pipeline run report
//!
//! Reports and exports go to stdout / `--out`; observability goes to stderr
//! and the trace/metrics files, so enabling it never perturbs the audit
//! output. The exit-code contract above is likewise unchanged.
//! ```

use diffaudit::audit::{audit_service, AuditFinding};
use diffaudit::diff::ObservedGrid;
use diffaudit::export;
use diffaudit::loader::{load_capture_dir_salvage_threads, write_dataset};
use diffaudit::pipeline::{ClassificationMode, Pipeline};
use diffaudit::report;
use diffaudit::salvage::{cache_ledger, DegradationLedger, RunStatus, SalvagePolicy};
use diffaudit_json::Json;
use diffaudit_nettrace::salvage::Stage;
use diffaudit_obs as obs;
use diffaudit_serve::{ServeConfig, Server};
use diffaudit_services::{generate_dataset_threads, service_by_slug, DatasetOptions};
use std::path::PathBuf;
use std::process::ExitCode;

fn usage() -> ExitCode {
    obs::write_stderr_block(
        "usage:\n  diffaudit generate --out DIR [--scale F] [--seed N] [--services a,b]\n  \
         diffaudit audit DIR... [--ensemble SEED] [--threshold F] [--cache-dir DIR] [--format text|markdown|json] [--out FILE] [--strict] [--max-drop PCT]\n  \
         diffaudit serve [--port N] [--queue N] [--workers N] [--deadline-ms N] [--drain-ms N] [--cache-dir DIR] [--chaos]\n  \
         diffaudit classify KEY...\n  diffaudit ontology\n  \
         diffaudit obs report TRACE.jsonl [--top K] [--resources]\n  \
         diffaudit obs diff BASELINE.json CURRENT.json [--fail-over PCT] [--fail-rss-over PCT] [--noise-floor-ms N]\n  \
         diffaudit obs top URL [--once] [--interval-ms N]\n  \
         diffaudit obs tail URL [--once] [--interval-ms N] [--level warn|error]\n\
         global flags: [--threads N] [--log-level error|warn|info|debug] [--trace-out FILE.jsonl] [--metrics-out FILE.json] [--res-sample-ms N] [-v|--verbose]\n",
    );
    // Exit-code contract: 1 = hard failure (2 means salvaged-with-drops).
    ExitCode::from(1)
}

/// What the observability flags asked for beyond recorder configuration.
struct ObsOptions {
    metrics_out: Option<PathBuf>,
    verbose: bool,
    /// Worker threads from `--threads` (default: the machine's available
    /// parallelism). Passed explicitly to every parallel stage — there is
    /// no process-global thread default to set.
    threads: usize,
}

/// Strip the global observability flags from the argument list and
/// configure the process-global recorder. Returns the remaining arguments
/// plus the end-of-run options, or `Err` with a message on a bad value.
fn setup_obs(args: Vec<String>) -> Result<(Vec<String>, ObsOptions), String> {
    let mut rest = Vec::with_capacity(args.len());
    let mut level: Option<obs::Level> = None;
    let mut trace_out: Option<PathBuf> = None;
    let mut metrics_out: Option<PathBuf> = None;
    let mut verbose = false;
    let mut threads = diffaudit_util::par::available_threads();
    let mut res_sample_ms: Option<u64> = None;
    let mut iter = args.into_iter();
    while let Some(arg) = iter.next() {
        match arg.as_str() {
            "--log-level" => match iter.next().as_deref().and_then(obs::Level::parse) {
                Some(l) => level = Some(l),
                None => return Err("--log-level takes error|warn|info|debug".into()),
            },
            "--trace-out" => match iter.next() {
                Some(path) => trace_out = Some(PathBuf::from(path)),
                None => return Err("--trace-out takes a file path".into()),
            },
            "--metrics-out" => match iter.next() {
                Some(path) => metrics_out = Some(PathBuf::from(path)),
                None => return Err("--metrics-out takes a file path".into()),
            },
            "--threads" => match iter.next().and_then(|v| v.parse::<usize>().ok()) {
                Some(n) if n >= 1 => threads = n,
                _ => return Err("--threads takes a positive integer".into()),
            },
            "--res-sample-ms" => match iter.next().and_then(|v| v.parse::<u64>().ok()) {
                Some(ms) if ms >= 1 => res_sample_ms = Some(ms),
                _ => return Err("--res-sample-ms takes a positive integer".into()),
            },
            "-v" | "--verbose" => verbose = true,
            _ => rest.push(arg),
        }
    }
    // The CLI is operator-facing: progress lines (info) show by default,
    // -v raises to debug, an explicit --log-level always wins.
    let effective = level.unwrap_or(if verbose {
        obs::Level::Debug
    } else {
        obs::Level::Info
    });
    obs::global().configure(obs::ObsConfig {
        level: Some(effective),
        stderr: Some(true),
        trace: None,
    });
    if let Some(path) = &trace_out {
        obs::global()
            .trace_to_file(path)
            .map_err(|e| format!("cannot open trace file {}: {e}", path.display()))?;
    }
    // Resource profiling writes to stderr/trace/metrics only, so enabling
    // it never perturbs a subcommand's stdout. Without `/proc` (non-Linux)
    // the flag degrades to a warning instead of failing the run.
    if let Some(ms) = res_sample_ms {
        if !obs::enable_resources(std::time::Duration::from_millis(ms)) {
            obs::warn(
                "resources unavailable (/proc not readable); --res-sample-ms ignored",
                &[],
            );
        }
    }
    Ok((
        rest,
        ObsOptions {
            metrics_out,
            verbose,
            threads,
        },
    ))
}

/// End-of-run: flush the trace, write the metrics document, and print the
/// pipeline run report when `-v` asked for it.
fn finish_obs(options: &ObsOptions) {
    obs::flush();
    let snapshot = obs::snapshot();
    if let Some(path) = &options.metrics_out {
        let doc = snapshot.to_json().to_pretty_string();
        match std::fs::write(path, doc) {
            Ok(()) => obs::debug(
                "metrics written",
                &[obs::field("path", path.display().to_string())],
            ),
            Err(e) => obs::error(
                "failed to write metrics",
                &[
                    obs::field("path", path.display().to_string()),
                    obs::field("reason", e.to_string()),
                ],
            ),
        }
    }
    if options.verbose {
        obs::write_stderr_block(&obs::render_run_report(&snapshot));
    }
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let (args, obs_options) = match setup_obs(args) {
        Ok(v) => v,
        Err(msg) => {
            obs::error(&msg, &[]);
            return usage();
        }
    };
    let code = match args.first().map(String::as_str) {
        Some("generate") => cmd_generate(&args[1..], obs_options.threads),
        Some("audit") => cmd_audit(&args[1..], obs_options.threads),
        Some("serve") => cmd_serve(&args[1..], obs_options.threads),
        Some("classify") => cmd_classify(&args[1..], obs_options.threads),
        Some("ontology") => cmd_ontology(),
        Some("obs") => cmd_obs(&args[1..]),
        _ => usage(),
    };
    finish_obs(&obs_options);
    code
}

fn cmd_serve(args: &[String], threads: usize) -> ExitCode {
    // The global --threads flag sizes each job's pipeline parallelism;
    // --workers sizes how many jobs run at once.
    let mut config = ServeConfig {
        threads_per_job: threads,
        ..ServeConfig::default()
    };
    let mut iter = args.iter();
    while let Some(flag) = iter.next() {
        match flag.as_str() {
            "--port" => match iter.next().and_then(|v| v.parse().ok()) {
                Some(v) => config.port = v,
                None => return usage(),
            },
            "--queue" => match iter.next().and_then(|v| v.parse().ok()) {
                Some(v) if v >= 1 => config.queue_capacity = v,
                _ => return usage(),
            },
            "--workers" => match iter.next().and_then(|v| v.parse().ok()) {
                Some(v) if v >= 1 => config.workers = v,
                _ => return usage(),
            },
            "--deadline-ms" => match iter.next().and_then(|v| v.parse().ok()) {
                Some(v) if v >= 1 => config.default_deadline_ms = v,
                _ => return usage(),
            },
            "--drain-ms" => match iter.next().and_then(|v| v.parse().ok()) {
                Some(v) => config.drain_deadline_ms = v,
                None => return usage(),
            },
            "--cache-dir" => match iter.next() {
                Some(v) => config.cache_dir = Some(PathBuf::from(v)),
                None => return usage(),
            },
            "--chaos" => config.enable_chaos = true,
            _ => return usage(),
        }
    }
    // The daemon always samples its own RSS/CPU so `GET /metrics` exports
    // `diffaudit_process_resident_bytes` / `diffaudit_process_cpu_seconds_total`
    // and `obs top` can show a resources row. Idempotent if the global
    // `--res-sample-ms` flag already started the sampler; on a box without
    // `/proc` the daemon runs without the two series.
    if !obs::enable_resources(std::time::Duration::from_millis(250)) {
        obs::debug(
            "resources unavailable; process RSS/CPU series disabled",
            &[],
        );
    }
    let server = match Server::bind(config) {
        Ok(server) => server,
        Err(e) => {
            obs::error("bind failed", &[obs::field("reason", e.to_string())]);
            return ExitCode::from(1);
        }
    };
    match server.addr() {
        Ok(addr) => {
            // The one stdout line: scripts scrape the address (check.sh
            // boots on --port 0 and reads the ephemeral port from here).
            println!("listening on http://{addr}");
            use std::io::Write as _;
            let _ = std::io::stdout().flush();
        }
        Err(e) => {
            obs::error("no local addr", &[obs::field("reason", e.to_string())]);
            return ExitCode::from(1);
        }
    }
    let exit = server.run();
    obs::info(
        "daemon stopped",
        &[
            obs::field("jobsFinished", exit.jobs_finished),
            obs::field("orphaned", exit.orphaned),
        ],
    );
    if exit.orphaned == 0 {
        ExitCode::from(0)
    } else {
        ExitCode::from(1)
    }
}

fn cmd_generate(args: &[String], threads: usize) -> ExitCode {
    let mut out: Option<PathBuf> = None;
    let mut options = DatasetOptions {
        volume_scale: 0.1,
        ..Default::default()
    };
    let mut iter = args.iter();
    while let Some(flag) = iter.next() {
        match flag.as_str() {
            "--out" => out = iter.next().map(PathBuf::from),
            "--scale" => match iter.next().and_then(|v| v.parse().ok()) {
                Some(v) => options.volume_scale = v,
                None => return usage(),
            },
            "--seed" => match iter.next().and_then(|v| v.parse().ok()) {
                Some(v) => options.seed = v,
                None => return usage(),
            },
            "--services" => match iter.next() {
                Some(list) => {
                    options.services = list.split(',').map(str::to_string).collect();
                }
                None => return usage(),
            },
            _ => return usage(),
        }
    }
    let Some(out) = out else {
        return usage();
    };
    obs::info(
        "generating dataset",
        &[
            obs::field("scale", options.volume_scale),
            obs::field("seed", options.seed),
        ],
    );
    let gen_span = obs::span("generate");
    let dataset = generate_dataset_threads(&options, threads);
    gen_span.finish();
    let write_span = obs::span("generate.write");
    let written = write_dataset(&dataset, &out);
    write_span.finish();
    match written {
        Ok(dirs) => {
            // Ground truth alongside, for oracle-mode audits and classifier
            // validation.
            let truth = Json::Obj(
                dataset
                    .key_truth
                    .iter()
                    .map(|(k, v)| (k.clone(), Json::str(v.label())))
                    .collect(),
            );
            let truth_path = out.join("key_truth.json");
            if let Err(e) = std::fs::write(&truth_path, truth.to_string()) {
                obs::error(
                    "failed to write ground truth",
                    &[
                        obs::field("path", truth_path.display().to_string()),
                        obs::field("reason", e.to_string()),
                    ],
                );
                return ExitCode::FAILURE;
            }
            for dir in &dirs {
                println!("{}", dir.display());
            }
            println!("{}", truth_path.display());
            ExitCode::SUCCESS
        }
        Err(e) => {
            obs::error(&e.to_string(), &[]);
            ExitCode::FAILURE
        }
    }
}

fn cmd_audit(args: &[String], threads: usize) -> ExitCode {
    let mut dirs: Vec<PathBuf> = Vec::new();
    let mut seed = 2023u64;
    let mut threshold = 0.8f64;
    let mut format = "text".to_string();
    let mut out_file: Option<PathBuf> = None;
    let mut cache_dir: Option<PathBuf> = None;
    let mut policy = SalvagePolicy::default();
    let mut iter = args.iter();
    while let Some(arg) = iter.next() {
        match arg.as_str() {
            "--ensemble" => match iter.next().and_then(|v| v.parse().ok()) {
                Some(v) => seed = v,
                None => return usage(),
            },
            "--threshold" => match iter.next().and_then(|v| v.parse().ok()) {
                Some(v) => threshold = v,
                None => return usage(),
            },
            "--format" => match iter.next() {
                Some(v) if ["text", "markdown", "json"].contains(&v.as_str()) => {
                    format = v.clone();
                }
                _ => return usage(),
            },
            "--out" => out_file = iter.next().map(PathBuf::from),
            "--cache-dir" => match iter.next() {
                Some(v) => cache_dir = Some(PathBuf::from(v)),
                None => return usage(),
            },
            "--strict" => policy.strict = true,
            "--max-drop" => match iter.next().and_then(|v| v.parse::<f64>().ok()) {
                Some(pct) if (0.0..=100.0).contains(&pct) => {
                    policy.max_drop_fraction = Some(pct / 100.0);
                }
                _ => return usage(),
            },
            other if !other.starts_with('-') => dirs.push(PathBuf::from(other)),
            _ => return usage(),
        }
    }
    if dirs.is_empty() {
        return usage();
    }

    let audit_span = obs::span("audit");
    let load_span = obs::span("audit.load");
    let mut inputs = Vec::new();
    let mut ledger = DegradationLedger::new();
    for dir in &dirs {
        match load_capture_dir_salvage_threads(dir, threads) {
            Ok((input, service_ledger)) => {
                let dropped = service_ledger.merged().total_dropped();
                let mut fields = vec![
                    obs::field("service", input.name.as_str()),
                    obs::field("units", input.units.len()),
                    obs::field("dir", dir.display().to_string()),
                ];
                if dropped > 0 {
                    fields.push(obs::field("dropped", dropped));
                }
                obs::info("loaded capture directory", &fields);
                inputs.push(input);
                ledger.services.push(service_ledger);
            }
            Err(e) => {
                obs::error(&e.to_string(), &[]);
                return ExitCode::FAILURE;
            }
        }
    }
    load_span.finish();

    // Mirror the degradation ledger into the metrics registry so the
    // `--metrics-out` document is conservation-checkable against the
    // ledger: for every stage,
    //   counters["salvage.<stage>.processed"] == ledger processed
    //   counters["salvage.<stage>.dropped"]   == ledger dropped.
    for (stage, counts) in ledger.merged().stages() {
        let label = stage.label();
        // lint:allow(metric-discipline): `salvage.<stage>.*` is a closed
        // family — `stage` ranges over the ledger's fixed stage enum.
        obs::add(
            &format!("{}{label}.processed", obs::SALVAGE_PREFIX),
            counts.processed,
        );
        // lint:allow(metric-discipline): closed family, same as above.
        obs::add(
            &format!("{}{label}.dropped", obs::SALVAGE_PREFIX),
            counts.dropped,
        );
    }

    let status = policy.evaluate(&ledger);
    if status == RunStatus::Failed {
        obs::error(
            "degradation exceeds policy",
            &[
                obs::field("dropped", ledger.total_dropped()),
                obs::field("dropPct", ledger.drop_fraction() * 100.0),
                obs::field("strict", policy.strict),
            ],
        );
        obs::write_stderr_block(&report::render_degradation(&ledger));
        return ExitCode::FAILURE;
    }

    let mut pipeline =
        Pipeline::new(ClassificationMode::Ensemble { seed, threshold }).with_threads(threads);
    if let Some(dir) = &cache_dir {
        pipeline = pipeline.with_cache_dir(dir.clone());
    }
    let outcome = pipeline.run_inputs(inputs);

    // Cache salvage (damaged log records skipped on open) degrades the run
    // the same way damaged input does: account it in the ledger, mirror the
    // counters, and let the policy re-judge the status.
    let status = match outcome.cache.as_ref() {
        Some(cache_report) if !cache_report.damage.is_empty() => {
            let cache_service = cache_ledger(cache_report);
            let counts = cache_service.merged().stage(Stage::Cache);
            obs::add("salvage.cache.processed", counts.processed);
            obs::add("salvage.cache.dropped", counts.dropped);
            ledger.services.push(cache_service);
            let status = policy.evaluate(&ledger);
            if status == RunStatus::Failed {
                obs::error(
                    "degradation exceeds policy",
                    &[
                        obs::field("dropped", ledger.total_dropped()),
                        obs::field("dropPct", ledger.drop_fraction() * 100.0),
                        obs::field("strict", policy.strict),
                    ],
                );
                obs::write_stderr_block(&report::render_degradation(&ledger));
                return ExitCode::FAILURE;
            }
            status
        }
        _ => status,
    };

    // Findings need a policy; catalog services get their real one, unknown
    // services get the flow/linkability analyses without policy rules.
    let findings_span = obs::span("audit.findings");
    let mut findings: Vec<AuditFinding> = Vec::new();
    for service in &outcome.services {
        if let Some(spec) = service_by_slug(&service.slug) {
            findings.extend(audit_service(service, &spec));
        } else {
            obs::warn(
                "service not in catalog; policy-consistency rules skipped",
                &[obs::field("service", service.name.as_str())],
            );
        }
    }
    findings_span.finish();
    obs::add("audit.findings", findings.len() as u64);

    // The degradation section appears only on salvaged runs, so a clean
    // run's output is byte-identical to the pre-salvage tool's.
    let render_span = obs::span("audit.render");
    let rendered = match format.as_str() {
        "json" => {
            export::outcome_to_json_with_ledger(&outcome, &findings, &ledger).to_pretty_string()
        }
        "markdown" => {
            let mut doc = outcome
                .services
                .iter()
                .map(|s| {
                    let service_findings: Vec<AuditFinding> = findings
                        .iter()
                        .filter(|f| f.service == s.name)
                        .cloned()
                        .collect();
                    export::service_to_markdown(s, &service_findings)
                })
                .collect::<Vec<_>>()
                .join("\n---\n\n");
            if status != RunStatus::Clean {
                doc.push_str("\n## Degradation\n\n```\n");
                doc.push_str(&report::render_degradation(&ledger));
                doc.push_str("```\n");
            }
            doc
        }
        _ => {
            let mut text = String::new();
            for service in &outcome.services {
                let grid = ObservedGrid::build(service);
                text.push_str(&report::render_table4(service, &grid));
                text.push('\n');
            }
            text.push_str(&report::render_fig3(&outcome));
            text.push('\n');
            text.push_str("Findings:\n");
            text.push_str(&report::render_findings(&findings));
            if status != RunStatus::Clean {
                text.push('\n');
                text.push_str(&report::render_degradation(&ledger));
            }
            text
        }
    };
    render_span.finish();
    audit_span.finish();
    match out_file {
        Some(path) => {
            if let Err(e) = std::fs::write(&path, rendered) {
                obs::error(
                    "failed to write report",
                    &[
                        obs::field("path", path.display().to_string()),
                        obs::field("reason", e.to_string()),
                    ],
                );
                return ExitCode::FAILURE;
            }
            obs::info(
                "wrote report",
                &[obs::field("path", path.display().to_string())],
            );
        }
        None => print!("{rendered}"),
    }
    if status != RunStatus::Clean {
        obs::warn(
            "salvaged run; exit code 2",
            &[
                obs::field("dropped", ledger.total_dropped()),
                obs::field("dropPct", ledger.drop_fraction() * 100.0),
            ],
        );
    }
    ExitCode::from(status.exit_code())
}

fn cmd_classify(args: &[String], threads: usize) -> ExitCode {
    if args.is_empty() {
        return usage();
    }
    use diffaudit_classifier::{ConfidenceAggregation, MajorityEnsemble};
    let _span = obs::span("classify");
    let ensemble = MajorityEnsemble::new(2023, ConfidenceAggregation::Average);
    let refs: Vec<&str> = args.iter().map(String::as_str).collect();
    for result in ensemble.classify_batch_threads(&refs, threads) {
        match result.category {
            Some(category) => println!(
                "{} // {} // {:.2} // {}",
                result.input,
                category.label(),
                result.confidence,
                result.explanation
            ),
            None => println!(
                "{} // (unlabeled) // 0.00 // {}",
                result.input, result.explanation
            ),
        }
    }
    ExitCode::SUCCESS
}

/// The `obs` subcommand family: trace analysis and metrics diffing — the
/// consumption half of the observability stack.
fn cmd_obs(args: &[String]) -> ExitCode {
    match args.first().map(String::as_str) {
        Some("report") => cmd_obs_report(&args[1..]),
        Some("diff") => cmd_obs_diff(&args[1..]),
        Some("top") => cmd_obs_top(&args[1..]),
        Some("tail") => cmd_obs_tail(&args[1..]),
        _ => usage(),
    }
}

/// Normalize an `obs top`/`obs tail` target (`http://host:port` or bare
/// `host:port`) into a socket address string for the client module.
fn parse_target(url: &str) -> String {
    let stripped = url.strip_prefix("http://").unwrap_or(url);
    stripped.trim_end_matches('/').to_string()
}

/// Human-readable microsecond duration for the live views.
fn human_us(us: f64) -> String {
    if us < 1_000.0 {
        format!("{us:.0}us")
    } else if us < 1_000_000.0 {
        format!("{:.1}ms", us / 1_000.0)
    } else {
        format!("{:.2}s", us / 1_000_000.0)
    }
}

/// Shared polling state for the live views' exit contract: 0 = clean
/// (including the daemon going away after at least one successful poll),
/// 2 = the endpoint answered but the payload was malformed after at least
/// one success, 1 = never reached a usable endpoint.
struct PollOutcome {
    successes: u64,
}

impl PollOutcome {
    fn new() -> PollOutcome {
        PollOutcome { successes: 0 }
    }

    fn transport_failed(&self, context: &str) -> ExitCode {
        if self.successes > 0 {
            obs::info("daemon went away; exiting", &[obs::field("after", context)]);
            ExitCode::from(0)
        } else {
            obs::error("cannot reach daemon", &[obs::field("target", context)]);
            ExitCode::from(1)
        }
    }

    fn payload_malformed(&self, reason: &str) -> ExitCode {
        obs::error("malformed payload", &[obs::field("reason", reason)]);
        if self.successes > 0 {
            ExitCode::from(2)
        } else {
            ExitCode::from(1)
        }
    }
}

/// `obs top URL [--once] [--interval-ms N]` — poll `GET /metrics` and
/// render a refreshing queue/worker/latency table to stderr.
///
/// Exit contract: 0 = clean (a daemon that drains away mid-watch is a
/// clean exit once at least one poll succeeded), 2 = exposition stopped
/// parsing after a successful poll, 1 = never connected or bad usage.
fn cmd_obs_top(args: &[String]) -> ExitCode {
    let mut target: Option<String> = None;
    let mut once = false;
    let mut interval_ms: u64 = 1000;
    let mut iter = args.iter();
    while let Some(arg) = iter.next() {
        match arg.as_str() {
            "--once" => once = true,
            "--interval-ms" => match iter.next().and_then(|v| v.parse().ok()) {
                Some(ms) if ms >= 1 => interval_ms = ms,
                _ => return usage(),
            },
            other if !other.starts_with('-') && target.is_none() => {
                target = Some(parse_target(other));
            }
            _ => return usage(),
        }
    }
    let Some(addr) = target else {
        return usage();
    };
    let mut outcome = PollOutcome::new();
    loop {
        let body = match diffaudit_serve::client::request_text(&addr, "GET", "/metrics", b"") {
            Ok((200, body)) => body,
            Ok((status, _)) => {
                return outcome.payload_malformed(&format!("/metrics answered {status}"));
            }
            Err(_) => return outcome.transport_failed(&addr),
        };
        let samples = match obs::parse_exposition(&body) {
            Ok(samples) => samples,
            Err(e) => return outcome.payload_malformed(&e),
        };
        outcome.successes += 1;
        obs::write_stderr_block(&render_top(&addr, &samples));
        if once {
            return ExitCode::from(0);
        }
        std::thread::sleep(std::time::Duration::from_millis(interval_ms));
    }
}

/// Render one `obs top` frame from parsed exposition samples.
fn render_top(addr: &str, samples: &[obs::Sample]) -> String {
    let gauge = |name: &str| obs::gauge_value(samples, name).unwrap_or(0.0);
    let counter = |name: &str| obs::sum_samples(samples, name).unwrap_or(0.0);
    let mut out = String::new();
    out.push_str(&format!(
        "diffaudit obs top — {addr} (uptime {:.1}s)\n",
        gauge("diffaudit_uptime_seconds")
    ));
    out.push_str(&format!(
        "  queue depth {:>4}   in-flight {:>4}   busy workers {:>4}\n",
        gauge("serve_queue_depth"),
        gauge("serve_jobs_in_flight"),
        gauge("serve_workers_busy"),
    ));
    out.push_str(&format!(
        "  jobs: submitted {} finished {} panicked {} shed(429) {}\n",
        counter("serve_jobs_submitted_total"),
        counter("serve_jobs_finished_total"),
        counter("serve_jobs_panicked_total"),
        counter("serve_queue_shed_total"),
    ));
    out.push_str(&format!(
        "  http: requests {} ({:.2}/s over 1m, {:.2}/s over 5m)\n",
        counter("serve_http_requests_total"),
        gauge("serve_http_requests_window_rate_1m"),
        gauge("serve_http_requests_window_rate_5m"),
    ));
    let p50 = obs::histogram_quantile(samples, "serve_http_latency_us", 0.50);
    let p90 = obs::histogram_quantile(samples, "serve_http_latency_us", 0.90);
    match (p50, p90) {
        (Some(p50), Some(p90)) => out.push_str(&format!(
            "  http latency: p50 {} p90 {}\n",
            human_us(p50),
            human_us(p90)
        )),
        _ => out.push_str("  http latency: no samples yet\n"),
    }
    // Present once any job has consulted the persistent classification
    // cache; warm daemons show hits ≈ keys and zero ensemble work.
    let cache_hits = counter("pipeline_classify_cache_hit_total");
    let cache_misses = counter("pipeline_classify_cache_miss_total");
    if cache_hits + cache_misses > 0.0 {
        out.push_str(&format!(
            "  classify cache: hits {} misses {} inserts {}\n",
            cache_hits,
            cache_misses,
            counter("pipeline_classify_cache_insert_total"),
        ));
    }
    // Present only when the daemon's /proc sampler is running (Linux).
    match obs::gauge_value(samples, "diffaudit_process_resident_bytes") {
        Some(rss) => out.push_str(&format!(
            "  resources: rss {}   cpu {:.2}s\n",
            diffaudit_util::fmt::format_bytes(rss.max(0.0) as u64),
            obs::sum_samples(samples, "diffaudit_process_cpu_seconds_total").unwrap_or(0.0),
        )),
        None => out.push_str("  resources: unavailable (no /proc sampler)\n"),
    }
    out
}

/// `obs tail URL [--once] [--interval-ms N] [--level warn|error]` —
/// stream the daemon's retained warn/error event ring to stderr,
/// following the ring cursor so each event prints once.
///
/// Shares `obs top`'s exit contract.
fn cmd_obs_tail(args: &[String]) -> ExitCode {
    let mut target: Option<String> = None;
    let mut once = false;
    let mut interval_ms: u64 = 500;
    let mut min_level = obs::Level::Warn;
    let mut iter = args.iter();
    while let Some(arg) = iter.next() {
        match arg.as_str() {
            "--once" => once = true,
            "--interval-ms" => match iter.next().and_then(|v| v.parse().ok()) {
                Some(ms) if ms >= 1 => interval_ms = ms,
                _ => return usage(),
            },
            "--level" => match iter.next().map(String::as_str).and_then(obs::Level::parse) {
                Some(level) => min_level = level,
                None => return usage(),
            },
            other if !other.starts_with('-') && target.is_none() => {
                target = Some(parse_target(other));
            }
            _ => return usage(),
        }
    }
    let Some(addr) = target else {
        return usage();
    };
    let mut outcome = PollOutcome::new();
    let mut cursor: u64 = 0;
    loop {
        let path = format!("/api/v1/events?since={cursor}");
        let body = match diffaudit_serve::client::request_text(&addr, "GET", &path, b"") {
            Ok((200, body)) => body,
            Ok((status, _)) => {
                return outcome.payload_malformed(&format!("/api/v1/events answered {status}"));
            }
            Err(_) => return outcome.transport_failed(&addr),
        };
        let doc = match diffaudit_json::parse(&body) {
            Ok(doc) => doc,
            Err(e) => return outcome.payload_malformed(&e.to_string()),
        };
        let Some(events) = doc.get("events").and_then(Json::as_arr) else {
            return outcome.payload_malformed("no \"events\" array in response");
        };
        outcome.successes += 1;
        if let Some(next) = doc.get("cursor").and_then(Json::as_i64) {
            let (next, resynced) = diffaudit_serve::client::next_cursor(cursor, next.max(0) as u64);
            if resynced {
                obs::warn(
                    "event ring reset (daemon restarted?); resyncing",
                    &[
                        obs::field("hadCursor", cursor),
                        obs::field("serverCursor", next),
                    ],
                );
            }
            cursor = next;
        }
        let mut lines = String::new();
        for event in events {
            let level = event
                .get("level")
                .and_then(Json::as_str)
                .and_then(obs::Level::parse)
                .unwrap_or(obs::Level::Warn);
            if !level.passes(min_level) {
                continue;
            }
            let t_us = event.get("tUs").and_then(Json::as_i64).unwrap_or(0);
            let msg = event.get("msg").and_then(Json::as_str).unwrap_or("");
            let fields = event.get("fields").and_then(Json::as_str).unwrap_or("");
            lines.push_str(&format!(
                "[+{:.3}s] {:5} {msg}",
                t_us as f64 / 1e6,
                level.label().to_ascii_uppercase()
            ));
            if !fields.is_empty() {
                lines.push(' ');
                lines.push_str(fields);
            }
            lines.push('\n');
        }
        if !lines.is_empty() {
            obs::write_stderr_block(&lines);
        }
        if once {
            return ExitCode::from(0);
        }
        std::thread::sleep(std::time::Duration::from_millis(interval_ms));
    }
}

/// `obs report TRACE.jsonl [--top K] [--resources]` — span-tree /
/// critical-path report; `--resources` switches to the per-stage
/// RSS/CPU/throughput attribution view.
///
/// Shares the audit exit contract: 0 = clean, 2 = report produced but some
/// trace lines were malformed and skipped, 1 = unusable input.
fn cmd_obs_report(args: &[String]) -> ExitCode {
    let mut path: Option<PathBuf> = None;
    let mut options = obs::TraceReportOptions::default();
    let mut resources = false;
    let mut iter = args.iter();
    while let Some(arg) = iter.next() {
        match arg.as_str() {
            "--top" => match iter.next().and_then(|v| v.parse().ok()) {
                Some(k) if k > 0 => options.top = k,
                _ => return usage(),
            },
            "--resources" => resources = true,
            other if !other.starts_with('-') && path.is_none() => {
                path = Some(PathBuf::from(other));
            }
            _ => return usage(),
        }
    }
    let Some(path) = path else {
        return usage();
    };
    let text = match std::fs::read_to_string(&path) {
        Ok(text) => text,
        Err(e) => {
            obs::error(
                "cannot read trace file",
                &[
                    obs::field("path", path.display().to_string()),
                    obs::field("reason", e.to_string()),
                ],
            );
            return ExitCode::from(1);
        }
    };
    let log = obs::TraceLog::parse(&text);
    if log.records.is_empty() {
        obs::error(
            "no usable trace records",
            &[
                obs::field("path", path.display().to_string()),
                obs::field("lines", log.lines),
                obs::field("skipped", log.skipped),
            ],
        );
        return ExitCode::from(1);
    }
    let tree = obs::SpanTree::build(&log);
    if resources {
        print!("{}", obs::render_resource_report(&tree, &options));
    } else {
        print!("{}", obs::render_trace_report(&tree, &options));
    }
    if log.skipped > 0 {
        obs::warn(
            "trace partially malformed; exit code 2",
            &[
                obs::field("skipped", log.skipped),
                obs::field("lines", log.lines),
            ],
        );
        return ExitCode::from(2);
    }
    ExitCode::SUCCESS
}

/// `obs diff BASELINE.json CURRENT.json [--fail-over PCT]
/// [--fail-rss-over PCT] [--noise-floor-ms N]` — metrics comparison with a
/// gated verdict. `--noise-floor-us` is kept as an alias of the canonical
/// millisecond spelling (`serve_load --mode diff` uses the same unit).
///
/// Exit contract: 0 = ok, 2 = regressed (report still printed),
/// 1 = unusable input or bad usage.
fn cmd_obs_diff(args: &[String]) -> ExitCode {
    let mut paths: Vec<PathBuf> = Vec::new();
    let mut options = obs::DiffOptions::default();
    let mut iter = args.iter();
    while let Some(arg) = iter.next() {
        match arg.as_str() {
            "--fail-over" => match iter.next().and_then(|v| v.parse::<f64>().ok()) {
                Some(pct) if pct >= 0.0 => options.fail_over = Some(pct / 100.0),
                _ => return usage(),
            },
            "--fail-rss-over" => match iter.next().and_then(|v| v.parse::<f64>().ok()) {
                Some(pct) if pct >= 0.0 => options.fail_rss_over = Some(pct / 100.0),
                _ => return usage(),
            },
            "--noise-floor-ms" => match iter.next().and_then(|v| v.parse::<u64>().ok()) {
                Some(ms) => options.noise_floor_us = ms.saturating_mul(1000),
                None => return usage(),
            },
            "--noise-floor-us" => match iter.next().and_then(|v| v.parse().ok()) {
                Some(us) => options.noise_floor_us = us,
                None => return usage(),
            },
            other if !other.starts_with('-') => paths.push(PathBuf::from(other)),
            _ => return usage(),
        }
    }
    let [baseline_path, current_path] = paths.as_slice() else {
        return usage();
    };
    let load = |path: &PathBuf| -> Option<obs::Snapshot> {
        let text = match std::fs::read_to_string(path) {
            Ok(text) => text,
            Err(e) => {
                obs::error(
                    "cannot read metrics file",
                    &[
                        obs::field("path", path.display().to_string()),
                        obs::field("reason", e.to_string()),
                    ],
                );
                return None;
            }
        };
        match obs::parse_snapshot(&text) {
            Ok(snapshot) => Some(snapshot),
            Err(e) => {
                obs::error(
                    "cannot parse metrics snapshot",
                    &[
                        obs::field("path", path.display().to_string()),
                        obs::field("reason", e.to_string()),
                    ],
                );
                None
            }
        }
    };
    let (Some(baseline), Some(current)) = (load(baseline_path), load(current_path)) else {
        return ExitCode::from(1);
    };
    let diff = obs::diff_snapshots(&baseline, &current, &options);
    print!("{}", obs::render_diff(&diff, &options));
    match diff.verdict {
        obs::Verdict::Ok => ExitCode::SUCCESS,
        obs::Verdict::Regressed => {
            obs::warn(
                "metrics regressed against baseline; exit code 2",
                &[obs::field("metrics", diff.regressions.join(","))],
            );
            ExitCode::from(2)
        }
    }
}

fn cmd_ontology() -> ExitCode {
    use diffaudit_ontology::{DataTypeCategory, Level1, Level2};
    let mut roots = Json::obj();
    for l1 in Level1::ALL {
        let mut groups = Json::obj();
        for l2 in Level2::ALL {
            if l2.level1() != l1 {
                continue;
            }
            let mut categories = Json::obj();
            for category in l2.categories() {
                categories.set(
                    category.label(),
                    Json::obj()
                        .with(
                            "examples",
                            Json::Arr(
                                category
                                    .vocabulary()
                                    .iter()
                                    .map(|t| Json::str(*t))
                                    .collect(),
                            ),
                        )
                        .with("legalBasis", Json::str(category.legal_basis().label()))
                        .with(
                            "observedInPaper",
                            Json::Bool(DataTypeCategory::OBSERVED_IN_PAPER.contains(&category)),
                        ),
                );
            }
            groups.set(l2.label(), categories);
        }
        roots.set(l1.label(), groups);
    }
    println!("{}", roots.to_pretty_string());
    ExitCode::SUCCESS
}
