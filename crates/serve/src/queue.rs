//! A bounded MPMC job queue with explicit load shedding.
//!
//! The daemon's backpressure contract: submission never blocks. Either the
//! queue has room and the job is accepted, or the caller gets
//! [`PushError::Full`] back immediately and maps it to `429`. Workers
//! block on [`BoundedQueue::pop`]; closing the queue wakes them all, and
//! they drain whatever is still queued before exiting — which is exactly
//! the drain protocol's "finish queued work" phase.

use diffaudit_obs as obs;
use std::collections::VecDeque;
use std::sync::{Condvar, Mutex, MutexGuard};

/// Why a push was refused.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PushError {
    /// The queue is at capacity — shed the load (`429`).
    Full,
    /// The queue is closed — the daemon is draining (`503`).
    Closed,
}

impl std::fmt::Display for PushError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PushError::Full => f.write_str("queue full"),
            PushError::Closed => f.write_str("queue closed"),
        }
    }
}

impl std::error::Error for PushError {}

struct State<T> {
    items: VecDeque<T>,
    closed: bool,
}

/// Fixed-capacity FIFO shared between the accept loop (producer) and the
/// job-runner workers (consumers).
pub struct BoundedQueue<T> {
    state: Mutex<State<T>>,
    available: Condvar,
    capacity: usize,
    depth_gauge: Option<&'static str>,
}

impl<T> BoundedQueue<T> {
    /// A queue holding at most `capacity` items (minimum 1).
    pub fn new(capacity: usize) -> BoundedQueue<T> {
        BoundedQueue {
            state: Mutex::new(State {
                items: VecDeque::new(),
                closed: false,
            }),
            available: Condvar::new(),
            capacity: capacity.max(1),
            depth_gauge: None,
        }
    }

    /// Publish the queue depth as global gauge `name` on every push/pop.
    /// The queue is the gauge's single authoritative writer (it uses the
    /// `set` form), so the reading is exact, never a drifting delta.
    pub fn with_depth_gauge(mut self, name: &'static str) -> BoundedQueue<T> {
        self.depth_gauge = Some(name);
        self
    }

    fn publish_depth(&self, depth: usize) {
        if let Some(name) = self.depth_gauge {
            obs::gauge_set(name, depth as i64);
        }
    }

    fn lock(&self) -> MutexGuard<'_, State<T>> {
        match self.state.lock() {
            Ok(guard) => guard,
            Err(poisoned) => poisoned.into_inner(),
        }
    }

    /// Non-blocking push. Returns the queue depth after the push, or the
    /// shedding reason.
    pub fn try_push(&self, item: T) -> Result<usize, PushError> {
        let mut state = self.lock();
        if state.closed {
            return Err(PushError::Closed);
        }
        if state.items.len() >= self.capacity {
            return Err(PushError::Full);
        }
        state.items.push_back(item);
        let depth = state.items.len();
        drop(state);
        self.publish_depth(depth);
        self.available.notify_one();
        Ok(depth)
    }

    /// Blocking pop. Returns `None` once the queue is closed *and* empty —
    /// the worker-exit signal.
    pub fn pop(&self) -> Option<T> {
        let mut state = self.lock();
        loop {
            if let Some(item) = state.items.pop_front() {
                let depth = state.items.len();
                drop(state);
                self.publish_depth(depth);
                return Some(item);
            }
            if state.closed {
                return None;
            }
            state = match self.available.wait(state) {
                Ok(guard) => guard,
                Err(poisoned) => poisoned.into_inner(),
            };
        }
    }

    /// Close the queue: further pushes fail with [`PushError::Closed`],
    /// blocked poppers wake, and remaining items stay poppable.
    pub fn close(&self) {
        self.lock().closed = true;
        self.available.notify_all();
    }

    /// Items currently queued.
    pub fn len(&self) -> usize {
        self.lock().items.len()
    }

    /// Whether the queue is currently empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn sheds_load_at_capacity() {
        let q = BoundedQueue::new(2);
        assert_eq!(q.try_push(1), Ok(1));
        assert_eq!(q.try_push(2), Ok(2));
        assert_eq!(q.try_push(3), Err(PushError::Full));
        assert_eq!(q.pop(), Some(1));
        assert_eq!(q.try_push(3), Ok(2));
    }

    #[test]
    fn close_drains_then_signals_exit() {
        let q = BoundedQueue::new(4);
        q.try_push('a').expect("room");
        q.try_push('b').expect("room");
        q.close();
        assert_eq!(q.try_push('c'), Err(PushError::Closed));
        assert_eq!(q.pop(), Some('a'));
        assert_eq!(q.pop(), Some('b'));
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn depth_gauge_tracks_push_and_pop() {
        // Name unique to this test: the global recorder is shared across
        // the test binary.
        let q = BoundedQueue::new(2).with_depth_gauge("serve.queue.test.depth");
        let gauge = |name| {
            obs::snapshot()
                .metrics
                .gauge(name)
                .map(|g| g.value())
                .unwrap_or(-1)
        };
        q.try_push('a').expect("room");
        assert_eq!(gauge("serve.queue.test.depth"), 1);
        q.try_push('b').expect("room");
        assert_eq!(gauge("serve.queue.test.depth"), 2);
        assert_eq!(q.pop(), Some('a'));
        assert_eq!(gauge("serve.queue.test.depth"), 1);
        assert_eq!(q.pop(), Some('b'));
        assert_eq!(gauge("serve.queue.test.depth"), 0);
        let snap = obs::snapshot();
        let watermark = snap.metrics.gauge("serve.queue.test.depth").expect("gauge");
        assert_eq!(watermark.max(), Some(2));
    }

    #[test]
    fn blocked_pop_wakes_on_push() {
        let q = Arc::new(BoundedQueue::new(1));
        let q2 = Arc::clone(&q);
        let popper = std::thread::spawn(move || q2.pop());
        std::thread::sleep(std::time::Duration::from_millis(20));
        q.try_push(42u32).expect("room");
        assert_eq!(popper.join().expect("join"), Some(42));
    }

    #[test]
    fn blocked_pop_wakes_on_close() {
        let q: Arc<BoundedQueue<u8>> = Arc::new(BoundedQueue::new(1));
        let q2 = Arc::clone(&q);
        let popper = std::thread::spawn(move || q2.pop());
        std::thread::sleep(std::time::Duration::from_millis(20));
        q.close();
        assert_eq!(popper.join().expect("join"), None);
    }
}
