//! Per-job execution: one audit under a deadline, a cancel token, and a
//! private observability scope.
//!
//! Timeout policy (DESIGN.md §9): the loader and the pipeline treat
//! interruption differently, on purpose.
//!
//! - **During load**, an expired deadline turns each remaining unit into a
//!   ledger drop with a `timeout:` reason — the job still completes, and
//!   the salvage policy judges the degradation exactly as it judges
//!   damaged input. A stalled decoder therefore yields `salvaged` (or
//!   `failed` under `--strict`-style policy), not a wedged worker.
//! - **During the pipeline phases** (extract/classify/assemble), partial
//!   results are not meaningful, so interruption aborts the phase and the
//!   job reports `timed-out` (or `cancelled`) with an error document.
//!
//! All instrumentation lands in a job-private [`Scope`]; the caller merges
//! the snapshot into the global registry only after the job returns — a
//! panicking job cannot leave half-written global state.

use crate::job::{JobCompletion, JobPhase};
use diffaudit::audit::{audit_service, AuditFinding};
use diffaudit::diff::ObservedGrid;
use diffaudit::export;
use diffaudit::loader::{load_memory_service, MemoryService};
use diffaudit::pipeline::{AuditOutcome, ClassificationMode, Pipeline};
use diffaudit::report;
use diffaudit::salvage::{cache_ledger, DegradationLedger, RunStatus, SalvagePolicy};
use diffaudit_json::Json;
use diffaudit_nettrace::salvage::Stage;
use diffaudit_obs::{MetricsSnapshot, Scope};
use diffaudit_util::cancel::{CancelToken, Ctl, Deadline, Interrupt};
use std::collections::HashMap;
use std::sync::Arc;
use std::time::Duration;

/// Fault-injection modes, accepted only when the daemon was started with
/// chaos enabled. They exist so the containment properties are testable
/// end-to-end against the real daemon, not just in unit tests.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ChaosMode {
    /// Panic inside the job (exercises worker panic containment).
    Panic,
    /// Stall every cancellation checkpoint (exercises deadline expiry in
    /// the decoder loops: a slow-loris artifact decode).
    StallDecode,
}

/// Everything a worker needs to execute one job.
pub struct JobRequest {
    /// The uploaded service (traces already resolved to memory units).
    pub service: MemoryService,
    /// Degradation tolerance.
    pub policy: SalvagePolicy,
    /// Ensemble seed (the CLI's `--ensemble`).
    pub seed: u64,
    /// Ensemble vote threshold (the CLI's `--threshold`).
    pub threshold: f64,
    /// Wall-clock budget for the whole job.
    pub deadline: Duration,
    /// Optional fault injection.
    pub chaos: Option<ChaosMode>,
    /// Persistent classification cache directory (shared across jobs;
    /// `None` = uncached).
    pub cache_dir: Option<std::path::PathBuf>,
}

/// A finished job: the table entry plus the private metrics snapshot the
/// worker merges into the global registry.
pub struct JobOutput {
    /// Terminal state and rendered documents.
    pub completion: JobCompletion,
    /// The job's private metrics, for the post-completion global merge.
    pub metrics: Option<MetricsSnapshot>,
}

/// How long each [`ChaosMode::StallDecode`] checkpoint sleeps.
const STALL_PER_CHECK: Duration = Duration::from_millis(25);

fn build_ctl(token: &CancelToken, deadline: Duration, chaos: Option<ChaosMode>) -> Ctl {
    let ctl = Ctl::new(token.clone(), Deadline::within(deadline));
    match chaos {
        Some(ChaosMode::StallDecode) => {
            ctl.with_probe(Arc::new(|| std::thread::sleep(STALL_PER_CHECK)))
        }
        _ => ctl,
    }
}

/// Deliberate fault injection for [`ChaosMode::Panic`]; the worker's
/// `catch_unwind` boundary is the subject under test.
#[allow(clippy::panic)]
fn chaos_panic() -> ! {
    panic!("chaos: injected job panic")
}

fn empty_outcome() -> AuditOutcome {
    AuditOutcome {
        services: Vec::new(),
        key_labels: HashMap::new(),
        unique_raw_keys: 0,
        cache: None,
    }
}

/// The batch CLI's default text report, rebuilt from the same renderers so
/// daemon reports and CLI stdout stay in lockstep.
fn render_text_report(
    outcome: &AuditOutcome,
    findings: &[AuditFinding],
    ledger: &DegradationLedger,
    status: RunStatus,
) -> String {
    let mut text = String::new();
    for service in &outcome.services {
        let grid = ObservedGrid::build(service);
        text.push_str(&report::render_table4(service, &grid));
        text.push('\n');
    }
    text.push_str(&report::render_fig3(outcome));
    text.push('\n');
    text.push_str("Findings:\n");
    text.push_str(&report::render_findings(findings));
    if status != RunStatus::Clean {
        text.push('\n');
        text.push_str(&report::render_degradation(ledger));
    }
    text
}

fn interrupted_completion(interrupt: Interrupt, ledger: &DegradationLedger) -> JobCompletion {
    let phase = match interrupt {
        Interrupt::TimedOut => JobPhase::TimedOut,
        Interrupt::Cancelled => JobPhase::Cancelled,
    };
    let doc = Json::obj()
        .with("error", Json::str(interrupt.to_string()))
        .with("degradation", ledger.to_json())
        .to_pretty_string();
    JobCompletion {
        phase,
        result_json: doc,
        report: None,
        metrics_json: None,
        error: Some(interrupt.to_string()),
    }
}

/// Close the job scope, attach the rendered snapshot, and package the
/// output.
fn finish(scope: Scope, mut completion: JobCompletion) -> JobOutput {
    let metrics = scope.finish();
    if let Some(snapshot) = &metrics {
        completion.metrics_json = Some(snapshot.to_json().to_pretty_string());
    }
    JobOutput {
        completion,
        metrics,
    }
}

/// Execute one job to a terminal phase. Never blocks past the deadline as
/// long as decode/pipeline loops keep hitting their cancellation
/// checkpoints; never touches the global obs registry.
///
/// The caller is expected to wrap this in `catch_unwind` — a panic
/// anywhere in here (including re-raised pipeline worker panics) is the
/// job's failure, not the daemon's.
pub fn run_job(request: JobRequest, token: CancelToken, threads: usize) -> JobOutput {
    let ctl = build_ctl(&token, request.deadline, request.chaos);
    let scope = Scope::job("serve.job");
    if request.chaos == Some(ChaosMode::Panic) {
        chaos_panic();
    }

    let (input, service_ledger) = scope.time("serve.job.load", || {
        load_memory_service(request.service, threads, &scope, &ctl)
    });
    let mut ledger = DegradationLedger::new();
    ledger.services.push(service_ledger);
    // Mirror the ledger into the job's metrics, same counters as the CLI.
    for (stage, counts) in ledger.merged().stages() {
        let label = stage.label();
        // lint:allow(metric-discipline): `salvage.<stage>.*` is a closed
        // family — `stage` ranges over the ledger's fixed stage enum.
        scope.add(
            &format!("{}{label}.processed", diffaudit_obs::SALVAGE_PREFIX),
            counts.processed,
        );
        // lint:allow(metric-discipline): closed family, same as above.
        scope.add(
            &format!("{}{label}.dropped", diffaudit_obs::SALVAGE_PREFIX),
            counts.dropped,
        );
    }

    let status = request.policy.evaluate(&ledger);
    if status == RunStatus::Failed {
        let doc =
            export::outcome_to_json_with_ledger(&empty_outcome(), &[], &ledger).to_pretty_string();
        return finish(
            scope,
            JobCompletion {
                phase: JobPhase::Done(RunStatus::Failed),
                result_json: doc,
                report: Some(report::render_degradation(&ledger)),
                metrics_json: None,
                error: Some(format!(
                    "degradation exceeds policy: {} records dropped",
                    ledger.total_dropped()
                )),
            },
        );
    }

    if let Some(interrupt) = ctl.interrupted() {
        // The deadline (or a cancel) tripped during load. Interrupted
        // units are already accounted as ledger drops, so if anything was
        // dropped the job reports the salvage verdict with the degradation
        // document; a clean ledger means the trip landed after a complete
        // load, where no partial audit exists to report.
        if ledger.total_dropped() > 0 {
            let doc = export::outcome_to_json_with_ledger(&empty_outcome(), &[], &ledger)
                .to_pretty_string();
            return finish(
                scope,
                JobCompletion {
                    phase: JobPhase::Done(status),
                    result_json: doc,
                    report: Some(report::render_degradation(&ledger)),
                    metrics_json: None,
                    error: Some(interrupt.to_string()),
                },
            );
        }
        return finish(scope, interrupted_completion(interrupt, &ledger));
    }

    let mut pipeline = Pipeline::new(ClassificationMode::Ensemble {
        seed: request.seed,
        threshold: request.threshold,
    })
    .with_threads(threads);
    if let Some(dir) = &request.cache_dir {
        pipeline = pipeline.with_cache_dir(dir.clone());
    }
    match pipeline.run_inputs_scoped(vec![input], &scope, &ctl) {
        Err(interrupt) => finish(scope, interrupted_completion(interrupt, &ledger)),
        Ok(outcome) => {
            // Cache salvage (skipped or truncated log records) degrades the
            // run the same way damaged input does: account it in the ledger
            // and let the policy re-judge the status.
            let status = match outcome.cache.as_ref() {
                Some(report) if !report.damage.is_empty() => {
                    let cache_service = cache_ledger(report);
                    let counts = cache_service.merged().stage(Stage::Cache);
                    scope.add("salvage.cache.processed", counts.processed);
                    scope.add("salvage.cache.dropped", counts.dropped);
                    ledger.services.push(cache_service);
                    request.policy.evaluate(&ledger)
                }
                _ => status,
            };
            let mut findings: Vec<AuditFinding> = Vec::new();
            for service in &outcome.services {
                if let Some(spec) = diffaudit_services::service_by_slug(&service.slug) {
                    findings.extend(audit_service(service, &spec));
                }
            }
            scope.add("audit.findings", findings.len() as u64);
            let doc = export::outcome_to_json_with_ledger(&outcome, &findings, &ledger)
                .to_pretty_string();
            let report_text = render_text_report(&outcome, &findings, &ledger, status);
            finish(
                scope,
                JobCompletion {
                    phase: JobPhase::Done(status),
                    result_json: doc,
                    report: Some(report_text),
                    metrics_json: None,
                    error: None,
                },
            )
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use diffaudit::loader::{MemoryArtifact, MemoryUnit};
    use diffaudit_services::{generate_dataset, DatasetOptions};

    fn small_service() -> MemoryService {
        let dataset = generate_dataset(&DatasetOptions {
            seed: 21,
            volume_scale: 0.02,
            mobile_pinned_fraction: 0.0,
            services: vec!["duolingo".into()],
        });
        let capture = &dataset.services[0];
        let units = capture
            .artifacts
            .iter()
            .enumerate()
            .map(|(i, artifact)| MemoryUnit {
                label: format!("unit-{i}"),
                platform: artifact.platform,
                kind: artifact.kind,
                category: artifact.category,
                artifact: match (&artifact.har, &artifact.pcap) {
                    (Some(har), _) => MemoryArtifact::Har(har.clone()),
                    (None, Some(pcap)) => MemoryArtifact::Capture {
                        bytes: pcap.clone(),
                        keylog: artifact.keylog.clone(),
                    },
                    (None, None) => MemoryArtifact::Har(String::new()),
                },
            })
            .collect();
        MemoryService {
            name: capture.spec.name.to_string(),
            slug: capture.spec.slug.to_string(),
            first_party_domains: capture
                .spec
                .first_party_domains
                .iter()
                .map(|d| d.to_string())
                .collect(),
            units,
        }
    }

    fn request(service: MemoryService) -> JobRequest {
        JobRequest {
            service,
            policy: SalvagePolicy::default(),
            seed: 2023,
            threshold: 0.8,
            deadline: Duration::from_secs(60),
            chaos: None,
            cache_dir: None,
        }
    }

    #[test]
    fn clean_job_reports_clean_with_private_metrics() {
        let output = run_job(request(small_service()), CancelToken::new(), 2);
        assert_eq!(output.completion.phase, JobPhase::Done(RunStatus::Clean));
        assert_eq!(output.completion.phase.exit_style(), Some(0));
        assert!(output.completion.result_json.contains("services"));
        assert!(output.completion.report.is_some());
        let metrics = output.metrics.expect("job snapshot");
        assert!(metrics.metrics.spans().any(|(n, _)| n == "serve.job"));
        assert!(metrics.metrics.counter("loader.units.loaded") > 0);
    }

    #[test]
    fn expired_deadline_salvages_or_times_out_but_returns() {
        let mut req = request(small_service());
        req.deadline = Duration::ZERO;
        let output = run_job(req, CancelToken::new(), 2);
        // Every unit dropped at load → policy says salvaged.
        assert_eq!(
            output.completion.phase,
            JobPhase::Done(RunStatus::Salvaged),
            "error: {:?}",
            output.completion.error
        );
        assert!(output
            .completion
            .error
            .as_deref()
            .is_some_and(|e| e.starts_with("timeout")));
        assert!(output.completion.result_json.contains("degradation"));
    }

    #[test]
    fn pre_cancelled_token_cancels_the_job() {
        let token = CancelToken::new();
        token.cancel();
        let output = run_job(request(small_service()), token, 1);
        // Dropped-at-load units carry cancelled reasons → salvage verdict.
        assert_eq!(output.completion.phase, JobPhase::Done(RunStatus::Salvaged));
        assert!(output
            .completion
            .error
            .as_deref()
            .is_some_and(|e| e.starts_with("cancelled")));
    }

    #[test]
    fn strict_policy_turns_timeout_drops_into_hard_failure() {
        let mut req = request(small_service());
        req.deadline = Duration::ZERO;
        req.policy.strict = true;
        let output = run_job(req, CancelToken::new(), 1);
        assert_eq!(output.completion.phase, JobPhase::Done(RunStatus::Failed));
        assert_eq!(output.completion.phase.http_status(), 422);
    }
}
