//! Statutory grounding for each ontology category.
//!
//! The audit engine cites the law a finding rests on; these tables map each
//! category to the COPPA rule and/or CCPA code sections that cover it.

use crate::level::{DataTypeCategory, Level1};

/// Which statute a category (or audit rule) derives from.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum LegalBasis {
    /// Children's Online Privacy Protection Act rule (16 C.F.R. Part 312).
    Coppa,
    /// California Consumer Privacy Act (Cal. Civ. Code § 1798.100 et seq.).
    Ccpa,
    /// Covered by both.
    Both,
}

impl LegalBasis {
    /// Human-readable label.
    pub fn label(&self) -> &'static str {
        match self {
            LegalBasis::Coppa => "COPPA",
            LegalBasis::Ccpa => "CCPA",
            LegalBasis::Both => "COPPA & CCPA",
        }
    }
}

impl std::fmt::Display for LegalBasis {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

/// A citation to a specific provision.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LegalCitation {
    /// The statute.
    pub basis: LegalBasis,
    /// Section reference, e.g. `16 C.F.R. § 312.2`.
    pub section: &'static str,
    /// One-line description of what the provision says.
    pub summary: &'static str,
}

/// Citations defining "personal information" under each law.
pub fn definitions() -> Vec<LegalCitation> {
    vec![
        LegalCitation {
            basis: LegalBasis::Coppa,
            section: "16 C.F.R. § 312.2",
            summary: "COPPA definition of personal information, including persistent identifiers",
        },
        LegalCitation {
            basis: LegalBasis::Ccpa,
            section: "Cal. Civ. Code § 1798.140(v)",
            summary: "CCPA definition of personal information",
        },
        LegalCitation {
            basis: LegalBasis::Ccpa,
            section: "Cal. Civ. Code § 1798.120(c)",
            summary: "Opt-in consent required to sell/share personal information of consumers under 16",
        },
        LegalCitation {
            basis: LegalBasis::Coppa,
            section: "16 C.F.R. § 312.5",
            summary: "Verifiable parental consent required before collecting personal information from children",
        },
    ]
}

impl DataTypeCategory {
    /// The statutory basis for treating this category as regulated data.
    ///
    /// COPPA's enumeration focuses on identifiers, contact and location
    /// data, and persistent identifiers usable for tracking; CCPA's broader
    /// definition covers the behavioral and inference categories. Most
    /// identifier categories fall under both.
    pub fn legal_basis(&self) -> LegalBasis {
        use DataTypeCategory::*;
        match self {
            // COPPA § 312.2 explicitly enumerates these; CCPA also covers
            // them as "identifiers".
            Name
            | ContactInfo
            | Aliases
            | ReasonablyLinkablePersonalIdentifiers
            | DeviceHardwareIdentifiers
            | DeviceSoftwareIdentifiers
            | PreciseGeolocation
            | Communications
            | Contacts => LegalBasis::Both,
            // CCPA-specific enumerations (§ 1798.140(v)(1)).
            LinkedPersonalIdentifiers
            | CustomerNumbers
            | LoginInfo
            | Race
            | Religion
            | GenderSex
            | MaritalStatus
            | MilitaryVeteranStatus
            | MedicalConditions
            | GeneticInfo
            | Disabilities
            | BiometricInfo
            | PersonalHistory
            | InternetActivity
            | SensorData
            | ProductsAndAdvertising
            | InferencesAboutUsers => LegalBasis::Ccpa,
            // Contextual / derived categories covered by both frameworks'
            // catch-alls when linkable to a user.
            DeviceInfo
            | Age
            | Language
            | CoarseGeolocation
            | LocationTime
            | NetworkConnectionInfo
            | AppServiceUsage
            | AccountSettings
            | ServiceInfo => LegalBasis::Both,
        }
    }

    /// Citation string for findings.
    pub fn citation(&self) -> &'static str {
        match self.level1() {
            Level1::Identifiers => "16 C.F.R. § 312.2; Cal. Civ. Code § 1798.140(v)(1)(A)",
            Level1::PersonalInformation => "Cal. Civ. Code § 1798.140(v); 16 C.F.R. § 312.2",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_category_has_a_basis() {
        for c in DataTypeCategory::ALL {
            // Just exercising the total match — the call must not panic and
            // the label must be non-empty.
            assert!(!c.legal_basis().label().is_empty());
            assert!(!c.citation().is_empty());
        }
    }

    #[test]
    fn coppa_enumerated_identifiers_are_both() {
        assert_eq!(DataTypeCategory::Name.legal_basis(), LegalBasis::Both);
        assert_eq!(
            DataTypeCategory::PreciseGeolocation.legal_basis(),
            LegalBasis::Both
        );
    }

    #[test]
    fn inference_categories_are_ccpa() {
        assert_eq!(
            DataTypeCategory::InferencesAboutUsers.legal_basis(),
            LegalBasis::Ccpa
        );
    }

    #[test]
    fn definitions_cover_both_statutes() {
        let defs = definitions();
        assert!(defs.iter().any(|d| d.basis == LegalBasis::Coppa));
        assert!(defs.iter().any(|d| d.basis == LegalBasis::Ccpa));
    }
}
