//! The ontology level enums and their relationships.

/// Level 1: the two legal roots (COPPA 16 C.F.R. § 312.2 "personal
/// information" enumerates identifiers; CCPA § 1798.140(v) defines both).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Level1 {
    /// Data that identifies a user or device.
    Identifiers,
    /// Other personal information about the user.
    PersonalInformation,
}

impl Level1 {
    /// All level-1 roots.
    pub const ALL: [Level1; 2] = [Level1::Identifiers, Level1::PersonalInformation];

    /// Human-readable label.
    pub fn label(&self) -> &'static str {
        match self {
            Level1::Identifiers => "Identifiers",
            Level1::PersonalInformation => "Personal Information",
        }
    }
}

impl std::fmt::Display for Level1 {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

/// Level 2: the eight abstracted groups. Paper Table 4 reports data flows at
/// this level (six of the eight were observed).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Level2 {
    /// Identifiers tied to the person (name, contact info, login, …).
    PersonalIdentifiers,
    /// Identifiers tied to the device (hardware/software IDs, device info).
    DeviceIdentifiers,
    /// Protected characteristics (age, language, gender, …).
    PersonalCharacteristics,
    /// Employment / education / financial / medical history.
    PersonalHistory,
    /// Location data of any precision, plus location timestamps.
    Geolocation,
    /// Communications, contacts, internet activity, connection metadata.
    UserCommunications,
    /// Raw sensor data (audio/video recordings, etc.).
    Sensors,
    /// Behavioral data: advertising, usage, settings, service info,
    /// inferences.
    UserInterestsAndBehaviors,
}

impl Level2 {
    /// All level-2 groups in display order.
    pub const ALL: [Level2; 8] = [
        Level2::PersonalIdentifiers,
        Level2::DeviceIdentifiers,
        Level2::PersonalCharacteristics,
        Level2::PersonalHistory,
        Level2::Geolocation,
        Level2::UserCommunications,
        Level2::Sensors,
        Level2::UserInterestsAndBehaviors,
    ];

    /// The six groups observed in the paper's dataset, in the row order of
    /// Table 4.
    pub const TABLE4_ROWS: [Level2; 6] = [
        Level2::PersonalIdentifiers,
        Level2::DeviceIdentifiers,
        Level2::PersonalCharacteristics,
        Level2::Geolocation,
        Level2::UserCommunications,
        Level2::UserInterestsAndBehaviors,
    ];

    /// Human-readable label.
    pub fn label(&self) -> &'static str {
        match self {
            Level2::PersonalIdentifiers => "Personal Identifiers",
            Level2::DeviceIdentifiers => "Device Identifiers",
            Level2::PersonalCharacteristics => "Personal Characteristics",
            Level2::PersonalHistory => "Personal History",
            Level2::Geolocation => "Geolocation",
            Level2::UserCommunications => "User Communications",
            Level2::Sensors => "Sensors",
            Level2::UserInterestsAndBehaviors => "User Interests and Behaviors",
        }
    }

    /// The level-1 root this group belongs to.
    pub fn level1(&self) -> Level1 {
        match self {
            Level2::PersonalIdentifiers | Level2::DeviceIdentifiers => Level1::Identifiers,
            _ => Level1::PersonalInformation,
        }
    }

    /// The level-3 categories in this group.
    pub fn categories(&self) -> Vec<DataTypeCategory> {
        DataTypeCategory::ALL
            .iter()
            .copied()
            .filter(|c| c.level2() == *self)
            .collect()
    }
}

impl std::fmt::Display for Level2 {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

/// Level 3: the 35 classification labels (paper Table 2). These are the
/// output space of every classifier in `diffaudit-classifier`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
#[allow(missing_docs)] // labels are self-describing; docs live on `label()`
pub enum DataTypeCategory {
    // --- Identifiers / Personal Identifiers ---
    Name,
    LinkedPersonalIdentifiers,
    ContactInfo,
    ReasonablyLinkablePersonalIdentifiers,
    Aliases,
    CustomerNumbers,
    LoginInfo,
    // --- Identifiers / Device Identifiers ---
    DeviceHardwareIdentifiers,
    DeviceSoftwareIdentifiers,
    DeviceInfo,
    // --- Personal Information / Personal Characteristics ---
    Race,
    Age,
    Language,
    Religion,
    GenderSex,
    MaritalStatus,
    MilitaryVeteranStatus,
    MedicalConditions,
    GeneticInfo,
    Disabilities,
    BiometricInfo,
    // --- Personal Information / Personal History ---
    PersonalHistory,
    // --- Personal Information / Geolocation ---
    PreciseGeolocation,
    CoarseGeolocation,
    LocationTime,
    // --- Personal Information / User Communications ---
    Communications,
    Contacts,
    InternetActivity,
    NetworkConnectionInfo,
    // --- Personal Information / Sensors ---
    SensorData,
    // --- Personal Information / User Interests and Behaviors ---
    ProductsAndAdvertising,
    AppServiceUsage,
    AccountSettings,
    ServiceInfo,
    InferencesAboutUsers,
}

impl DataTypeCategory {
    /// All 35 categories, grouped by level 2 in display order.
    pub const ALL: [DataTypeCategory; 35] = [
        DataTypeCategory::Name,
        DataTypeCategory::LinkedPersonalIdentifiers,
        DataTypeCategory::ContactInfo,
        DataTypeCategory::ReasonablyLinkablePersonalIdentifiers,
        DataTypeCategory::Aliases,
        DataTypeCategory::CustomerNumbers,
        DataTypeCategory::LoginInfo,
        DataTypeCategory::DeviceHardwareIdentifiers,
        DataTypeCategory::DeviceSoftwareIdentifiers,
        DataTypeCategory::DeviceInfo,
        DataTypeCategory::Race,
        DataTypeCategory::Age,
        DataTypeCategory::Language,
        DataTypeCategory::Religion,
        DataTypeCategory::GenderSex,
        DataTypeCategory::MaritalStatus,
        DataTypeCategory::MilitaryVeteranStatus,
        DataTypeCategory::MedicalConditions,
        DataTypeCategory::GeneticInfo,
        DataTypeCategory::Disabilities,
        DataTypeCategory::BiometricInfo,
        DataTypeCategory::PersonalHistory,
        DataTypeCategory::PreciseGeolocation,
        DataTypeCategory::CoarseGeolocation,
        DataTypeCategory::LocationTime,
        DataTypeCategory::Communications,
        DataTypeCategory::Contacts,
        DataTypeCategory::InternetActivity,
        DataTypeCategory::NetworkConnectionInfo,
        DataTypeCategory::SensorData,
        DataTypeCategory::ProductsAndAdvertising,
        DataTypeCategory::AppServiceUsage,
        DataTypeCategory::AccountSettings,
        DataTypeCategory::ServiceInfo,
        DataTypeCategory::InferencesAboutUsers,
    ];

    /// The 19 categories observed in the paper's dataset (starred in
    /// Table 2).
    pub const OBSERVED_IN_PAPER: [DataTypeCategory; 19] = [
        DataTypeCategory::Name,
        DataTypeCategory::ContactInfo,
        DataTypeCategory::ReasonablyLinkablePersonalIdentifiers,
        DataTypeCategory::Aliases,
        DataTypeCategory::LoginInfo,
        DataTypeCategory::DeviceHardwareIdentifiers,
        DataTypeCategory::DeviceSoftwareIdentifiers,
        DataTypeCategory::DeviceInfo,
        DataTypeCategory::Age,
        DataTypeCategory::Language,
        DataTypeCategory::GenderSex,
        DataTypeCategory::CoarseGeolocation,
        DataTypeCategory::LocationTime,
        DataTypeCategory::NetworkConnectionInfo,
        DataTypeCategory::ProductsAndAdvertising,
        DataTypeCategory::AppServiceUsage,
        DataTypeCategory::AccountSettings,
        DataTypeCategory::ServiceInfo,
        DataTypeCategory::InferencesAboutUsers,
    ];

    /// Human-readable label (matches the paper's Table 2 wording).
    pub fn label(&self) -> &'static str {
        match self {
            DataTypeCategory::Name => "Name",
            DataTypeCategory::LinkedPersonalIdentifiers => "Linked Personal Identifiers",
            DataTypeCategory::ContactInfo => "Contact Information",
            DataTypeCategory::ReasonablyLinkablePersonalIdentifiers => {
                "Reasonably Linkable Personal Identifiers"
            }
            DataTypeCategory::Aliases => "Aliases",
            DataTypeCategory::CustomerNumbers => "Customer Numbers",
            DataTypeCategory::LoginInfo => "Login Information",
            DataTypeCategory::DeviceHardwareIdentifiers => "Device Hardware Identifiers",
            DataTypeCategory::DeviceSoftwareIdentifiers => "Device Software Identifiers",
            DataTypeCategory::DeviceInfo => "Device Information",
            DataTypeCategory::Race => "Race",
            DataTypeCategory::Age => "Age",
            DataTypeCategory::Language => "Language",
            DataTypeCategory::Religion => "Religion",
            DataTypeCategory::GenderSex => "Gender/Sex",
            DataTypeCategory::MaritalStatus => "Marital Status",
            DataTypeCategory::MilitaryVeteranStatus => "Military/Veteran Status",
            DataTypeCategory::MedicalConditions => "Medical Conditions",
            DataTypeCategory::GeneticInfo => "Genetic Information",
            DataTypeCategory::Disabilities => "Disabilities",
            DataTypeCategory::BiometricInfo => "Biometric Information",
            DataTypeCategory::PersonalHistory => "Personal History",
            DataTypeCategory::PreciseGeolocation => "Precise Geolocation",
            DataTypeCategory::CoarseGeolocation => "Coarse Geolocation",
            DataTypeCategory::LocationTime => "Location Time",
            DataTypeCategory::Communications => "Communications",
            DataTypeCategory::Contacts => "Contacts",
            DataTypeCategory::InternetActivity => "Internet Activity",
            DataTypeCategory::NetworkConnectionInfo => "Network Connection Information",
            DataTypeCategory::SensorData => "Sensor Data",
            DataTypeCategory::ProductsAndAdvertising => "Products and Advertising",
            DataTypeCategory::AppServiceUsage => "App or Service Usage",
            DataTypeCategory::AccountSettings => "Account Settings",
            DataTypeCategory::ServiceInfo => "Service Information",
            DataTypeCategory::InferencesAboutUsers => "Inferences",
        }
    }

    /// Parse a label back into a category (exact match on [`label`]),
    /// case-insensitive.
    ///
    /// [`label`]: DataTypeCategory::label
    pub fn from_label(label: &str) -> Option<DataTypeCategory> {
        let needle = label.trim();
        DataTypeCategory::ALL
            .iter()
            .copied()
            .find(|c| c.label().eq_ignore_ascii_case(needle))
    }

    /// The level-2 group this category belongs to.
    pub fn level2(&self) -> Level2 {
        use DataTypeCategory::*;
        match self {
            Name
            | LinkedPersonalIdentifiers
            | ContactInfo
            | ReasonablyLinkablePersonalIdentifiers
            | Aliases
            | CustomerNumbers
            | LoginInfo => Level2::PersonalIdentifiers,
            DeviceHardwareIdentifiers | DeviceSoftwareIdentifiers | DeviceInfo => {
                Level2::DeviceIdentifiers
            }
            Race
            | Age
            | Language
            | Religion
            | GenderSex
            | MaritalStatus
            | MilitaryVeteranStatus
            | MedicalConditions
            | GeneticInfo
            | Disabilities
            | BiometricInfo => Level2::PersonalCharacteristics,
            PersonalHistory => Level2::PersonalHistory,
            PreciseGeolocation | CoarseGeolocation | LocationTime => Level2::Geolocation,
            Communications | Contacts | InternetActivity | NetworkConnectionInfo => {
                Level2::UserCommunications
            }
            SensorData => Level2::Sensors,
            ProductsAndAdvertising
            | AppServiceUsage
            | AccountSettings
            | ServiceInfo
            | InferencesAboutUsers => Level2::UserInterestsAndBehaviors,
        }
    }

    /// The level-1 root.
    pub fn level1(&self) -> Level1 {
        self.level2().level1()
    }

    /// `true` if the category is an identifier under COPPA/CCPA (level 1 =
    /// Identifiers). Linkability analysis pairs identifier categories with
    /// personal-information categories.
    pub fn is_identifier(&self) -> bool {
        self.level1() == Level1::Identifiers
    }
}

impl std::fmt::Display for DataTypeCategory {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exactly_35_categories() {
        assert_eq!(DataTypeCategory::ALL.len(), 35);
        let mut set = DataTypeCategory::ALL.to_vec();
        set.sort();
        set.dedup();
        assert_eq!(set.len(), 35, "no duplicates");
    }

    #[test]
    fn exactly_19_observed() {
        assert_eq!(DataTypeCategory::OBSERVED_IN_PAPER.len(), 19);
    }

    #[test]
    fn level2_partition_is_complete() {
        let mut total = 0;
        for l2 in Level2::ALL {
            total += l2.categories().len();
        }
        assert_eq!(total, 35, "every category in exactly one group");
    }

    #[test]
    fn group_sizes_match_paper() {
        assert_eq!(Level2::PersonalIdentifiers.categories().len(), 7);
        assert_eq!(Level2::DeviceIdentifiers.categories().len(), 3);
        assert_eq!(Level2::PersonalCharacteristics.categories().len(), 11);
        assert_eq!(Level2::PersonalHistory.categories().len(), 1);
        assert_eq!(Level2::Geolocation.categories().len(), 3);
        assert_eq!(Level2::UserCommunications.categories().len(), 4);
        assert_eq!(Level2::Sensors.categories().len(), 1);
        assert_eq!(Level2::UserInterestsAndBehaviors.categories().len(), 5);
    }

    #[test]
    fn level1_roots() {
        assert_eq!(DataTypeCategory::DeviceInfo.level1(), Level1::Identifiers);
        assert_eq!(
            DataTypeCategory::AppServiceUsage.level1(),
            Level1::PersonalInformation
        );
        let identifiers = DataTypeCategory::ALL
            .iter()
            .filter(|c| c.is_identifier())
            .count();
        assert_eq!(
            identifiers, 10,
            "10 identifier categories (Table 2 left column)"
        );
    }

    #[test]
    fn labels_round_trip() {
        for c in DataTypeCategory::ALL {
            assert_eq!(DataTypeCategory::from_label(c.label()), Some(c));
            assert_eq!(
                DataTypeCategory::from_label(&c.label().to_uppercase()),
                Some(c)
            );
        }
        assert_eq!(DataTypeCategory::from_label("Nonsense"), None);
    }

    #[test]
    fn labels_are_unique() {
        let mut labels: Vec<&str> = DataTypeCategory::ALL.iter().map(|c| c.label()).collect();
        labels.sort();
        labels.dedup();
        assert_eq!(labels.len(), 35);
    }

    #[test]
    fn table4_rows_are_observed_groups() {
        assert_eq!(Level2::TABLE4_ROWS.len(), 6);
        assert!(!Level2::TABLE4_ROWS.contains(&Level2::Sensors));
        assert!(!Level2::TABLE4_ROWS.contains(&Level2::PersonalHistory));
    }
}
