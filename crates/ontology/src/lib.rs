#![forbid(unsafe_code)]
#![warn(missing_docs)]

//! # diffaudit-ontology
//!
//! The DiffAudit data-type ontology (paper Table 5), rooted in the COPPA and
//! CCPA legal definitions of *identifiers* and *personal information*
//! (16 C.F.R. § 312.2; Cal. Civ. Code § 1798.140).
//!
//! The ontology has four levels:
//!
//! 1. [`Level1`] — `Identifiers` vs `PersonalInformation` (the two legal
//!    roots);
//! 2. [`Level2`] — eight groups (personal identifiers, device identifiers,
//!    personal characteristics, personal history, geolocation, user
//!    communications, sensors, user interests and behaviors); Table 4 in the
//!    paper reports flows at this level;
//! 3. [`DataTypeCategory`] — the 35 classification labels (paper Table 2);
//!    these are the classifier's output space;
//! 4. the level-4 *vocabulary* — example terms per category
//!    ([`DataTypeCategory::vocabulary`]), used as few-shot examples by every
//!    classifier implementation.
//!
//! [`legal`] carries the statutory citations each category derives from, so
//! audit findings can cite chapter and verse.

pub mod legal;
mod level;
mod vocab;

pub use legal::{LegalBasis, LegalCitation};
pub use level::{DataTypeCategory, Level1, Level2};
