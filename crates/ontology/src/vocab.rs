//! Level-4 vocabulary: the example terms for each level-3 category, as
//! enumerated in paper Table 5.
//!
//! These terms serve two roles:
//! - they are the *few-shot examples* handed to every classifier (the paper
//!   passes "the category labels … and data types in each category" to
//!   GPT-4);
//! - the traffic generator derives its raw payload keys from them (with
//!   mutations — casing, concatenation, abbreviation — so classification is
//!   not a trivial lookup).

use crate::level::DataTypeCategory;

impl DataTypeCategory {
    /// The level-4 example terms for this category (Table 5).
    pub fn vocabulary(&self) -> &'static [&'static str] {
        use DataTypeCategory::*;
        match self {
            Name => &[
                "first name",
                "last name",
                "full name",
                "user name",
                "surname",
            ],
            LinkedPersonalIdentifiers => &[
                "social security number",
                "ssn",
                "driver's license number",
                "state identification card number",
                "passport number",
            ],
            ContactInfo => &[
                "email address",
                "email",
                "telephone number",
                "phone number",
                "mobile number",
            ],
            ReasonablyLinkablePersonalIdentifiers => &[
                "ip address",
                "unique pseudonym",
                "pseudonymous id",
                "user id",
                "account id",
                "profile id",
            ],
            Aliases => &[
                "alias",
                "online identifier",
                "unique personal identifier",
                "unique id",
                "guid",
                "uuid",
                "nickname",
                "handle",
            ],
            CustomerNumbers => &[
                "customer number",
                "account name",
                "insurance policy number",
                "bank account number",
                "credit card number",
                "debit card number",
            ],
            LoginInfo => &[
                "password",
                "login",
                "authorization",
                "authentication",
                "auth token",
                "access token",
                "session token",
                "credentials",
            ],
            DeviceHardwareIdentifiers => &[
                "imei",
                "mac address",
                "unique device identifier",
                "device id",
                "processor serial number",
                "device serial number",
                "android id",
                "hardware id",
            ],
            DeviceSoftwareIdentifiers => &[
                "advertising identifier",
                "advertising id",
                "idfa",
                "gaid",
                "cookie",
                "pixel tag",
                "beacon",
                "tracking identifier",
                "install id",
            ],
            DeviceInfo => &[
                "display",
                "height",
                "width",
                "fps",
                "browser",
                "bitrate",
                "abr",
                "speed",
                "device model",
                "delay",
                "os",
                "operating system",
                "os version",
                "rate",
                "screen",
                "sound",
                "memory",
                "cpu",
                "buffer",
                "latency",
                "download",
                "load",
                "frame",
                "depth",
                "download speed",
                "render",
                "battery",
                "resolution",
            ],
            Race => &[
                "race",
                "skin color",
                "national origin",
                "ancestry",
                "ethnicity",
            ],
            Age => &[
                "age",
                "birthday",
                "birth date",
                "date of birth",
                "dob",
                "birth year",
                "age group",
            ],
            Language => &["language", "locale", "preferred language", "lang"],
            Religion => &["religion", "religious affiliation", "faith"],
            GenderSex => &["gender", "sex", "sexual orientation", "pronouns"],
            MaritalStatus => &["marital status", "married", "spouse"],
            MilitaryVeteranStatus => &["military status", "veteran status", "veteran"],
            MedicalConditions => &[
                "medical condition",
                "health condition",
                "diagnosis",
                "medication",
            ],
            GeneticInfo => &["genetic information", "dna", "genome"],
            Disabilities => &["disability", "accessibility needs", "impairment"],
            BiometricInfo => &[
                "dna",
                "images",
                "voiceprint",
                "fingerprint",
                "patterns",
                "rhythms",
                "physical characteristics",
                "face scan",
            ],
            PersonalHistory => &[
                "employment",
                "education",
                "financial information",
                "medical information",
                "employer",
                "school",
                "income",
            ],
            PreciseGeolocation => &[
                "gps location",
                "gps",
                "coordinates",
                "postal address",
                "street address",
                "latitude",
                "longitude",
                "zip code",
                "altitude",
            ],
            CoarseGeolocation => &[
                "city", "town", "country", "region", "state", "province", "geo",
            ],
            LocationTime => &[
                "time",
                "timestamp",
                "timezone",
                "time zone",
                "time offset",
                "date",
                "utc offset",
                "local time",
            ],
            Communications => &[
                "audio communications",
                "text communications",
                "video communications",
                "message",
                "chat",
                "comment",
                "direct message",
            ],
            Contacts => &[
                "contact list",
                "contacts",
                "address book",
                "friends list",
                "people you communicate with",
            ],
            InternetActivity => &[
                "browsing history",
                "search history",
                "search query",
                "visited pages",
                "clickstream",
                "ip addresses communicated with",
            ],
            NetworkConnectionInfo => &[
                "request",
                "response",
                "dns",
                "tcp",
                "tls",
                "rtt",
                "ttfb",
                "protocol",
                "client",
                "connection",
                "key",
                "payload",
                "host",
                "referer",
                "telemetry",
                "cache",
                "network type",
                "carrier",
                "ssid",
                "bandwidth",
                "user agent",
            ],
            SensorData => &[
                "audio recording",
                "video recording",
                "microphone",
                "camera",
                "accelerometer",
                "gyroscope",
                "sensor data",
            ],
            ProductsAndAdvertising => &[
                "advertisement",
                "ad engagement",
                "ad impression",
                "ad click",
                "bid",
                "analytics",
                "marketing",
                "third party",
                "advertiser",
                "campaign",
                "products or services considered",
                "purchase records",
                "creative id",
                "placement",
            ],
            AppServiceUsage => &[
                "session",
                "usage session",
                "content",
                "video",
                "audio",
                "video buffer",
                "audio buffer",
                "play",
                "volume",
                "avatar",
                "behavior",
                "action",
                "event",
                "data",
                "status",
                "duration",
                "timing",
                "watch time",
                "scroll depth",
                "interaction",
                "screen view",
                "level",
                "score",
                "game state",
            ],
            AccountSettings => &[
                "account",
                "settings",
                "consent",
                "permission",
                "preferences",
                "notification settings",
                "privacy settings",
                "opt out",
                "opt in",
                "parental controls",
            ],
            ServiceInfo => &[
                "server",
                "sdk",
                "api",
                "site",
                "url",
                "domain",
                "version",
                "script",
                "uri",
                "application",
                "page",
                "app",
                "cdn",
                "dom",
                "build",
                "environment",
                "endpoint",
                "sdk version",
                "app version",
                "platform",
            ],
            InferencesAboutUsers => &[
                "user preferences",
                "characteristics",
                "psychological trends",
                "predispositions",
                "attitudes",
                "intelligence",
                "abilities",
                "aptitudes",
                "personality",
                "purchase history",
                "purchase tendency",
                "interest segment",
                "audience segment",
                "affinity",
                "recommendation profile",
            ],
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_category_has_vocabulary() {
        for c in DataTypeCategory::ALL {
            assert!(
                !c.vocabulary().is_empty(),
                "category {c:?} has empty vocabulary"
            );
        }
    }

    #[test]
    fn vocabulary_terms_are_lowercase_and_trimmed() {
        for c in DataTypeCategory::ALL {
            for term in c.vocabulary() {
                assert_eq!(*term, term.trim(), "untrimmed term {term:?} in {c:?}");
                assert_eq!(
                    *term,
                    term.to_lowercase(),
                    "non-lowercase term {term:?} in {c:?}"
                );
            }
        }
    }

    #[test]
    fn total_vocabulary_size_reasonable() {
        let total: usize = DataTypeCategory::ALL
            .iter()
            .map(|c| c.vocabulary().len())
            .sum();
        assert!(total > 200, "vocabulary too small: {total}");
    }

    #[test]
    fn no_term_duplicated_within_category() {
        for c in DataTypeCategory::ALL {
            let mut v = c.vocabulary().to_vec();
            v.sort_unstable();
            v.dedup();
            assert_eq!(v.len(), c.vocabulary().len(), "duplicate term in {c:?}");
        }
    }
}
