//! Micro-benchmarks for the capture substrate codecs: JSON, HAR, pcap,
//! Ethernet/IP/TCP framing, TCP reassembly, and the simulated TLS layer.
//!
//! With `--features bench` (requires a vendored Criterion) these run under
//! Criterion. Without it — the offline default — a std-only fallback harness
//! ([`diffaudit_bench::stopwatch`]) times the same workloads so the target
//! still compiles and runs with no external dependencies.

use diffaudit_domains::Url;
use diffaudit_nettrace::{Exchange, HttpRequest, HttpResponse};

fn sample_exchange(i: usize) -> Exchange {
    let mut req = HttpRequest::post(
        Url::parse(&format!("https://api{i}.example.com/v1/events?sid={i}")).unwrap(),
        "application/json",
        format!(
            r#"{{"device_id":"dev-{i}","os":"android 13","events":[{{"ts":{i},"action":"play"}},{{"ts":{},"action":"pause"}}],"lang":"en-US"}}"#,
            i + 1
        )
        .into_bytes(),
    );
    req.headers.push("User-Agent", "bench/1.0");
    req.headers.push("Cookie", "sid=abc123; theme=dark");
    Exchange {
        timestamp_ms: 1_700_000_000_000 + i as u64,
        request: req,
        response: HttpResponse::ok(),
    }
}

const JSON_DOC: &str = r#"{"user":{"id":"u-1","profile":{"age":12,"lang":"en"},"events":[{"t":1,"k":"a"},{"t":2,"k":"b"},{"t":3,"k":"c"}]},"meta":{"v":"1.2.3","payload":"{\"nested\":true}"}}"#;

#[cfg(feature = "bench")]
mod with_criterion {
    use super::{sample_exchange, JSON_DOC};
    use criterion::{criterion_group, BatchSize, Criterion, Throughput};
    use diffaudit_json::{flatten, parse};
    use diffaudit_nettrace::{
        decode_pcap, har_from_exchanges, har_to_exchanges, CaptureOptions, CaptureSession,
        Exchange, KeyLog, PcapReader,
    };
    use std::hint::black_box;

    fn bench_json(c: &mut Criterion) {
        let doc = JSON_DOC;
        let mut group = c.benchmark_group("json");
        group.throughput(Throughput::Bytes(doc.len() as u64));
        group.bench_function("parse", |b| b.iter(|| parse(black_box(doc)).unwrap()));
        let parsed = parse(doc).unwrap();
        group.bench_function("flatten", |b| b.iter(|| flatten(black_box(&parsed))));
        group.bench_function("serialize", |b| b.iter(|| black_box(&parsed).to_string()));
        group.finish();
    }

    fn bench_har(c: &mut Criterion) {
        let exchanges: Vec<Exchange> = (0..50).map(sample_exchange).collect();
        let har = har_from_exchanges(&exchanges).to_string();
        let mut group = c.benchmark_group("har");
        group.throughput(Throughput::Elements(exchanges.len() as u64));
        group.bench_function("serialize_50", |b| {
            b.iter(|| har_from_exchanges(black_box(&exchanges)).to_string())
        });
        group.bench_function("parse_50", |b| {
            b.iter(|| har_to_exchanges(black_box(&har)).unwrap())
        });
        group.finish();
    }

    fn bench_capture_decode(c: &mut Criterion) {
        let exchanges: Vec<Exchange> = (0..20).map(sample_exchange).collect();
        let mut session = CaptureSession::new(CaptureOptions::default());
        for ex in &exchanges {
            session.capture(ex);
        }
        let (pcap, keylog_text) = session.finish();
        let keylog = KeyLog::parse(&keylog_text);
        let mut group = c.benchmark_group("capture");
        group.throughput(Throughput::Bytes(pcap.len() as u64));
        group.bench_function("capture_20_exchanges", |b| {
            b.iter_batched(
                || CaptureSession::new(CaptureOptions::default()),
                |mut s| {
                    for ex in &exchanges {
                        s.capture(ex);
                    }
                    s.finish()
                },
                BatchSize::SmallInput,
            )
        });
        group.bench_function("pcap_parse", |b| {
            b.iter(|| PcapReader::parse(black_box(&pcap)).unwrap())
        });
        group.bench_function("decode_pcap_full", |b| {
            b.iter(|| decode_pcap(black_box(&pcap), black_box(&keylog)).unwrap())
        });
        group.finish();
    }

    criterion_group!(benches, bench_json, bench_har, bench_capture_decode);
}

#[cfg(feature = "bench")]
fn main() {
    with_criterion::benches();
}

#[cfg(not(feature = "bench"))]
fn main() {
    use diffaudit_bench::stopwatch::run;
    use diffaudit_json::{flatten, parse};
    use diffaudit_nettrace::{
        decode_pcap, har_from_exchanges, har_to_exchanges, CaptureOptions, CaptureSession, KeyLog,
        PcapReader,
    };
    use std::hint::black_box;

    let parsed = parse(JSON_DOC).unwrap();
    run("json/parse", || {
        black_box(parse(black_box(JSON_DOC)).unwrap());
    });
    run("json/flatten", || {
        black_box(flatten(black_box(&parsed)));
    });
    run("json/serialize", || {
        black_box(black_box(&parsed).to_string());
    });

    let exchanges: Vec<Exchange> = (0..50).map(sample_exchange).collect();
    let har = har_from_exchanges(&exchanges).to_string();
    run("har/serialize_50", || {
        black_box(har_from_exchanges(black_box(&exchanges)).to_string());
    });
    run("har/parse_50", || {
        black_box(har_to_exchanges(black_box(&har)).unwrap());
    });

    let capture_inputs: Vec<Exchange> = (0..20).map(sample_exchange).collect();
    let mut session = CaptureSession::new(CaptureOptions::default());
    for ex in &capture_inputs {
        session.capture(ex);
    }
    let (pcap, keylog_text) = session.finish();
    let keylog = KeyLog::parse(&keylog_text);
    run("capture/capture_20_exchanges", || {
        let mut s = CaptureSession::new(CaptureOptions::default());
        for ex in &capture_inputs {
            s.capture(ex);
        }
        black_box(s.finish());
    });
    run("capture/pcap_parse", || {
        black_box(PcapReader::parse(black_box(&pcap)).unwrap());
    });
    run("capture/decode_pcap_full", || {
        black_box(decode_pcap(black_box(&pcap), black_box(&keylog)).unwrap());
    });
}
