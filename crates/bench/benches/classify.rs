//! Micro-benchmarks for classification and destination analysis, including
//! the design-choice ablations called out in DESIGN.md: trie vs naive
//! block-list matching, and single-model vs ensemble classification.
//!
//! With `--features bench` (requires a vendored Criterion) these run under
//! Criterion; otherwise a std-only fallback harness times the same workloads.

use diffaudit_blocklist::matcher::NaiveMatcher;
use diffaudit_blocklist::{ats, DomainMatcher};
use diffaudit_domains::DomainName;

const KEYS: [&str; 12] = [
    "device_id",
    "advertisingIdentifier",
    "X-Forwarded-Lang",
    "os_ver",
    "rtt",
    "usr_bday",
    "zq7_blk",
    "session_token",
    "geo_country",
    "utm_campaign",
    "IsOptOutEmailShown",
    "pers_ad_show_third_part_measurement",
];

const HOSTS: [&str; 5] = [
    "stats.g.doubleclick.net",
    "browser.events.data.microsoft.com",
    "www.roblox.com",
    "shop.example.co.uk",
    "a.b.c.d.e.tracker.io",
];

const PROBES: [&str; 6] = [
    "stats.g.doubleclick.net",
    "api.roblox.com",
    "t.appsflyer.com",
    "cdn.shopify.com",
    "deep.sub.domain.clean-site.org",
    "metrics.roblox.com",
];

/// Build the trie and naive matchers over the embedded ATS lists.
fn matchers() -> (DomainMatcher, NaiveMatcher) {
    let lists = ats::embedded_lists();
    let mut trie = DomainMatcher::new();
    let mut naive = NaiveMatcher::new();
    for list in &lists {
        trie.add_list(&list.name, &list.domains);
        naive.add_list(&list.name, &list.domains);
    }
    (trie, naive)
}

fn parse_all(hosts: &[&str]) -> Vec<DomainName> {
    hosts
        .iter()
        .map(|h| DomainName::parse(h).unwrap())
        .collect()
}

#[cfg(feature = "bench")]
mod with_criterion {
    use super::{matchers, parse_all, HOSTS, KEYS, PROBES};
    use criterion::{criterion_group, Criterion, Throughput};
    use diffaudit_classifier::llm::{LlmClassifier, LlmOptions};
    use diffaudit_classifier::{ConfidenceAggregation, MajorityEnsemble};
    use diffaudit_domains::{extract, DomainName};
    use std::hint::black_box;

    fn bench_llm(c: &mut Criterion) {
        let model = LlmClassifier::new(LlmOptions::default());
        let ensemble = MajorityEnsemble::new(1, ConfidenceAggregation::Average);
        let mut group = c.benchmark_group("classify");
        group.throughput(Throughput::Elements(KEYS.len() as u64));
        group.bench_function("llm_batch_12", |b| {
            b.iter(|| model.classify_batch(black_box(&KEYS)))
        });
        group.bench_function("ensemble_batch_12", |b| {
            b.iter(|| ensemble.classify_batch(black_box(&KEYS)))
        });
        group.finish();
    }

    fn bench_domains(c: &mut Criterion) {
        let names: Vec<DomainName> = parse_all(&HOSTS);
        let mut group = c.benchmark_group("domains");
        group.throughput(Throughput::Elements(HOSTS.len() as u64));
        group.bench_function("parse_5", |b| {
            b.iter(|| {
                for h in &HOSTS {
                    black_box(DomainName::parse(h).unwrap());
                }
            })
        });
        group.bench_function("esld_extract_5", |b| {
            b.iter(|| {
                for n in &names {
                    black_box(extract(n).esld());
                }
            })
        });
        group.finish();
    }

    fn bench_blocklist(c: &mut Criterion) {
        // Ablation: trie matcher vs the naive linear-scan reference.
        let (trie, naive) = matchers();
        let probes = parse_all(&PROBES);
        let mut group = c.benchmark_group("blocklist");
        group.throughput(Throughput::Elements(probes.len() as u64));
        group.bench_function("trie_6_lookups", |b| {
            b.iter(|| {
                for p in &probes {
                    black_box(trie.is_blocked(p));
                }
            })
        });
        group.bench_function("naive_6_lookups", |b| {
            b.iter(|| {
                for p in &probes {
                    black_box(naive.is_blocked(p));
                }
            })
        });
        group.finish();
    }

    criterion_group!(benches, bench_llm, bench_domains, bench_blocklist);
}

#[cfg(feature = "bench")]
fn main() {
    with_criterion::benches();
}

#[cfg(not(feature = "bench"))]
fn main() {
    use diffaudit_bench::stopwatch::run;
    use diffaudit_classifier::llm::{LlmClassifier, LlmOptions};
    use diffaudit_classifier::{ConfidenceAggregation, MajorityEnsemble};
    use diffaudit_domains::extract;
    use std::hint::black_box;

    let model = LlmClassifier::new(LlmOptions::default());
    let ensemble = MajorityEnsemble::new(1, ConfidenceAggregation::Average);
    run("classify/llm_batch_12", || {
        black_box(model.classify_batch(black_box(&KEYS)));
    });
    run("classify/ensemble_batch_12", || {
        black_box(ensemble.classify_batch(black_box(&KEYS)));
    });

    let names = parse_all(&HOSTS);
    run("domains/parse_5", || {
        black_box(parse_all(black_box(&HOSTS)));
    });
    run("domains/esld_extract_5", || {
        for n in &names {
            black_box(extract(n).esld());
        }
    });

    let (trie, naive) = matchers();
    let probes = parse_all(&PROBES);
    run("blocklist/trie_6_lookups", || {
        for p in &probes {
            black_box(trie.is_blocked(p));
        }
    });
    run("blocklist/naive_6_lookups", || {
        for p in &probes {
            black_box(naive.is_blocked(p));
        }
    });
}
