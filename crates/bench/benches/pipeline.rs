//! End-to-end pipeline benchmarks: dataset generation and the full
//! decode → extract → classify → flow pipeline at reduced scale.
//!
//! With `--features bench` (requires a vendored Criterion) these run under
//! Criterion; otherwise a std-only fallback harness times the same workloads.

use diffaudit_services::DatasetOptions;

fn tiny_options() -> DatasetOptions {
    DatasetOptions {
        seed: 11,
        volume_scale: 0.02,
        mobile_pinned_fraction: 0.1,
        services: vec!["tiktok".into()],
    }
}

#[cfg(feature = "bench")]
mod with_criterion {
    use super::tiny_options;
    use criterion::{criterion_group, Criterion};
    use diffaudit::pipeline::{ClassificationMode, Pipeline};
    use diffaudit_services::generate_dataset;
    use std::hint::black_box;

    fn bench_generation(c: &mut Criterion) {
        let mut group = c.benchmark_group("pipeline");
        group.sample_size(10);
        group.bench_function("generate_tiktok_2pct", |b| {
            b.iter(|| generate_dataset(black_box(&tiny_options())))
        });
        group.finish();
    }

    fn bench_pipeline(c: &mut Criterion) {
        let dataset = generate_dataset(&tiny_options());
        let oracle = Pipeline::new(ClassificationMode::Oracle(dataset.key_truth.clone()));
        let ensemble = Pipeline::paper_default(11);
        let mut group = c.benchmark_group("pipeline");
        group.sample_size(10);
        group.bench_function("run_oracle_tiktok_2pct", |b| {
            b.iter(|| oracle.run(black_box(&dataset)))
        });
        group.bench_function("run_ensemble_tiktok_2pct", |b| {
            b.iter(|| ensemble.run(black_box(&dataset)))
        });
        group.finish();
    }

    criterion_group!(benches, bench_generation, bench_pipeline);
}

#[cfg(feature = "bench")]
fn main() {
    with_criterion::benches();
}

#[cfg(not(feature = "bench"))]
fn main() {
    use diffaudit::pipeline::{ClassificationMode, Pipeline};
    use diffaudit_bench::stopwatch::run;
    use diffaudit_services::generate_dataset;
    use std::hint::black_box;

    run("pipeline/generate_tiktok_2pct", || {
        black_box(generate_dataset(black_box(&tiny_options())));
    });

    let dataset = generate_dataset(&tiny_options());
    let oracle = Pipeline::new(ClassificationMode::Oracle(dataset.key_truth.clone()));
    let ensemble = Pipeline::paper_default(11);
    run("pipeline/run_oracle_tiktok_2pct", || {
        black_box(oracle.run(black_box(&dataset)));
    });
    run("pipeline/run_ensemble_tiktok_2pct", || {
        black_box(ensemble.run(black_box(&dataset)));
    });
}
