#![forbid(unsafe_code)]
#![warn(missing_docs)]

//! # diffaudit-bench
//!
//! The benchmark harness: one binary per paper table/figure (see
//! `src/bin/`) plus Criterion micro-benchmarks (see `benches/`).
//!
//! Every binary accepts `--scale <f64>` (default 1.0 = paper-scale traffic),
//! `--seed <u64>` (default 2023), and `--threads <usize>` (worker threads
//! for the parallel pipeline stages; default = available parallelism, 1 =
//! serial). Regeneration commands are indexed in `DESIGN.md` and results
//! are recorded in `EXPERIMENTS.md`.

use diffaudit::pipeline::{AuditOutcome, ClassificationMode, Pipeline};
use diffaudit_classifier::LabeledExample;
use diffaudit_obs as obs;
use diffaudit_ontology::DataTypeCategory;
use diffaudit_services::{generate_dataset_threads, DatasetOptions, GeneratedDataset};
use std::collections::HashMap;

/// Standard CLI options shared by all bench binaries.
#[derive(Debug, Clone)]
pub struct BenchArgs {
    /// Traffic volume multiplier.
    pub scale: f64,
    /// Master seed.
    pub seed: u64,
    /// Worker threads for the parallel pipeline stages. Passed explicitly
    /// to every stage ([`standard_dataset`], [`oracle_outcome`],
    /// [`ensemble_outcome`]) — there is no process-global default.
    pub threads: usize,
}

impl BenchArgs {
    /// Parse `--scale`/`--seed`/`--threads` from `std::env::args`; anything
    /// else prints usage and exits. Also raises the global `diffaudit-obs`
    /// recorder to `Info` so bench progress events reach stderr by default.
    pub fn parse() -> BenchArgs {
        BenchArgs::parse_extra(&[]).0
    }

    /// Like [`BenchArgs::parse`], but additionally accepts the given extra
    /// `--flag <value>` options; the returned vector holds the values in the
    /// same order as `extra` (None when a flag was not supplied).
    pub fn parse_extra(extra: &[&str]) -> (BenchArgs, Vec<Option<String>>) {
        obs::global().configure(obs::ObsConfig {
            level: Some(obs::Level::Info),
            stderr: None,
            trace: None,
        });
        let mut args = BenchArgs {
            scale: 1.0,
            seed: 2023,
            threads: diffaudit_util::par::available_threads(),
        };
        let mut values: Vec<Option<String>> = vec![None; extra.len()];
        let mut iter = std::env::args().skip(1);
        while let Some(flag) = iter.next() {
            match flag.as_str() {
                "--scale" => {
                    args.scale = iter
                        .next()
                        .and_then(|v| v.parse().ok())
                        .unwrap_or_else(|| usage("--scale requires a float"));
                }
                "--seed" => {
                    args.seed = iter
                        .next()
                        .and_then(|v| v.parse().ok())
                        .unwrap_or_else(|| usage("--seed requires an integer"));
                }
                "--threads" => {
                    args.threads = iter
                        .next()
                        .and_then(|v| v.parse().ok())
                        .filter(|&n: &usize| n >= 1)
                        .unwrap_or_else(|| usage("--threads requires a positive integer"));
                }
                other => match extra.iter().position(|e| *e == other) {
                    Some(slot) => {
                        values[slot] = Some(
                            iter.next()
                                .unwrap_or_else(|| usage(&format!("{other} requires a value"))),
                        );
                    }
                    None => usage(&format!("unknown flag {other:?}")),
                },
            }
        }
        (args, values)
    }

    /// Emit a standard `info` progress event for a bench stage, tagged with
    /// the scale and seed in play.
    pub fn announce(&self, stage: &str) {
        obs::info(
            stage,
            &[
                obs::field("scale", self.scale),
                obs::field("seed", self.seed),
            ],
        );
    }
}

fn usage(message: &str) -> ! {
    obs::error(message, &[]);
    obs::write_stderr_block("usage: <bin> [--scale <f64>] [--seed <u64>] [--threads <usize>]\n");
    std::process::exit(2);
}

/// Generate the standard dataset for these args (packaging runs on
/// `args.threads` workers).
pub fn standard_dataset(args: &BenchArgs) -> GeneratedDataset {
    generate_dataset_threads(
        &DatasetOptions {
            seed: args.seed,
            volume_scale: args.scale,
            mobile_pinned_fraction: 0.12,
            services: Vec::new(),
        },
        args.threads,
    )
}

/// Run the pipeline in oracle mode (ground-truth labels), which isolates
/// flow-level results from classifier noise — the configuration used for
/// the flow tables/figures, where the paper relied on its validated labels.
pub fn oracle_outcome(args: &BenchArgs, dataset: &GeneratedDataset) -> AuditOutcome {
    Pipeline::new(ClassificationMode::Oracle(dataset.key_truth.clone()))
        .with_threads(args.threads)
        .run(dataset)
}

/// Run the pipeline in the paper's ensemble configuration.
pub fn ensemble_outcome(args: &BenchArgs, dataset: &GeneratedDataset, seed: u64) -> AuditOutcome {
    Pipeline::paper_default(seed)
        .with_threads(args.threads)
        .run(dataset)
}

/// Turn the dataset's key ground truth into labeled validation examples,
/// sorted for determinism.
pub fn labeled_examples(truth: &HashMap<String, DataTypeCategory>) -> Vec<LabeledExample> {
    let mut examples: Vec<LabeledExample> = truth
        .iter()
        .map(|(raw, &t)| LabeledExample {
            raw: raw.clone(),
            truth: t,
        })
        .collect();
    examples.sort_by(|a, b| a.raw.cmp(&b.raw));
    examples
}

/// Format a fraction as the paper does (two decimals).
pub fn fmt2(x: f64) -> String {
    format!("{x:.2}")
}

/// Minimal std-only timing harness used by the `benches/` targets when the
/// `bench` feature (Criterion) is off — the offline default, since Criterion
/// cannot be fetched from the registry. It auto-scales iteration counts to
/// ~50ms per workload and prints ns/iter, which is enough to spot order-of-
/// magnitude regressions without any external dependency.
pub mod stopwatch {
    use std::time::{Duration, Instant};

    /// Time `f`, printing `name`, the iteration count, and ns/iter.
    pub fn run(name: &str, mut f: impl FnMut()) {
        // Warm-up, and a single timed call to pick the iteration count.
        f();
        let probe = Instant::now();
        f();
        let once = probe.elapsed().as_nanos().max(1);
        let budget = Duration::from_millis(50).as_nanos();
        let iters = (budget / once).clamp(1, 100_000) as u64;
        let timer = Instant::now();
        for _ in 0..iters {
            f();
        }
        let per = timer.elapsed().as_nanos() / u128::from(iters);
        println!("{name:<40} {iters:>7} iters  {per:>12} ns/iter");
    }
}
