//! Regenerates the **§4.2 destination census**: counts of distinct
//! first-party, first-party-ATS, third-party, and third-party-ATS FQDNs
//! across the whole dataset, plus the number of distinct resolvable
//! organizations (the paper reports 320 / 33 / 150 / 485 destinations over
//! at least 212 companies).

use diffaudit_bench::{oracle_outcome, standard_dataset, BenchArgs};
use diffaudit_blocklist::DestinationClass;
use std::collections::{BTreeMap, BTreeSet};

fn main() {
    let args = BenchArgs::parse();
    args.announce("[destinations] generating dataset");
    let dataset = standard_dataset(&args);
    let outcome = oracle_outcome(&args, &dataset);

    let mut by_class: BTreeMap<&'static str, BTreeSet<String>> = BTreeMap::new();
    let mut orgs: BTreeSet<&'static str> = BTreeSet::new();
    let mut unresolved: BTreeSet<String> = BTreeSet::new();
    for service in &outcome.services {
        for unit in &service.units {
            for ex in &unit.exchanges {
                by_class
                    .entry(ex.class.label())
                    .or_default()
                    .insert(ex.fqdn.clone());
                match ex.owner {
                    Some(org) => {
                        orgs.insert(org);
                    }
                    None => {
                        unresolved.insert(ex.esld.clone());
                    }
                }
            }
        }
    }

    println!("Destination census (§4.2):");
    for class in DestinationClass::ALL {
        let count = by_class.get(class.label()).map_or(0, BTreeSet::len);
        println!("  {:<14} {count:>5} distinct FQDNs", class.label());
    }
    println!(
        "\n  Resolvable organizations: {} (plus {} eSLDs with unknown owner)",
        orgs.len(),
        unresolved.len()
    );
    println!(
        "  Total \"companies\" (resolved orgs + unknown-owner eSLDs): {}",
        orgs.len() + unresolved.len()
    );
}
