//! Regenerates **Figure 4**: sizes of the largest sets of linkable data
//! types per service and trace category, plus the most common linkable set
//! across the dataset.

use diffaudit::report::render_fig4;
use diffaudit_bench::{oracle_outcome, standard_dataset, BenchArgs};

fn main() {
    let args = BenchArgs::parse();
    args.announce("[fig4] generating dataset");
    let dataset = standard_dataset(&args);
    let outcome = oracle_outcome(&args, &dataset);
    print!("{}", render_fig4(&outcome));
}
