//! Emits a `diffaudit-obs/v1` metrics snapshot with resource profiling
//! enabled for a full ensemble pipeline run — the producer of the committed
//! `BENCH_mem.json` max-RSS baseline that `diffaudit obs diff
//! --fail-rss-over` checks as an advisory step in `scripts/check.sh`.
//!
//! Usage: `pipeline_mem [--scale <f64>] [--seed <u64>] [--sample-ms <u64>]
//! [--out <path>]`. Without `--out` the snapshot JSON goes to stdout. On a
//! box without `/proc` (non-Linux) the run still completes and the snapshot
//! simply carries no `resources` section — `obs diff` then reports the
//! resource gate as informational, so the baseline check degrades instead
//! of failing.

use diffaudit_bench::{ensemble_outcome, standard_dataset, BenchArgs};
use diffaudit_obs as obs;
use std::time::Duration;

fn main() {
    let (args, extra) = BenchArgs::parse_extra(&["--out", "--sample-ms"]);
    let mut extra = extra.into_iter();
    let out = extra.next().flatten();
    let sample_ms: u64 = extra
        .next()
        .flatten()
        .and_then(|v| v.parse().ok())
        .unwrap_or(10);

    if !obs::enable_resources(Duration::from_millis(sample_ms.max(1))) {
        obs::warn(
            "[pipeline_mem] /proc unavailable; snapshot will carry no resource samples",
            &[],
        );
    }

    args.announce("[pipeline_mem] generating dataset");
    let dataset = {
        let _span = obs::span("bench.generate");
        standard_dataset(&args)
    };

    obs::info("[pipeline_mem] running ensemble pipeline", &[]);
    let outcome = {
        let _span = obs::span("bench.pipeline");
        ensemble_outcome(&args, &dataset, args.seed)
    };
    obs::add("bench.services", outcome.services.len() as u64);
    obs::add(
        "bench.units",
        outcome.services.iter().map(|s| s.units.len() as u64).sum(),
    );

    let doc = obs::snapshot().to_json().to_pretty_string();
    match out {
        Some(path) => {
            if let Err(err) = std::fs::write(&path, format!("{doc}\n")) {
                obs::error(
                    "[pipeline_mem] cannot write snapshot",
                    &[
                        obs::field("path", path.as_str()),
                        obs::field("error", err.to_string()),
                    ],
                );
                std::process::exit(1);
            }
            obs::info(
                "[pipeline_mem] snapshot written",
                &[obs::field("path", path.as_str())],
            );
        }
        None => println!("{doc}"),
    }
}
