//! Regenerates the **§3.2.2 baseline comparison**: sample accuracy of the
//! alternative classifiers (fuzzy TF-IDF, fuzzy BERT, zero-shot, few-shot)
//! against the GPT-4 simulator, on the same 10% validation sample as
//! Table 3. The paper reports 31% / 18% / 4% / 16% respectively, far below
//! GPT-4.

use diffaudit_bench::{labeled_examples, standard_dataset, BenchArgs};
use diffaudit_classifier::fewshot::FewShot;
use diffaudit_classifier::fuzzy::{FuzzyBert, FuzzyTfIdf};
use diffaudit_classifier::validate::sample_fraction;
use diffaudit_classifier::zeroshot::ZeroShot;
use diffaudit_classifier::{Classifier, ConfidenceAggregation, MajorityEnsemble};
use diffaudit_obs as obs;

fn accuracy(clf: &mut dyn Classifier, sample: &[diffaudit_classifier::LabeledExample]) -> f64 {
    let correct = sample
        .iter()
        .filter(|e| clf.classify(&e.raw).map(|(c, _)| c) == Some(e.truth))
        .count();
    correct as f64 / sample.len() as f64
}

fn main() {
    let args = BenchArgs::parse();
    args.announce("[baselines] generating dataset");
    let dataset = standard_dataset(&args);
    let examples = labeled_examples(&dataset.key_truth);
    let sample = sample_fraction(&examples, 0.10, args.seed ^ 0x5A5A);
    obs::info(
        "[baselines] validation sample",
        &[obs::field("n", sample.len())],
    );

    println!(
        "Baseline classifier comparison (sample accuracy, n={}):",
        sample.len()
    );
    let mut tfidf = FuzzyTfIdf::new();
    let mut bert = FuzzyBert::new();
    let mut zero = ZeroShot::new();
    let mut few = FewShot::new();
    let mut gpt = MajorityEnsemble::new(args.seed, ConfidenceAggregation::Average);
    let rows: Vec<(&str, f64)> = vec![
        ("gpt4-sim (majority-avg)", accuracy(&mut gpt, &sample)),
        ("fuzzy string + TF-IDF", accuracy(&mut tfidf, &sample)),
        ("fuzzy string + BERT-toy", accuracy(&mut bert, &sample)),
        ("few-shot (SetFit-style)", accuracy(&mut few, &sample)),
        ("zero-shot (labels only)", accuracy(&mut zero, &sample)),
    ];
    for (name, acc) in &rows {
        println!("  {name:<26} {:>5.1}%", acc * 100.0);
    }
    // The paper's ordering: GPT-4 >> TF-IDF > BERT ≈ few-shot >> zero-shot.
    let ok = rows[0].1 > rows[1].1
        && rows[1].1 > rows[4].1
        && rows[2].1 > rows[4].1
        && rows[3].1 > rows[4].1;
    println!(
        "\n  ordering check (GPT-4 > TF-IDF > {{BERT, few-shot}} > zero-shot): {}",
        if ok { "HOLDS" } else { "VIOLATED" }
    );
}
