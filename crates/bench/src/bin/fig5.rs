//! Regenerates **Figure 5**: the top-10 most-contacted third-party ATS
//! organizations that were sent linkable data, per service and trace
//! category (the alluvial diagram's source data).

use diffaudit::report::render_fig5;
use diffaudit_bench::{oracle_outcome, standard_dataset, BenchArgs};

fn main() {
    let args = BenchArgs::parse();
    args.announce("[fig5] generating dataset");
    let dataset = standard_dataset(&args);
    let outcome = oracle_outcome(&args, &dataset);
    print!("{}", render_fig5(&outcome, 10));
}
