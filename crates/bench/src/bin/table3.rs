//! Regenerates **Table 3**: GPT-4 classification model sample validation —
//! accuracy and coverage per temperature and per majority-vote strategy at
//! confidence thresholds 0.7/0.8/0.9, over a random 10% sample of the
//! dataset's unique raw data types (the paper's n=397 protocol).

use diffaudit_bench::{labeled_examples, standard_dataset, BenchArgs};
use diffaudit_classifier::llm::{LlmClassifier, LlmOptions};
use diffaudit_classifier::majority::{MajorityEnsemble, TEMPERATURE_GRID};
use diffaudit_classifier::validate::{sample_fraction, validate, ValidationReport};
use diffaudit_classifier::ConfidenceAggregation;
use diffaudit_obs as obs;

fn print_row(report: &ValidationReport) {
    print!(
        "{:<14} {:>8}",
        report.model,
        format!("{:.2}", report.accuracy)
    );
    for t in &report.thresholds {
        print!("  {:>8} {:>7}", format!("{:.2}", t.accuracy), t.labeled);
    }
    println!();
}

fn main() {
    let args = BenchArgs::parse();
    args.announce("[table3] generating dataset");
    let dataset = standard_dataset(&args);
    let examples = labeled_examples(&dataset.key_truth);
    let sample = sample_fraction(&examples, 0.10, args.seed ^ 0x5A5A);
    let refs: Vec<&str> = sample.iter().map(|e| e.raw.as_str()).collect();
    obs::info(
        "[table3] data types",
        &[
            obs::field("unique", examples.len()),
            obs::field("sampleN", sample.len()),
        ],
    );

    println!(
        "Table 3: GPT-4 Classification Model Sample Validation Results (n={})",
        sample.len()
    );
    println!(
        "{:<14} {:>8}  {:>8} {:>7}  {:>8} {:>7}  {:>8} {:>7}",
        "Temp/Method", "Accuracy", "Acc@0.7", "Labeled", "Acc@0.8", "Labeled", "Acc@0.9", "Labeled"
    );
    for &temperature in &TEMPERATURE_GRID {
        let model = LlmClassifier::new(LlmOptions {
            temperature,
            seed: args.seed,
        });
        let results = model.classify_batch(&refs);
        let report = validate(&format!("{temperature}"), &results, &sample);
        print_row(&report);
    }
    for (name, aggregation) in [
        ("Majority-Max", ConfidenceAggregation::Max),
        ("Majority-Avg", ConfidenceAggregation::Average),
    ] {
        let ensemble = MajorityEnsemble::new(args.seed, aggregation);
        let results = ensemble.classify_batch(&refs);
        let report = validate(name, &results, &sample);
        print_row(&report);
    }
}
