//! Regenerates **Table 2**: the data-type categories of the ontology, with
//! an asterisk marking each category observed in the generated dataset
//! (the paper observed 19 of 35).

use diffaudit_bench::{oracle_outcome, standard_dataset, BenchArgs};
use diffaudit_ontology::{DataTypeCategory, Level1};
use std::collections::BTreeSet;

fn main() {
    let args = BenchArgs::parse();
    args.announce("[table2] generating dataset");
    let dataset = standard_dataset(&args);
    let outcome = oracle_outcome(&args, &dataset);

    let mut observed: BTreeSet<DataTypeCategory> = BTreeSet::new();
    for service in &outcome.services {
        for unit in &service.units {
            for ex in &unit.exchanges {
                observed.extend(ex.categories.iter().copied());
            }
        }
    }

    println!("Table 2: Data Type Categories From Our Ontology ('*' = observed)");
    for root in Level1::ALL {
        println!("\n{} :", root.label());
        for category in DataTypeCategory::ALL {
            if category.level1() != root {
                continue;
            }
            let star = if observed.contains(&category) {
                "*"
            } else {
                " "
            };
            println!("  {}{}", category.label(), star);
        }
    }
    println!(
        "\nObserved: {} of {} categories",
        observed.len(),
        DataTypeCategory::ALL.len()
    );
}
