//! **Extension (paper §3.2.2)**: distillation of the LLM ensemble into a
//! small local model.
//!
//! The ensemble labels the training split (90% of unique raw keys); a
//! nearest-centroid TF-IDF student trains on the confident labels and is
//! evaluated on the held-out 10% validation sample against ground truth —
//! alongside the teacher itself — with wall-clock timings showing the
//! speedup a local model buys.

use diffaudit_bench::{labeled_examples, standard_dataset, BenchArgs};
use diffaudit_classifier::validate::sample_fraction;
use diffaudit_classifier::{
    Classifier, ConfidenceAggregation, DistillOptions, DistilledModel, LabeledExample,
    MajorityEnsemble,
};
use diffaudit_obs as obs;
use std::collections::HashSet;
use std::time::Instant;

fn accuracy(clf: &mut dyn Classifier, sample: &[LabeledExample]) -> f64 {
    let correct = sample
        .iter()
        .filter(|e| clf.classify(&e.raw).map(|(c, _)| c) == Some(e.truth))
        .count();
    correct as f64 / sample.len() as f64
}

fn main() {
    let args = BenchArgs::parse();
    args.announce("[distill] generating dataset");
    let dataset = standard_dataset(&args);
    let examples = labeled_examples(&dataset.key_truth);
    let holdout = sample_fraction(&examples, 0.10, args.seed ^ 0x5A5A);
    let holdout_keys: HashSet<&str> = holdout.iter().map(|e| e.raw.as_str()).collect();
    let train_keys: Vec<&str> = examples
        .iter()
        .map(|e| e.raw.as_str())
        .filter(|k| !holdout_keys.contains(k))
        .collect();
    obs::info(
        "[distill] split keys",
        &[
            obs::field("train", train_keys.len()),
            obs::field("holdout", holdout.len()),
        ],
    );

    // Teacher labels the training corpus once.
    let teacher = MajorityEnsemble::new(args.seed, ConfidenceAggregation::Average);
    let t0 = Instant::now();
    let teacher_labels = teacher.classify_batch(&train_keys);
    let teacher_label_time = t0.elapsed();

    // Student trains on confident labels.
    let t0 = Instant::now();
    let mut student = DistilledModel::train(&teacher_labels, &DistillOptions::default());
    let train_time = t0.elapsed();
    obs::info(
        "[distill] student trained",
        &[
            obs::field("labels", student.training_examples),
            obs::field("categories", student.category_count()),
            obs::field("trainTime", format!("{train_time:?}")),
        ],
    );

    // Evaluate both on the held-out sample.
    let mut teacher_eval = MajorityEnsemble::new(args.seed, ConfidenceAggregation::Average);
    let t0 = Instant::now();
    let teacher_acc = accuracy(&mut teacher_eval, &holdout);
    let teacher_time = t0.elapsed();
    let t0 = Instant::now();
    let student_acc = accuracy(&mut student, &holdout);
    let student_time = t0.elapsed();

    println!("Distillation (held-out n={}):", holdout.len());
    println!(
        "  teacher (majority-avg ensemble)  accuracy {:>5.1}%   eval {:?} (labeling the training set took {:?})",
        teacher_acc * 100.0,
        teacher_time,
        teacher_label_time
    );
    println!(
        "  student (TF-IDF nearest-centroid) accuracy {:>5.1}%   eval {:?}",
        student_acc * 100.0,
        student_time
    );
    let speedup = teacher_time.as_secs_f64() / student_time.as_secs_f64().max(1e-9);
    println!(
        "  student speedup: {speedup:.0}x; accuracy retained: {:.0}%",
        student_acc / teacher_acc.max(1e-9) * 100.0
    );
}
