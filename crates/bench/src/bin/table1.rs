//! Regenerates **Table 1**: the network traffic dataset summary (unique
//! domains, eSLDs, packets, TCP flows per service) plus the paper's headline
//! statistics (§1: >440K outgoing packets, 964 domains, 326 eSLDs, 3,968
//! unique data types, 5,508 unique data flows).
//!
//! Services are generated and processed one at a time so paper-scale runs
//! stay within memory.

use diffaudit::pipeline::{ClassificationMode, Pipeline};
use diffaudit::stats::{summarize, DatasetSummary};
use diffaudit_bench::BenchArgs;
use diffaudit_obs as obs;
use diffaudit_services::{generate_dataset_threads, DatasetOptions};

fn main() {
    let args = BenchArgs::parse();
    args.announce("[table1] generating dataset");
    let options = DatasetOptions {
        seed: args.seed,
        volume_scale: args.scale,
        mobile_pinned_fraction: 0.12,
        services: Vec::new(),
    };
    let dataset = generate_dataset_threads(&options, args.threads);
    obs::info("[table1] running pipeline", &[]);
    let outcome = Pipeline::new(ClassificationMode::Oracle(dataset.key_truth.clone()))
        .with_threads(args.threads)
        .run(&dataset);
    let summary: DatasetSummary = summarize(&outcome);
    print!("{}", diffaudit::report::render_table1(&summary));
}
