//! Cold-vs-warm pipeline benchmark for the persistent classification cache
//! — the producer of the committed `BENCH_cache.json` baseline that
//! `diffaudit obs diff` checks in `scripts/check.sh`.
//!
//! Usage: `pipeline_cached --cache-dir <dir> [--scale <f64>] [--seed <u64>]
//! [--warm-budget-ms <u64>] [--out <path>]`. The cache log inside
//! `--cache-dir` is removed first so
//! the first run is genuinely cold; the second run over the same dataset
//! must then be served entirely from the cache. The bin hard-asserts the
//! cache contract (cold inserts every unique key, warm hits all of them and
//! misses none) and exits 1 when it does not hold, so the check.sh step
//! fails loudly instead of committing a vacuous baseline. `--warm-budget-ms`
//! additionally checks the warm-run wall time against a budget and exits 2
//! (the advisory-regression code) when it is exceeded.

use diffaudit::pipeline::Pipeline;
use diffaudit_bench::{standard_dataset, BenchArgs};
use diffaudit_classifier::cache::{LOCK_FILE, LOG_FILE};
use diffaudit_obs as obs;
use std::path::Path;
use std::time::Instant;

fn main() {
    let (args, extra) = BenchArgs::parse_extra(&["--out", "--cache-dir", "--warm-budget-ms"]);
    let mut extra = extra.into_iter();
    let out = extra.next().flatten();
    let Some(cache_dir) = extra.next().flatten() else {
        obs::error("[pipeline_cached] --cache-dir <dir> is required", &[]);
        std::process::exit(2);
    };
    let warm_budget_ms: Option<u64> = match extra.next().flatten() {
        None => None,
        Some(v) => match v.parse() {
            Ok(ms) => Some(ms),
            Err(_) => {
                obs::error(
                    "[pipeline_cached] --warm-budget-ms requires an integer",
                    &[],
                );
                std::process::exit(2);
            }
        },
    };
    // Start cold: drop any previous log (and a stale lock) but leave the
    // directory itself alone.
    let dir = Path::new(&cache_dir);
    let _ = std::fs::remove_file(dir.join(LOG_FILE));
    let _ = std::fs::remove_file(dir.join(LOCK_FILE));

    args.announce("[pipeline_cached] generating dataset");
    let dataset = {
        let _span = obs::span("bench.generate");
        standard_dataset(&args)
    };

    obs::info("[pipeline_cached] cold run (cache empty)", &[]);
    let cold_timer = Instant::now();
    let cold = {
        let _span = obs::span("bench.pipeline.cold");
        Pipeline::paper_default(args.seed)
            .with_threads(args.threads)
            .with_cache_dir(dir)
            .run(&dataset)
    };
    let cold_us = cold_timer.elapsed().as_micros() as u64;

    obs::info("[pipeline_cached] warm run (cache primed)", &[]);
    let warm_timer = Instant::now();
    let warm = {
        let _span = obs::span("bench.pipeline.warm");
        Pipeline::paper_default(args.seed)
            .with_threads(args.threads)
            .with_cache_dir(dir)
            .run(&dataset)
    };
    let warm_us = warm_timer.elapsed().as_micros() as u64;

    // The cache contract, hard-asserted: a cold run inserts every unique
    // classified key; a warm run over the same inputs hits all of them and
    // never reaches the ensemble.
    let (Some(cold_cache), Some(warm_cache)) = (cold.cache.as_ref(), warm.cache.as_ref()) else {
        obs::error("[pipeline_cached] pipeline ran uncached", &[]);
        std::process::exit(1);
    };
    if cold_cache.inserts == 0 || cold_cache.inserts != cold_cache.misses {
        obs::error(
            "[pipeline_cached] cold run must insert every miss",
            &[
                obs::field("misses", cold_cache.misses),
                obs::field("inserts", cold_cache.inserts),
            ],
        );
        std::process::exit(1);
    }
    if warm_cache.misses != 0 || warm_cache.hits != cold_cache.hits + cold_cache.misses {
        obs::error(
            "[pipeline_cached] warm run must be fully cache-served",
            &[
                obs::field("warmHits", warm_cache.hits),
                obs::field("warmMisses", warm_cache.misses),
                obs::field("coldKeys", cold_cache.hits + cold_cache.misses),
            ],
        );
        std::process::exit(1);
    }
    if warm.key_labels != cold.key_labels {
        obs::error(
            "[pipeline_cached] warm labels diverge from cold labels",
            &[],
        );
        std::process::exit(1);
    }

    obs::add("bench.services", warm.services.len() as u64);
    obs::add("bench.cache.keys", warm_cache.hits);
    obs::info(
        "[pipeline_cached] cache contract holds",
        &[
            obs::field("keys", warm_cache.hits),
            obs::field("coldMs", cold_us / 1000),
            obs::field("warmMs", warm_us / 1000),
            obs::field(
                "hitRatio",
                warm_cache.hits as f64 / (warm_cache.hits + warm_cache.misses).max(1) as f64,
            ),
        ],
    );

    let doc = obs::snapshot().to_json().to_pretty_string();
    match out {
        Some(path) => {
            if let Err(err) = std::fs::write(&path, format!("{doc}\n")) {
                obs::error(
                    "[pipeline_cached] cannot write snapshot",
                    &[
                        obs::field("path", path.as_str()),
                        obs::field("error", err.to_string()),
                    ],
                );
                std::process::exit(1);
            }
            obs::info(
                "[pipeline_cached] snapshot written",
                &[obs::field("path", path.as_str())],
            );
        }
        None => println!("{doc}"),
    }

    // The warm-run wall budget is checked last so the snapshot is written
    // either way; exit 2 is the advisory-regression code check.sh warns on.
    if let Some(budget_ms) = warm_budget_ms {
        if warm_us / 1000 > budget_ms {
            obs::warn(
                "[pipeline_cached] warm run exceeded its wall budget",
                &[
                    obs::field("warmMs", warm_us / 1000),
                    obs::field("budgetMs", budget_ms),
                ],
            );
            std::process::exit(2);
        }
    }
}
