//! **Ablation A1**: the design choices behind the paper's final labeling
//! configuration (majority-average at confidence 0.8).
//!
//! Sweeps the confidence threshold over a dense grid for both aggregation
//! strategies and for the single best temperature, showing the
//! accuracy/coverage trade-off that motivates the paper's choice.

use diffaudit_bench::{labeled_examples, standard_dataset, BenchArgs};
use diffaudit_classifier::llm::{LlmClassifier, LlmOptions};
use diffaudit_classifier::validate::{sample_fraction, validate_at};
use diffaudit_classifier::{ConfidenceAggregation, MajorityEnsemble};

const THRESHOLDS: [f64; 10] = [0.50, 0.55, 0.60, 0.65, 0.70, 0.75, 0.80, 0.85, 0.90, 0.95];

fn main() {
    let args = BenchArgs::parse();
    args.announce("[ablation] generating dataset");
    let dataset = standard_dataset(&args);
    let examples = labeled_examples(&dataset.key_truth);
    let sample = sample_fraction(&examples, 0.10, args.seed ^ 0x5A5A);
    let refs: Vec<&str> = sample.iter().map(|e| e.raw.as_str()).collect();

    println!("Ablation: confidence threshold sweep (n={})", sample.len());
    println!(
        "{:<16} {}",
        "model",
        THRESHOLDS.map(|t| format!("{t:>11.2}")).join("")
    );

    let configs: Vec<(String, Vec<diffaudit_classifier::Classification>)> = vec![
        (
            "temp-0".into(),
            LlmClassifier::new(LlmOptions {
                temperature: 0.0,
                seed: args.seed,
            })
            .classify_batch(&refs),
        ),
        (
            "majority-max".into(),
            MajorityEnsemble::new(args.seed, ConfidenceAggregation::Max).classify_batch(&refs),
        ),
        (
            "majority-avg".into(),
            MajorityEnsemble::new(args.seed, ConfidenceAggregation::Average).classify_batch(&refs),
        ),
    ];
    for (name, results) in &configs {
        let report = validate_at(name, results, &sample, &THRESHOLDS);
        let acc_row: String = report
            .thresholds
            .iter()
            .map(|t| format!("{:>11}", format!("{:.2}", t.accuracy)))
            .collect();
        let cov_row: String = report
            .thresholds
            .iter()
            .map(|t| format!("{:>11}", t.labeled))
            .collect();
        println!("{:<16} {}", format!("{name} acc"), acc_row);
        println!("{:<16} {}", format!("{name} n"), cov_row);
    }
    println!("\nThe paper selects majority-avg @ 0.8: best accuracy at acceptable coverage.");
}
