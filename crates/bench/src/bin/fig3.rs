//! Regenerates **Figure 3**: counts of third parties (ATS and non-ATS) sent
//! linkable data types, per service and trace category.

use diffaudit::report::render_fig3;
use diffaudit_bench::{oracle_outcome, standard_dataset, BenchArgs};

fn main() {
    let args = BenchArgs::parse();
    args.announce("[fig3] generating dataset");
    let dataset = standard_dataset(&args);
    let outcome = oracle_outcome(&args, &dataset);
    print!("{}", render_fig3(&outcome));
}
