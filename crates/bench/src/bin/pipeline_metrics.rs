//! Emits a `diffaudit-obs/v1` metrics snapshot for a full ensemble pipeline
//! run — the producer of the committed `BENCH_pipeline.json` perf baseline
//! that `diffaudit obs diff` checks in `scripts/check.sh`.
//!
//! Usage: `pipeline_metrics [--scale <f64>] [--seed <u64>] [--out <path>]`.
//! Without `--out` the snapshot JSON goes to stdout. The run is wrapped in
//! `bench.generate` / `bench.pipeline` spans so the snapshot carries
//! per-stage wall times alongside the pipeline's own instrumentation.

use diffaudit_bench::{ensemble_outcome, standard_dataset, BenchArgs};
use diffaudit_obs as obs;

fn main() {
    let (args, extra) = BenchArgs::parse_extra(&["--out"]);
    let out = extra.into_iter().next().flatten();

    args.announce("[pipeline_metrics] generating dataset");
    let dataset = {
        let _span = obs::span("bench.generate");
        standard_dataset(&args)
    };

    obs::info("[pipeline_metrics] running ensemble pipeline", &[]);
    let outcome = {
        let _span = obs::span("bench.pipeline");
        ensemble_outcome(&args, &dataset, args.seed)
    };
    obs::add("bench.services", outcome.services.len() as u64);
    obs::add(
        "bench.units",
        outcome.services.iter().map(|s| s.units.len() as u64).sum(),
    );

    let doc = obs::snapshot().to_json().to_pretty_string();
    match out {
        Some(path) => {
            if let Err(err) = std::fs::write(&path, format!("{doc}\n")) {
                obs::error(
                    "[pipeline_metrics] cannot write snapshot",
                    &[
                        obs::field("path", path.as_str()),
                        obs::field("error", err.to_string()),
                    ],
                );
                std::process::exit(1);
            }
            obs::info(
                "[pipeline_metrics] snapshot written",
                &[obs::field("path", path.as_str())],
            );
        }
        None => println!("{doc}"),
    }
}
