//! Load generator and smoke driver for the `diffaudit serve` daemon — the
//! producer of the committed `BENCH_serve.json` throughput/latency baseline.
//!
//! Modes:
//!
//! - `--mode load` (default): boots an in-process daemon with a bounded
//!   queue, fires a burst of concurrent job submissions wider than the
//!   queue (default 8 submitters vs capacity 4) so load shedding is
//!   actually exercised, retries shed submissions until accepted, polls
//!   every job to a terminal state, and writes a JSON summary with
//!   observed `429` counts, throughput, and p50/p90/p99 end-to-end job
//!   latency. A scraper thread polls `GET /metrics` throughout the burst
//!   and records the queue-depth series plus the server-side shed counter
//!   into the summary's `telemetry` block; a mismatch between the
//!   server's `serve.queue.shed` counter and the client's observed 429s
//!   is a hard failure. Fails (exit 1) if no submission was ever shed —
//!   that means the burst did not outrun the queue and the numbers are
//!   meaningless.
//!
//! - `--mode smoke --target HOST:PORT`: drives an externally booted
//!   daemon through the whole client lifecycle (health, upload, a small
//!   multi-job burst, a mid-job `/metrics` scrape that must parse and
//!   show a nonzero queue-depth gauge, poll, result, report, shutdown)
//!   and exits 0 only if every step behaved. `scripts/check.sh` runs this
//!   against a `--port 0` daemon and then asserts the daemon process
//!   itself drained cleanly.
//!
//! - `--mode smoke-keep`: the same smoke, but leaves the daemon running
//!   so the caller can poke it further (check.sh runs `obs top --once`
//!   against it) before shutting it down with `--mode shutdown`.
//!
//! - `--mode shutdown --target HOST:PORT`: POST `/api/v1/shutdown` and
//!   expect `202` — the companion to `smoke-keep`.
//!
//! - `--mode diff --baseline A.json --current B.json`: obs-diff-style
//!   gate over two `--mode load` summaries: p90 end-to-end latency may
//!   not grow past `--fail-over PCT` (default 75) once past the
//!   `--noise-floor-ms` floor (default 2000 — single-CPU CI runners are
//!   noisy), and the burst must still shed at least one request — job
//!   service time is now short enough that workers drain the queue
//!   mid-burst, so the exact shed count races with the submit loop and
//!   only "backpressure fired at all" is stable across runs.
//!   Exit 0 = ok, 2 = regressed, 1 = unusable input.
//!
//! Usage: `serve_load [--scale F] [--seed N] [--threads N] [--out PATH]
//!         [--mode load|smoke|smoke-keep|shutdown|diff]
//!         [--target HOST:PORT] [--uploads N] [--queue N] [--workers N]
//!         [--baseline PATH] [--current PATH] [--fail-over PCT]
//!         [--noise-floor-ms N]`

use diffaudit_bench::{standard_dataset, BenchArgs};
use diffaudit_json::Json;
use diffaudit_obs as obs;
use diffaudit_serve::client;
use diffaudit_serve::{ServeConfig, Server};
use diffaudit_services::{Platform, TraceArtifact, TraceCategory, TraceKind};
use diffaudit_util::stats::percentile;
use std::time::{Duration, Instant};

fn fail(msg: &str) -> ! {
    obs::error(msg, &[]);
    std::process::exit(1);
}

fn platform_param(p: Platform) -> &'static str {
    match p {
        Platform::Web => "web",
        Platform::Mobile => "mobile",
        Platform::Desktop => "desktop",
    }
}

fn kind_param(k: TraceKind) -> &'static str {
    match k {
        TraceKind::AccountCreation => "account-creation",
        TraceKind::LoggedIn => "logged-in",
        TraceKind::LoggedOut => "logged-out",
    }
}

fn category_param(c: TraceCategory) -> &'static str {
    match c {
        TraceCategory::Child => "child",
        TraceCategory::Adolescent => "adolescent",
        TraceCategory::Adult => "adult",
        TraceCategory::LoggedOut => "logged-out",
    }
}

/// POST one artifact to `/api/v1/traces` (plus its key log, for captures);
/// returns the trace id.
fn upload_artifact(addr: &str, index: usize, artifact: &TraceArtifact) -> String {
    let path = format!(
        "/api/v1/traces?label=unit-{index}&platform={}&kind={}&category={}",
        platform_param(artifact.platform),
        kind_param(artifact.kind),
        category_param(artifact.category),
    );
    let body: &[u8] = match (&artifact.har, &artifact.pcap) {
        (Some(har), _) => har.as_bytes(),
        (None, Some(pcap)) => pcap.as_slice(),
        (None, None) => fail("generated artifact has neither HAR nor pcap"),
    };
    let (status, text) = client::request_text(addr, "POST", &path, body)
        .unwrap_or_else(|e| fail(&format!("upload failed: {e}")));
    if status != 201 {
        fail(&format!("upload returned {status}: {text}"));
    }
    let doc = diffaudit_json::parse(&text)
        .unwrap_or_else(|e| fail(&format!("upload response not JSON: {e}")));
    let id = doc
        .get("traceId")
        .and_then(Json::as_str)
        .unwrap_or_else(|| fail("upload response missing traceId"))
        .to_string();
    if artifact.har.is_none() {
        if let Some(keylog) = &artifact.keylog {
            let (status, _) = client::request_text(
                addr,
                "POST",
                &format!("/api/v1/traces/{id}/keylog"),
                keylog.as_bytes(),
            )
            .unwrap_or_else(|e| fail(&format!("keylog attach failed: {e}")));
            if status != 200 {
                fail(&format!("keylog attach returned {status}"));
            }
        }
    }
    id
}

fn job_body(service_name: &str, slug: &str, domains: &[String], trace_ids: &[String]) -> String {
    Json::obj()
        .with(
            "service",
            Json::obj()
                .with("name", Json::str(service_name))
                .with("slug", Json::str(slug))
                .with(
                    "firstPartyDomains",
                    Json::Arr(domains.iter().map(Json::str).collect()),
                ),
        )
        .with(
            "traces",
            Json::Arr(trace_ids.iter().map(Json::str).collect()),
        )
        .with("deadlineMs", Json::int(60_000))
        .to_string()
}

/// Poll a job's status endpoint until it reaches a terminal state; returns
/// the final state label.
fn poll_to_terminal(addr: &str, job_id: &str, timeout: Duration) -> String {
    let deadline = Instant::now() + timeout;
    loop {
        let (status, text) =
            client::request_text(addr, "GET", &format!("/api/v1/jobs/{job_id}"), &[])
                .unwrap_or_else(|e| fail(&format!("status poll failed: {e}")));
        if status != 200 {
            fail(&format!("status poll returned {status}: {text}"));
        }
        let doc = diffaudit_json::parse(&text)
            .unwrap_or_else(|e| fail(&format!("status response not JSON: {e}")));
        let state = doc
            .get("state")
            .and_then(Json::as_str)
            .unwrap_or_else(|| fail("status response missing state"))
            .to_string();
        if state != "queued" && state != "running" {
            return state;
        }
        if Instant::now() > deadline {
            fail(&format!("job {job_id} still {state} after {timeout:?}"));
        }
        std::thread::sleep(Duration::from_millis(10));
    }
}

struct SubmitOutcome {
    shed: u64,
    latency_ms: f64,
    state: String,
}

/// Submit one job, retrying shed (`429`) attempts, then poll it to a
/// terminal state. Latency is measured from the accepted submission.
fn submit_and_wait(addr: &str, body: &str) -> SubmitOutcome {
    let mut shed = 0u64;
    loop {
        let started = Instant::now();
        let (status, text) = client::request_text(addr, "POST", "/api/v1/jobs", body.as_bytes())
            .unwrap_or_else(|e| fail(&format!("job submit failed: {e}")));
        match status {
            202 => {
                let doc = diffaudit_json::parse(&text)
                    .unwrap_or_else(|e| fail(&format!("submit response not JSON: {e}")));
                let job_id = doc
                    .get("jobId")
                    .and_then(Json::as_str)
                    .unwrap_or_else(|| fail("submit response missing jobId"))
                    .to_string();
                let state = poll_to_terminal(addr, &job_id, Duration::from_secs(120));
                return SubmitOutcome {
                    shed,
                    latency_ms: started.elapsed().as_secs_f64() * 1000.0,
                    state,
                };
            }
            429 => {
                shed += 1;
                std::thread::sleep(Duration::from_millis(25));
            }
            other => fail(&format!("job submit returned {other}: {text}")),
        }
    }
}

fn mode_load(args: &BenchArgs, uploads: usize, queue: usize, workers: usize, out: Option<String>) {
    args.announce("[serve_load] generating dataset");
    let dataset = standard_dataset(args);
    let capture = dataset
        .services
        .iter()
        .find(|s| s.spec.slug == "duolingo")
        .unwrap_or_else(|| fail("dataset has no duolingo service"));

    let server = Server::bind(ServeConfig {
        port: 0,
        queue_capacity: queue,
        workers,
        threads_per_job: 1,
        ..ServeConfig::default()
    })
    .unwrap_or_else(|e| fail(&format!("bind failed: {e}")));
    let addr = server
        .addr()
        .unwrap_or_else(|e| fail(&format!("no local addr: {e}")))
        .to_string();
    let daemon = std::thread::spawn(move || server.run());
    obs::info(
        "[serve_load] daemon up",
        &[obs::field("addr", addr.as_str())],
    );

    let trace_ids: Vec<String> = capture
        .artifacts
        .iter()
        .enumerate()
        .map(|(i, artifact)| upload_artifact(&addr, i, artifact))
        .collect();
    let body = job_body(
        capture.spec.name,
        capture.spec.slug,
        &capture
            .spec
            .first_party_domains
            .iter()
            .map(|d| d.to_string())
            .collect::<Vec<_>>(),
        &trace_ids,
    );

    obs::info(
        "[serve_load] firing submission burst",
        &[
            obs::field("uploads", uploads),
            obs::field("queueCapacity", queue),
            obs::field("workers", workers),
        ],
    );
    let burst_started = Instant::now();
    let stop_scraper = std::sync::atomic::AtomicBool::new(false);
    let (outcomes, depth_series) = std::thread::scope(|scope| {
        // Mid-burst scraper: polls the exposition endpoint while the
        // submitters hammer the queue, sampling the queue-depth gauge —
        // both to record the depth series in the baseline and to prove
        // scraping under load never wedges the accept loop.
        let scraper = scope.spawn(|| {
            let mut series: Vec<i64> = Vec::new();
            while !stop_scraper.load(std::sync::atomic::Ordering::SeqCst) {
                if let Ok((200, text)) = client::request_text(&addr, "GET", "/metrics", &[]) {
                    let samples = obs::parse_exposition(&text)
                        .unwrap_or_else(|e| fail(&format!("mid-burst exposition malformed: {e}")));
                    if let Some(depth) = obs::gauge_value(&samples, "serve_queue_depth") {
                        series.push(depth as i64);
                    }
                }
                std::thread::sleep(Duration::from_millis(25));
            }
            series
        });
        let handles: Vec<_> = (0..uploads)
            .map(|_| {
                let addr = addr.as_str();
                let body = body.as_str();
                scope.spawn(move || submit_and_wait(addr, body))
            })
            .collect();
        let outcomes: Vec<SubmitOutcome> = handles
            .into_iter()
            .map(|h| match h.join() {
                Ok(outcome) => outcome,
                Err(_) => fail("submitter thread panicked"),
            })
            .collect();
        stop_scraper.store(true, std::sync::atomic::Ordering::SeqCst);
        let series = match scraper.join() {
            Ok(series) => series,
            Err(_) => fail("scraper thread panicked"),
        };
        (outcomes, series)
    });
    let wall_ms = burst_started.elapsed().as_secs_f64() * 1000.0;

    // Server-side shed accounting, scraped before shutdown: the daemon's
    // own counter must agree exactly with what the clients observed.
    let (status, text) = client::request_text(&addr, "GET", "/metrics", &[])
        .unwrap_or_else(|e| fail(&format!("final metrics scrape failed: {e}")));
    if status != 200 {
        fail(&format!("final metrics scrape returned {status}"));
    }
    let samples = obs::parse_exposition(&text)
        .unwrap_or_else(|e| fail(&format!("final exposition malformed: {e}")));
    let server_shed = obs::sum_samples(&samples, "serve_queue_shed_total").unwrap_or(0.0) as u64;

    let (status, _) = client::request_text(&addr, "POST", "/api/v1/shutdown", &[])
        .unwrap_or_else(|e| fail(&format!("shutdown failed: {e}")));
    if status != 202 {
        fail(&format!("shutdown returned {status}"));
    }
    let exit = match daemon.join() {
        Ok(exit) => exit,
        Err(_) => fail("daemon thread panicked"),
    };
    if exit.orphaned != 0 {
        fail(&format!("{} jobs orphaned at shutdown", exit.orphaned));
    }

    let shed: u64 = outcomes.iter().map(|o| o.shed).sum();
    if shed == 0 {
        fail("no submission was shed (429): burst did not exceed the queue, numbers invalid");
    }
    if server_shed != shed {
        fail(&format!(
            "server-side serve.queue.shed ({server_shed}) disagrees with client-observed 429s ({shed})"
        ));
    }
    let latencies: Vec<f64> = outcomes.iter().map(|o| o.latency_ms).collect();
    let mut states: Vec<(String, i64)> = Vec::new();
    for outcome in &outcomes {
        match states.iter_mut().find(|(s, _)| *s == outcome.state) {
            Some((_, n)) => *n += 1,
            None => states.push((outcome.state.clone(), 1)),
        }
    }
    let q = |p: f64| percentile(&latencies, p).unwrap_or(0.0);
    let doc = Json::obj()
        .with("schema", Json::str("diffaudit-bench-serve/v1"))
        .with(
            "config",
            Json::obj()
                .with("uploads", Json::int(uploads as i64))
                .with("queueCapacity", Json::int(queue as i64))
                .with("workers", Json::int(workers as i64))
                .with(
                    "scale",
                    Json::Num(diffaudit_json::Number::Float(args.scale)),
                )
                .with("seed", Json::int(args.seed as i64)),
        )
        .with("shed429", Json::int(shed as i64))
        .with(
            "jobs",
            Json::obj()
                .with("submitted", Json::int(outcomes.len() as i64))
                .with(
                    "states",
                    states
                        .into_iter()
                        .fold(Json::obj(), |acc, (s, n)| acc.with(s, Json::int(n))),
                ),
        )
        .with("wallMs", Json::Num(diffaudit_json::Number::Float(wall_ms)))
        .with(
            "throughputJobsPerSec",
            Json::Num(diffaudit_json::Number::Float(
                outcomes.len() as f64 / (wall_ms / 1000.0),
            )),
        )
        .with(
            "latencyMs",
            Json::obj()
                .with("p50", Json::Num(diffaudit_json::Number::Float(q(50.0))))
                .with("p90", Json::Num(diffaudit_json::Number::Float(q(90.0))))
                .with("p99", Json::Num(diffaudit_json::Number::Float(q(99.0)))),
        )
        .with(
            "telemetry",
            Json::obj()
                .with("scrapes", Json::int(depth_series.len() as i64))
                .with("serverShed", Json::int(server_shed as i64))
                .with(
                    "maxQueueDepth",
                    Json::int(depth_series.iter().copied().max().unwrap_or(0)),
                )
                .with(
                    "queueDepthSeries",
                    Json::Arr(
                        // Cap the committed series: the shape matters, not
                        // every 25ms sample.
                        depth_series
                            .iter()
                            .take(64)
                            .map(|&d| Json::int(d))
                            .collect(),
                    ),
                ),
        );
    let rendered = doc.to_pretty_string();
    match out {
        Some(path) => {
            if let Err(e) = std::fs::write(&path, format!("{rendered}\n")) {
                fail(&format!("cannot write {path}: {e}"));
            }
            obs::info(
                "[serve_load] baseline written",
                &[obs::field("path", path.as_str())],
            );
        }
        None => println!("{rendered}"),
    }
}

/// Submit one job without waiting; retries shed (`429`) attempts.
fn submit_only(addr: &str, body: &str) -> String {
    loop {
        let (status, text) = client::request_text(addr, "POST", "/api/v1/jobs", body.as_bytes())
            .unwrap_or_else(|e| fail(&format!("job submit failed: {e}")));
        match status {
            202 => {
                return diffaudit_json::parse(&text)
                    .unwrap_or_else(|e| fail(&format!("submit response not JSON: {e}")))
                    .get("jobId")
                    .and_then(Json::as_str)
                    .unwrap_or_else(|| fail("submit response missing jobId"))
                    .to_string();
            }
            429 => std::thread::sleep(Duration::from_millis(25)),
            other => fail(&format!("job submit returned {other}: {text}")),
        }
    }
}

fn mode_smoke(args: &BenchArgs, target: &str, keep_up: bool) {
    args.announce("[serve_load] smoke: generating one service");
    let dataset = standard_dataset(args);
    let capture = dataset
        .services
        .iter()
        .find(|s| s.artifacts.iter().any(|a| a.har.is_some()))
        .unwrap_or_else(|| fail("dataset has no HAR artifact"));
    let artifact = capture
        .artifacts
        .iter()
        .find(|a| a.har.is_some())
        .unwrap_or_else(|| fail("no HAR artifact"));

    let (status, text) = client::request_text(target, "GET", "/healthz", &[])
        .unwrap_or_else(|e| fail(&format!("healthz failed: {e}")));
    if status != 200 || !text.contains("\"ok\"") {
        fail(&format!("healthz returned {status}: {text}"));
    }

    let trace_id = upload_artifact(target, 0, artifact);
    let body = job_body(
        capture.spec.name,
        capture.spec.slug,
        &capture
            .spec
            .first_party_domains
            .iter()
            .map(|d| d.to_string())
            .collect::<Vec<_>>(),
        &[trace_id],
    );

    // Submit a small burst (wider than the default 2 workers) so the
    // mid-job scrape below can observe a nonzero queue-depth gauge.
    let job_ids: Vec<String> = (0..4).map(|_| submit_only(target, &body)).collect();

    // Mid-job telemetry: the exposition endpoint must parse while jobs
    // are live, and the queue-depth gauge must show the queued backlog.
    let scrape_deadline = Instant::now() + Duration::from_secs(10);
    let mut saw_depth = false;
    while Instant::now() < scrape_deadline {
        let (status, text) = client::request_text(target, "GET", "/metrics", &[])
            .unwrap_or_else(|e| fail(&format!("mid-job metrics scrape failed: {e}")));
        if status != 200 {
            fail(&format!("mid-job metrics scrape returned {status}"));
        }
        let samples = obs::parse_exposition(&text)
            .unwrap_or_else(|e| fail(&format!("mid-job exposition malformed: {e}")));
        if obs::gauge_value(&samples, "diffaudit_uptime_seconds").is_none() {
            fail("exposition is missing the uptime gauge");
        }
        if obs::gauge_value(&samples, "serve_queue_depth").unwrap_or(0.0) >= 1.0 {
            saw_depth = true;
            break;
        }
        std::thread::sleep(Duration::from_millis(10));
    }
    if !saw_depth {
        fail("queue-depth gauge never went nonzero while 4 jobs were in flight");
    }

    for job_id in &job_ids {
        let state = poll_to_terminal(target, job_id, Duration::from_secs(120));
        if state != "clean" && state != "salvaged" {
            fail(&format!("smoke job {job_id} ended {state}"));
        }
    }
    let first_job = &job_ids[0];

    let (status, result) = client::request_text(
        target,
        "GET",
        &format!("/api/v1/jobs/{first_job}/result"),
        &[],
    )
    .unwrap_or_else(|e| fail(&format!("result fetch failed: {e}")));
    if !(status == 200 || status == 206) || !result.contains("\"services\"") {
        fail(&format!("result fetch returned {status}"));
    }
    let (status, report) = client::request_text(
        target,
        "GET",
        &format!("/api/v1/jobs/{first_job}/report"),
        &[],
    )
    .unwrap_or_else(|e| fail(&format!("report fetch failed: {e}")));
    if status != 200 || !report.contains("Table 4") {
        fail(&format!("report fetch returned {status}"));
    }

    if !keep_up {
        mode_shutdown(target);
    }
    obs::info(
        "[serve_load] smoke passed",
        &[
            obs::field("jobs", job_ids.len() as u64),
            obs::field("keptUp", keep_up),
        ],
    );
}

/// POST `/api/v1/shutdown` to an externally booted daemon — the
/// companion to `--mode smoke-keep`.
fn mode_shutdown(target: &str) {
    let (status, _) = client::request_text(target, "POST", "/api/v1/shutdown", &[])
        .unwrap_or_else(|e| fail(&format!("shutdown failed: {e}")));
    if status != 202 {
        fail(&format!("shutdown returned {status}"));
    }
}

/// Obs-diff-style gate over two `--mode load` summaries. Exit 0 = ok,
/// 2 = regressed, 1 = unusable input.
fn mode_diff(baseline_path: &str, current_path: &str, fail_over_pct: f64, noise_floor_ms: f64) {
    let load = |path: &str| -> Json {
        let text = std::fs::read_to_string(path)
            .unwrap_or_else(|e| fail(&format!("cannot read {path}: {e}")));
        let doc = diffaudit_json::parse(&text)
            .unwrap_or_else(|e| fail(&format!("cannot parse {path}: {e}")));
        if doc.get("schema").and_then(Json::as_str) != Some("diffaudit-bench-serve/v1") {
            fail(&format!("{path} is not a diffaudit-bench-serve/v1 summary"));
        }
        doc
    };
    let baseline = load(baseline_path);
    let current = load(current_path);
    let p90 = |doc: &Json, path: &str| -> f64 {
        doc.get("latencyMs")
            .and_then(|l| l.get("p90"))
            .and_then(Json::as_f64)
            .unwrap_or_else(|| fail(&format!("{path} has no latencyMs.p90")))
    };
    let shed = |doc: &Json, path: &str| -> i64 {
        doc.get("shed429")
            .and_then(Json::as_i64)
            .unwrap_or_else(|| fail(&format!("{path} has no shed429")))
    };
    let (base_p90, cur_p90) = (p90(&baseline, baseline_path), p90(&current, current_path));
    let (base_shed, cur_shed) = (shed(&baseline, baseline_path), shed(&current, current_path));

    let mut regressions: Vec<String> = Vec::new();
    let growth_pct = if base_p90 > 0.0 {
        (cur_p90 - base_p90) / base_p90 * 100.0
    } else {
        0.0
    };
    // The noise floor mirrors `obs diff`: small absolute moves on a noisy
    // single-CPU runner are not regressions, whatever the percentage.
    if cur_p90 - base_p90 > noise_floor_ms && growth_pct > fail_over_pct {
        regressions.push(format!(
            "latencyMs.p90 {base_p90:.1} -> {cur_p90:.1} (+{growth_pct:.0}%, over {fail_over_pct:.0}% and the {noise_floor_ms:.0}ms floor)"
        ));
    }
    // Jobs finish fast enough that workers drain the queue mid-burst, so
    // the exact shed count races with the submit loop; losing *all*
    // shedding is the signal that the overload path broke (queue capacity
    // grew, the 429 branch regressed, or the burst stopped overlapping).
    if base_shed > 0 && cur_shed == 0 {
        regressions.push(format!(
            "shed429 {base_shed} -> {cur_shed} (burst no longer overloads the queue)"
        ));
    }
    println!(
        "serve bench diff: p90 {base_p90:.1}ms -> {cur_p90:.1}ms ({growth_pct:+.0}%), shed429 {base_shed} -> {cur_shed}"
    );
    if regressions.is_empty() {
        println!("verdict: ok");
    } else {
        for regression in &regressions {
            println!("regressed: {regression}");
        }
        println!("verdict: regressed");
        std::process::exit(2);
    }
}

fn main() {
    let (args, extra) = BenchArgs::parse_extra(&[
        "--out",
        "--mode",
        "--target",
        "--uploads",
        "--queue",
        "--workers",
        "--baseline",
        "--current",
        "--fail-over",
        "--noise-floor-ms",
    ]);
    let mut extra = extra.into_iter();
    let out = extra.next().flatten();
    let mode = extra.next().flatten().unwrap_or_else(|| "load".to_string());
    let target = extra.next().flatten();
    let parse_n = |v: Option<String>, name: &str, default: usize| -> usize {
        match v {
            None => default,
            Some(raw) => match raw.parse::<usize>() {
                Ok(n) if n >= 1 => n,
                _ => fail(&format!("{name} requires a positive integer")),
            },
        }
    };
    let uploads = parse_n(extra.next().flatten(), "--uploads", 8);
    let queue = parse_n(extra.next().flatten(), "--queue", 4);
    let workers = parse_n(extra.next().flatten(), "--workers", 2);
    let baseline = extra.next().flatten();
    let current = extra.next().flatten();
    let parse_f = |v: Option<String>, name: &str, default: f64| -> f64 {
        match v {
            None => default,
            Some(raw) => match raw.parse::<f64>() {
                Ok(x) if x >= 0.0 => x,
                _ => fail(&format!("{name} requires a non-negative number")),
            },
        }
    };
    let fail_over = parse_f(extra.next().flatten(), "--fail-over", 75.0);
    let noise_floor_ms = parse_f(extra.next().flatten(), "--noise-floor-ms", 2000.0);

    let require_target = |mode: &str| -> String {
        match &target {
            Some(target) => target.clone(),
            None => fail(&format!("--mode {mode} requires --target HOST:PORT")),
        }
    };
    match mode.as_str() {
        "load" => mode_load(&args, uploads, queue, workers, out),
        "smoke" => mode_smoke(&args, &require_target("smoke"), false),
        "smoke-keep" => mode_smoke(&args, &require_target("smoke-keep"), true),
        "shutdown" => mode_shutdown(&require_target("shutdown")),
        "diff" => {
            let (Some(baseline), Some(current)) = (baseline, current) else {
                fail("--mode diff requires --baseline PATH and --current PATH");
            };
            mode_diff(&baseline, &current, fail_over, noise_floor_ms);
        }
        other => fail(&format!(
            "unknown mode {other:?} (load|smoke|smoke-keep|shutdown|diff)"
        )),
    }
}
