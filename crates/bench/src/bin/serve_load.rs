//! Load generator and smoke driver for the `diffaudit serve` daemon — the
//! producer of the committed `BENCH_serve.json` throughput/latency baseline.
//!
//! Two modes:
//!
//! - `--mode load` (default): boots an in-process daemon with a bounded
//!   queue, fires a burst of concurrent job submissions wider than the
//!   queue (default 8 submitters vs capacity 4) so load shedding is
//!   actually exercised, retries shed submissions until accepted, polls
//!   every job to a terminal state, and writes a JSON summary with
//!   observed `429` counts, throughput, and p50/p90/p99 end-to-end job
//!   latency. Fails (exit 1) if no submission was ever shed — that means
//!   the burst did not outrun the queue and the numbers are meaningless.
//!
//! - `--mode smoke --target HOST:PORT`: drives an externally booted
//!   daemon through the whole client lifecycle (health, upload, submit,
//!   poll, result, report, shutdown) and exits 0 only if every step
//!   behaved. `scripts/check.sh` runs this against a `--port 0` daemon
//!   and then asserts the daemon process itself drained cleanly.
//!
//! Usage: `serve_load [--scale F] [--seed N] [--threads N] [--out PATH]
//!         [--mode load|smoke] [--target HOST:PORT] [--uploads N]
//!         [--queue N] [--workers N]`

use diffaudit_bench::{standard_dataset, BenchArgs};
use diffaudit_json::Json;
use diffaudit_obs as obs;
use diffaudit_serve::client;
use diffaudit_serve::{ServeConfig, Server};
use diffaudit_services::{Platform, TraceArtifact, TraceCategory, TraceKind};
use diffaudit_util::stats::percentile;
use std::time::{Duration, Instant};

fn fail(msg: &str) -> ! {
    obs::error(msg, &[]);
    std::process::exit(1);
}

fn platform_param(p: Platform) -> &'static str {
    match p {
        Platform::Web => "web",
        Platform::Mobile => "mobile",
        Platform::Desktop => "desktop",
    }
}

fn kind_param(k: TraceKind) -> &'static str {
    match k {
        TraceKind::AccountCreation => "account-creation",
        TraceKind::LoggedIn => "logged-in",
        TraceKind::LoggedOut => "logged-out",
    }
}

fn category_param(c: TraceCategory) -> &'static str {
    match c {
        TraceCategory::Child => "child",
        TraceCategory::Adolescent => "adolescent",
        TraceCategory::Adult => "adult",
        TraceCategory::LoggedOut => "logged-out",
    }
}

/// POST one artifact to `/api/v1/traces` (plus its key log, for captures);
/// returns the trace id.
fn upload_artifact(addr: &str, index: usize, artifact: &TraceArtifact) -> String {
    let path = format!(
        "/api/v1/traces?label=unit-{index}&platform={}&kind={}&category={}",
        platform_param(artifact.platform),
        kind_param(artifact.kind),
        category_param(artifact.category),
    );
    let body: &[u8] = match (&artifact.har, &artifact.pcap) {
        (Some(har), _) => har.as_bytes(),
        (None, Some(pcap)) => pcap.as_slice(),
        (None, None) => fail("generated artifact has neither HAR nor pcap"),
    };
    let (status, text) = client::request_text(addr, "POST", &path, body)
        .unwrap_or_else(|e| fail(&format!("upload failed: {e}")));
    if status != 201 {
        fail(&format!("upload returned {status}: {text}"));
    }
    let doc = diffaudit_json::parse(&text)
        .unwrap_or_else(|e| fail(&format!("upload response not JSON: {e}")));
    let id = doc
        .get("traceId")
        .and_then(Json::as_str)
        .unwrap_or_else(|| fail("upload response missing traceId"))
        .to_string();
    if artifact.har.is_none() {
        if let Some(keylog) = &artifact.keylog {
            let (status, _) = client::request_text(
                addr,
                "POST",
                &format!("/api/v1/traces/{id}/keylog"),
                keylog.as_bytes(),
            )
            .unwrap_or_else(|e| fail(&format!("keylog attach failed: {e}")));
            if status != 200 {
                fail(&format!("keylog attach returned {status}"));
            }
        }
    }
    id
}

fn job_body(service_name: &str, slug: &str, domains: &[String], trace_ids: &[String]) -> String {
    Json::obj()
        .with(
            "service",
            Json::obj()
                .with("name", Json::str(service_name))
                .with("slug", Json::str(slug))
                .with(
                    "firstPartyDomains",
                    Json::Arr(domains.iter().map(Json::str).collect()),
                ),
        )
        .with(
            "traces",
            Json::Arr(trace_ids.iter().map(Json::str).collect()),
        )
        .with("deadlineMs", Json::int(60_000))
        .to_string()
}

/// Poll a job's status endpoint until it reaches a terminal state; returns
/// the final state label.
fn poll_to_terminal(addr: &str, job_id: &str, timeout: Duration) -> String {
    let deadline = Instant::now() + timeout;
    loop {
        let (status, text) =
            client::request_text(addr, "GET", &format!("/api/v1/jobs/{job_id}"), &[])
                .unwrap_or_else(|e| fail(&format!("status poll failed: {e}")));
        if status != 200 {
            fail(&format!("status poll returned {status}: {text}"));
        }
        let doc = diffaudit_json::parse(&text)
            .unwrap_or_else(|e| fail(&format!("status response not JSON: {e}")));
        let state = doc
            .get("state")
            .and_then(Json::as_str)
            .unwrap_or_else(|| fail("status response missing state"))
            .to_string();
        if state != "queued" && state != "running" {
            return state;
        }
        if Instant::now() > deadline {
            fail(&format!("job {job_id} still {state} after {timeout:?}"));
        }
        std::thread::sleep(Duration::from_millis(10));
    }
}

struct SubmitOutcome {
    job_id: String,
    shed: u64,
    latency_ms: f64,
    state: String,
}

/// Submit one job, retrying shed (`429`) attempts, then poll it to a
/// terminal state. Latency is measured from the accepted submission.
fn submit_and_wait(addr: &str, body: &str) -> SubmitOutcome {
    let mut shed = 0u64;
    loop {
        let started = Instant::now();
        let (status, text) = client::request_text(addr, "POST", "/api/v1/jobs", body.as_bytes())
            .unwrap_or_else(|e| fail(&format!("job submit failed: {e}")));
        match status {
            202 => {
                let doc = diffaudit_json::parse(&text)
                    .unwrap_or_else(|e| fail(&format!("submit response not JSON: {e}")));
                let job_id = doc
                    .get("jobId")
                    .and_then(Json::as_str)
                    .unwrap_or_else(|| fail("submit response missing jobId"))
                    .to_string();
                let state = poll_to_terminal(addr, &job_id, Duration::from_secs(120));
                return SubmitOutcome {
                    job_id,
                    shed,
                    latency_ms: started.elapsed().as_secs_f64() * 1000.0,
                    state,
                };
            }
            429 => {
                shed += 1;
                std::thread::sleep(Duration::from_millis(25));
            }
            other => fail(&format!("job submit returned {other}: {text}")),
        }
    }
}

fn mode_load(args: &BenchArgs, uploads: usize, queue: usize, workers: usize, out: Option<String>) {
    args.announce("[serve_load] generating dataset");
    let dataset = standard_dataset(args);
    let capture = dataset
        .services
        .iter()
        .find(|s| s.spec.slug == "duolingo")
        .unwrap_or_else(|| fail("dataset has no duolingo service"));

    let server = Server::bind(ServeConfig {
        port: 0,
        queue_capacity: queue,
        workers,
        threads_per_job: 1,
        ..ServeConfig::default()
    })
    .unwrap_or_else(|e| fail(&format!("bind failed: {e}")));
    let addr = server
        .addr()
        .unwrap_or_else(|e| fail(&format!("no local addr: {e}")))
        .to_string();
    let daemon = std::thread::spawn(move || server.run());
    obs::info(
        "[serve_load] daemon up",
        &[obs::field("addr", addr.as_str())],
    );

    let trace_ids: Vec<String> = capture
        .artifacts
        .iter()
        .enumerate()
        .map(|(i, artifact)| upload_artifact(&addr, i, artifact))
        .collect();
    let body = job_body(
        capture.spec.name,
        capture.spec.slug,
        &capture
            .spec
            .first_party_domains
            .iter()
            .map(|d| d.to_string())
            .collect::<Vec<_>>(),
        &trace_ids,
    );

    obs::info(
        "[serve_load] firing submission burst",
        &[
            obs::field("uploads", uploads),
            obs::field("queueCapacity", queue),
            obs::field("workers", workers),
        ],
    );
    let burst_started = Instant::now();
    let outcomes: Vec<SubmitOutcome> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..uploads)
            .map(|_| {
                let addr = addr.as_str();
                let body = body.as_str();
                scope.spawn(move || submit_and_wait(addr, body))
            })
            .collect();
        handles
            .into_iter()
            .map(|h| match h.join() {
                Ok(outcome) => outcome,
                Err(_) => fail("submitter thread panicked"),
            })
            .collect()
    });
    let wall_ms = burst_started.elapsed().as_secs_f64() * 1000.0;

    let (status, _) = client::request_text(&addr, "POST", "/api/v1/shutdown", &[])
        .unwrap_or_else(|e| fail(&format!("shutdown failed: {e}")));
    if status != 202 {
        fail(&format!("shutdown returned {status}"));
    }
    let exit = match daemon.join() {
        Ok(exit) => exit,
        Err(_) => fail("daemon thread panicked"),
    };
    if exit.orphaned != 0 {
        fail(&format!("{} jobs orphaned at shutdown", exit.orphaned));
    }

    let shed: u64 = outcomes.iter().map(|o| o.shed).sum();
    if shed == 0 {
        fail("no submission was shed (429): burst did not exceed the queue, numbers invalid");
    }
    let latencies: Vec<f64> = outcomes.iter().map(|o| o.latency_ms).collect();
    let mut states: Vec<(String, i64)> = Vec::new();
    for outcome in &outcomes {
        match states.iter_mut().find(|(s, _)| *s == outcome.state) {
            Some((_, n)) => *n += 1,
            None => states.push((outcome.state.clone(), 1)),
        }
    }
    let q = |p: f64| percentile(&latencies, p).unwrap_or(0.0);
    let doc = Json::obj()
        .with("schema", Json::str("diffaudit-bench-serve/v1"))
        .with(
            "config",
            Json::obj()
                .with("uploads", Json::int(uploads as i64))
                .with("queueCapacity", Json::int(queue as i64))
                .with("workers", Json::int(workers as i64))
                .with(
                    "scale",
                    Json::Num(diffaudit_json::Number::Float(args.scale)),
                )
                .with("seed", Json::int(args.seed as i64)),
        )
        .with("shed429", Json::int(shed as i64))
        .with(
            "jobs",
            Json::obj()
                .with("submitted", Json::int(outcomes.len() as i64))
                .with(
                    "states",
                    states
                        .into_iter()
                        .fold(Json::obj(), |acc, (s, n)| acc.with(s, Json::int(n))),
                ),
        )
        .with("wallMs", Json::Num(diffaudit_json::Number::Float(wall_ms)))
        .with(
            "throughputJobsPerSec",
            Json::Num(diffaudit_json::Number::Float(
                outcomes.len() as f64 / (wall_ms / 1000.0),
            )),
        )
        .with(
            "latencyMs",
            Json::obj()
                .with("p50", Json::Num(diffaudit_json::Number::Float(q(50.0))))
                .with("p90", Json::Num(diffaudit_json::Number::Float(q(90.0))))
                .with("p99", Json::Num(diffaudit_json::Number::Float(q(99.0)))),
        );
    let rendered = doc.to_pretty_string();
    match out {
        Some(path) => {
            if let Err(e) = std::fs::write(&path, format!("{rendered}\n")) {
                fail(&format!("cannot write {path}: {e}"));
            }
            obs::info(
                "[serve_load] baseline written",
                &[obs::field("path", path.as_str())],
            );
        }
        None => println!("{rendered}"),
    }
}

fn mode_smoke(args: &BenchArgs, target: &str) {
    args.announce("[serve_load] smoke: generating one service");
    let dataset = standard_dataset(args);
    let capture = dataset
        .services
        .iter()
        .find(|s| s.artifacts.iter().any(|a| a.har.is_some()))
        .unwrap_or_else(|| fail("dataset has no HAR artifact"));
    let artifact = capture
        .artifacts
        .iter()
        .find(|a| a.har.is_some())
        .unwrap_or_else(|| fail("no HAR artifact"));

    let (status, text) = client::request_text(target, "GET", "/healthz", &[])
        .unwrap_or_else(|e| fail(&format!("healthz failed: {e}")));
    if status != 200 || !text.contains("\"ok\"") {
        fail(&format!("healthz returned {status}: {text}"));
    }

    let trace_id = upload_artifact(target, 0, artifact);
    let body = job_body(
        capture.spec.name,
        capture.spec.slug,
        &capture
            .spec
            .first_party_domains
            .iter()
            .map(|d| d.to_string())
            .collect::<Vec<_>>(),
        &[trace_id],
    );
    let outcome = submit_and_wait(target, &body);
    if outcome.state != "clean" && outcome.state != "salvaged" {
        fail(&format!("smoke job ended {}", outcome.state));
    }

    let (status, result) = client::request_text(
        target,
        "GET",
        &format!("/api/v1/jobs/{}/result", outcome.job_id),
        &[],
    )
    .unwrap_or_else(|e| fail(&format!("result fetch failed: {e}")));
    if !(status == 200 || status == 206) || !result.contains("\"services\"") {
        fail(&format!("result fetch returned {status}"));
    }
    let (status, report) = client::request_text(
        target,
        "GET",
        &format!("/api/v1/jobs/{}/report", outcome.job_id),
        &[],
    )
    .unwrap_or_else(|e| fail(&format!("report fetch failed: {e}")));
    if status != 200 || !report.contains("Table 4") {
        fail(&format!("report fetch returned {status}"));
    }

    let (status, _) = client::request_text(target, "POST", "/api/v1/shutdown", &[])
        .unwrap_or_else(|e| fail(&format!("shutdown failed: {e}")));
    if status != 202 {
        fail(&format!("shutdown returned {status}"));
    }
    obs::info(
        "[serve_load] smoke passed",
        &[obs::field("job", outcome.job_id.as_str())],
    );
}

fn main() {
    let (args, extra) = BenchArgs::parse_extra(&[
        "--out",
        "--mode",
        "--target",
        "--uploads",
        "--queue",
        "--workers",
    ]);
    let mut extra = extra.into_iter();
    let out = extra.next().flatten();
    let mode = extra.next().flatten().unwrap_or_else(|| "load".to_string());
    let target = extra.next().flatten();
    let parse_n = |v: Option<String>, name: &str, default: usize| -> usize {
        match v {
            None => default,
            Some(raw) => match raw.parse::<usize>() {
                Ok(n) if n >= 1 => n,
                _ => fail(&format!("{name} requires a positive integer")),
            },
        }
    };
    let uploads = parse_n(extra.next().flatten(), "--uploads", 8);
    let queue = parse_n(extra.next().flatten(), "--queue", 4);
    let workers = parse_n(extra.next().flatten(), "--workers", 2);

    match mode.as_str() {
        "load" => mode_load(&args, uploads, queue, workers, out),
        "smoke" => {
            let Some(target) = target else {
                fail("--mode smoke requires --target HOST:PORT");
            };
            mode_smoke(&args, &target);
        }
        other => fail(&format!("unknown mode {other:?} (load|smoke)")),
    }
}
