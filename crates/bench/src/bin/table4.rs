//! Regenerates **Table 4**: the per-service data-flow grid by age category
//! and platform, and verifies it against the encoded ground truth (the
//! spec's grid), printing any deviation. Also prints the audit findings for
//! each service (the paper's §4.1.2 narrative, mechanized).

use diffaudit::audit::audit_service;
use diffaudit::diff::{ObservedGrid, PlatformDiff};
use diffaudit::report::{render_findings, render_table4};
use diffaudit_bench::{oracle_outcome, standard_dataset, BenchArgs};
use diffaudit_services::service_by_slug;

fn main() {
    let args = BenchArgs::parse();
    args.announce("[table4] generating dataset");
    let dataset = standard_dataset(&args);
    let outcome = oracle_outcome(&args, &dataset);
    for service in &outcome.services {
        let spec = service_by_slug(&service.slug).expect("known service");
        let grid = ObservedGrid::build(service);
        println!("{}", render_table4(service, &grid));
        let (missing, spurious) = grid.compare_activity(&spec);
        if missing.is_empty() && spurious.is_empty() {
            println!("  [ground truth] grid activity matches the encoded spec exactly");
        } else {
            println!("  [ground truth] missing: {missing:?}");
            println!("  [ground truth] spurious: {spurious:?}");
        }
        let diff = PlatformDiff::build(&grid);
        println!(
            "  platform differences: {} mobile-only cells (all third-party: {}), {} web-only cells",
            diff.mobile_only.len(),
            diff.mobile_only_all_third_party(),
            diff.web_only.len()
        );
        println!("\n  Audit findings:");
        for line in render_findings(&audit_service(service, &spec)).lines() {
            println!("    {line}");
        }
        println!();
    }
}
