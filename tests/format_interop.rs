//! Cross-crate format interoperability: the artifacts the generator writes
//! must round-trip through the same parsers an external deployment would
//! use, and the two capture paths (HAR vs pcap) must agree on content.

use diffaudit::extract::extract_request;
use diffaudit_nettrace::{decode_pcap, har_to_exchanges, KeyLog, PcapReader};
use diffaudit_services::{generate_dataset, DatasetOptions, Platform, TraceKind};

fn dataset() -> diffaudit_services::GeneratedDataset {
    generate_dataset(&DatasetOptions {
        seed: 11,
        volume_scale: 0.04,
        mobile_pinned_fraction: 0.0, // full decryption for content comparison
        services: vec!["roblox".into()],
    })
}

/// Every HAR artifact parses, and entry counts match the generator's.
#[test]
fn har_artifacts_parse_and_count() {
    let ds = dataset();
    for artifact in &ds.services[0].artifacts {
        if let Some(har) = &artifact.har {
            let exchanges = har_to_exchanges(har).expect("valid HAR");
            assert_eq!(exchanges.len(), artifact.exchange_count);
            for ex in &exchanges {
                assert_eq!(ex.request.url.scheme, "https");
            }
        }
    }
}

/// Every pcap artifact parses as a valid libpcap file whose packets all
/// decode as Ethernet/IPv4/TCP with valid checksums.
#[test]
fn pcap_artifacts_are_valid_captures() {
    let ds = dataset();
    for artifact in &ds.services[0].artifacts {
        if let Some(pcap) = &artifact.pcap {
            let reader = PcapReader::parse(pcap).expect("valid pcap container");
            assert!(!reader.packets.is_empty());
            for packet in &reader.packets {
                diffaudit_nettrace::packet::TcpSegment::decode(&packet.data)
                    .expect("valid TCP frame");
            }
        }
    }
}

/// With pinning disabled, the mobile (pcap) decode path recovers exactly
/// the exchanges the generator produced, matching the HAR path's view of
/// the same trace profile: identical key sets flow through both decoders.
#[test]
fn pcap_and_har_paths_agree_on_extracted_keys() {
    let ds = dataset();
    let capture = &ds.services[0];
    // Compare the logged-out trace across platforms (same trace category,
    // same destination pools; volumes equal by construction).
    let web = capture
        .artifacts
        .iter()
        .find(|a| a.platform == Platform::Web && a.kind == TraceKind::LoggedOut)
        .expect("web logged-out unit");
    let mobile = capture
        .artifacts
        .iter()
        .find(|a| a.platform == Platform::Mobile && a.kind == TraceKind::LoggedOut)
        .expect("mobile logged-out unit");

    let web_exchanges = har_to_exchanges(web.har.as_ref().unwrap()).unwrap();
    let keylog = KeyLog::parse(mobile.keylog.as_ref().unwrap());
    let decoded = decode_pcap(mobile.pcap.as_ref().unwrap(), &keylog).unwrap();
    assert!(decoded.opaque.is_empty(), "pinning disabled");
    assert_eq!(decoded.exchanges.len(), mobile.exchange_count);

    // Both paths must surface classifiable keys from every exchange.
    for ex in web_exchanges.iter().chain(&decoded.exchanges) {
        let entries = extract_request(&ex.request);
        assert!(
            !entries.is_empty(),
            "no extractable keys in {} {}",
            ex.request.method,
            ex.request.url
        );
    }
}

/// The key-truth map covers every key either path extracts.
#[test]
fn ground_truth_covers_extracted_keys() {
    let ds = dataset();
    let capture = &ds.services[0];
    let mut checked = 0usize;
    for artifact in &capture.artifacts {
        let exchanges = match (&artifact.har, &artifact.pcap) {
            (Some(har), _) => har_to_exchanges(har).unwrap(),
            (_, Some(pcap)) => {
                let keylog = KeyLog::parse(artifact.keylog.as_deref().unwrap());
                decode_pcap(pcap, &keylog).unwrap().exchanges
            }
            _ => unreachable!("artifact must carry HAR or pcap"),
        };
        for ex in exchanges {
            for entry in extract_request(&ex.request) {
                assert!(
                    ds.key_truth.contains_key(&entry.key),
                    "extracted key {:?} missing from ground truth",
                    entry.key
                );
                checked += 1;
            }
        }
    }
    assert!(
        checked > 1000,
        "expected substantial key volume, got {checked}"
    );
}
