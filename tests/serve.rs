//! End-to-end tests for the `diffaudit serve` daemon: the containment
//! properties (bounded queueing, deadlines, panic isolation, graceful
//! drain), the exit-style contract over HTTP, and byte-identity between a
//! daemon job's result document and the batch CLI on the same inputs.

use diffaudit_json::Json;
use diffaudit_serve::client;
use diffaudit_serve::{ServeConfig, Server, ServerExit};
use diffaudit_services::{
    generate_dataset, DatasetOptions, Platform, ServiceCapture, TraceCategory, TraceKind,
};
use std::io::{Read, Write};
use std::path::PathBuf;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

// ------------------------------------------------------------- harness

fn boot(config: ServeConfig) -> (String, JoinHandle<ServerExit>) {
    let server = Server::bind(config).expect("bind on 127.0.0.1:0");
    let addr = server.addr().expect("local addr").to_string();
    let handle = std::thread::spawn(move || server.run());
    (addr, handle)
}

fn shutdown_and_join(addr: &str, handle: JoinHandle<ServerExit>) -> ServerExit {
    let (status, _) =
        client::request_text(addr, "POST", "/api/v1/shutdown", &[]).expect("shutdown");
    assert_eq!(status, 202);
    handle.join().expect("daemon thread must not panic")
}

fn dataset_service(slug: &str) -> ServiceCapture {
    let dataset = generate_dataset(&DatasetOptions {
        seed: 21,
        volume_scale: 0.02,
        mobile_pinned_fraction: 0.0,
        services: vec![slug.into()],
    });
    dataset.services.into_iter().next().expect("one service")
}

fn platform_param(p: Platform) -> &'static str {
    match p {
        Platform::Web => "web",
        Platform::Mobile => "mobile",
        Platform::Desktop => "desktop",
    }
}

fn kind_param(k: TraceKind) -> &'static str {
    match k {
        TraceKind::AccountCreation => "account-creation",
        TraceKind::LoggedIn => "logged-in",
        TraceKind::LoggedOut => "logged-out",
    }
}

fn category_param(c: TraceCategory) -> &'static str {
    match c {
        TraceCategory::Child => "child",
        TraceCategory::Adolescent => "adolescent",
        TraceCategory::Adult => "adult",
        TraceCategory::LoggedOut => "logged-out",
    }
}

/// Upload every artifact of `capture`; `corrupt_pcap` flips bytes in the
/// first pcap so its decode drops records (the chaos-damaged input).
fn upload_service(addr: &str, capture: &ServiceCapture, corrupt_pcap: bool) -> Vec<String> {
    let mut ids = Vec::new();
    let mut corrupted = false;
    for (i, artifact) in capture.artifacts.iter().enumerate() {
        let path = format!(
            "/api/v1/traces?label=unit-{i}&platform={}&kind={}&category={}",
            platform_param(artifact.platform),
            kind_param(artifact.kind),
            category_param(artifact.category),
        );
        let body: Vec<u8> = match (&artifact.har, &artifact.pcap) {
            (Some(har), _) => har.clone().into_bytes(),
            (None, Some(pcap)) => {
                let mut bytes = pcap.clone();
                if corrupt_pcap && !corrupted && bytes.len() > 100 {
                    let len = bytes.len();
                    for pos in [len / 3, len / 2, 2 * len / 3] {
                        bytes[pos] ^= 0xFF;
                    }
                    corrupted = true;
                }
                bytes
            }
            (None, None) => panic!("artifact without content"),
        };
        let (status, text) = client::request_text(addr, "POST", &path, &body).expect("upload");
        assert_eq!(status, 201, "upload failed: {text}");
        let doc = diffaudit_json::parse(&text).expect("upload response JSON");
        let id = doc
            .get("traceId")
            .and_then(Json::as_str)
            .expect("traceId")
            .to_string();
        if artifact.har.is_none() {
            if let Some(keylog) = &artifact.keylog {
                let (status, _) = client::request_text(
                    addr,
                    "POST",
                    &format!("/api/v1/traces/{id}/keylog"),
                    keylog.as_bytes(),
                )
                .expect("keylog attach");
                assert_eq!(status, 200);
            }
        }
        ids.push(id);
    }
    assert!(
        !corrupt_pcap || corrupted,
        "no pcap was available to corrupt"
    );
    ids
}

fn job_body(capture: &ServiceCapture, trace_ids: &[String], extra: &[(&str, Json)]) -> String {
    let mut doc = Json::obj()
        .with(
            "service",
            Json::obj()
                .with("name", Json::str(capture.spec.name))
                .with("slug", Json::str(capture.spec.slug))
                .with(
                    "firstPartyDomains",
                    Json::Arr(
                        capture
                            .spec
                            .first_party_domains
                            .iter()
                            .map(|d| Json::str(*d))
                            .collect(),
                    ),
                ),
        )
        .with(
            "traces",
            Json::Arr(trace_ids.iter().map(Json::str).collect()),
        );
    for (key, value) in extra {
        doc.set(*key, value.clone());
    }
    doc.to_string()
}

/// Submit a job; panics on anything but `202`.
fn submit(addr: &str, body: &str) -> String {
    let (status, text) =
        client::request_text(addr, "POST", "/api/v1/jobs", body.as_bytes()).expect("submit");
    assert_eq!(status, 202, "submit failed: {text}");
    diffaudit_json::parse(&text)
        .expect("submit response JSON")
        .get("jobId")
        .and_then(Json::as_str)
        .expect("jobId")
        .to_string()
}

fn poll_to_terminal(addr: &str, job_id: &str) -> Json {
    let deadline = Instant::now() + Duration::from_secs(120);
    loop {
        let (status, text) =
            client::request_text(addr, "GET", &format!("/api/v1/jobs/{job_id}"), &[])
                .expect("status poll");
        assert_eq!(status, 200, "poll failed: {text}");
        let doc = diffaudit_json::parse(&text).expect("status JSON");
        let state = doc.get("state").and_then(Json::as_str).expect("state");
        if state != "queued" && state != "running" {
            return doc;
        }
        assert!(Instant::now() < deadline, "job {job_id} never finished");
        std::thread::sleep(Duration::from_millis(10));
    }
}

fn fetch_result(addr: &str, job_id: &str) -> (u16, String) {
    client::request_text(addr, "GET", &format!("/api/v1/jobs/{job_id}/result"), &[])
        .expect("result fetch")
}

// ---------------------------------------------------------------- tests

/// Two jobs on one daemon — a clean service and a chaos-damaged one —
/// finish concurrently with the CLI's exit contract mapped onto HTTP:
/// clean → 200/exit-style 0, salvaged → 206/exit-style 2 with a
/// degradation ledger, strict salvage → 422/exit-style 1.
#[test]
fn concurrent_clean_and_damaged_jobs_follow_the_exit_contract() {
    let (addr, handle) = boot(ServeConfig::default());
    let clean = dataset_service("duolingo");
    let damaged = dataset_service("tiktok");
    let clean_ids = upload_service(&addr, &clean, false);
    let damaged_ids = upload_service(&addr, &damaged, true);

    let clean_job = submit(&addr, &job_body(&clean, &clean_ids, &[]));
    let damaged_job = submit(&addr, &job_body(&damaged, &damaged_ids, &[]));
    let strict_job = submit(
        &addr,
        &job_body(&damaged, &damaged_ids, &[("strict", Json::Bool(true))]),
    );

    let clean_view = poll_to_terminal(&addr, &clean_job);
    assert_eq!(
        clean_view.get("state").and_then(Json::as_str),
        Some("clean")
    );
    assert_eq!(clean_view.get("exitStyle").and_then(Json::as_i64), Some(0));
    let (status, body) = fetch_result(&addr, &clean_job);
    assert_eq!(status, 200);
    assert!(body.contains("\"services\""));
    assert!(
        !body.contains("\"degradation\""),
        "clean result must not carry a ledger"
    );

    let damaged_view = poll_to_terminal(&addr, &damaged_job);
    assert_eq!(
        damaged_view.get("state").and_then(Json::as_str),
        Some("salvaged")
    );
    assert_eq!(
        damaged_view.get("exitStyle").and_then(Json::as_i64),
        Some(2)
    );
    let (status, body) = fetch_result(&addr, &damaged_job);
    assert_eq!(status, 206);
    let doc = diffaudit_json::parse(&body).expect("salvaged result JSON");
    let dropped = doc
        .get("degradation")
        .and_then(|d| d.get("dropped"))
        .and_then(Json::as_i64)
        .expect("ledger totals in salvaged result");
    assert!(dropped > 0, "salvaged job must report dropped records");

    let strict_view = poll_to_terminal(&addr, &strict_job);
    assert_eq!(
        strict_view.get("state").and_then(Json::as_str),
        Some("failed")
    );
    assert_eq!(strict_view.get("exitStyle").and_then(Json::as_i64), Some(1));
    let (status, _) = fetch_result(&addr, &strict_job);
    assert_eq!(status, 422);

    let exit = shutdown_and_join(&addr, handle);
    assert_eq!(exit.orphaned, 0);
    assert_eq!(exit.jobs_finished, 3);
}

/// A daemon job over uploaded traces renders the same audit document,
/// byte for byte, as `diffaudit audit --format json` over the same
/// artifacts written to disk.
#[test]
fn result_document_is_byte_identical_to_the_batch_cli() {
    let capture = dataset_service("quizlet");

    // Batch CLI side: write the dataset to disk and audit it.
    let root = std::env::temp_dir().join(format!("diffaudit-serve-ident-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&root);
    std::fs::create_dir_all(&root).expect("temp dir");
    let dataset = generate_dataset(&DatasetOptions {
        seed: 21,
        volume_scale: 0.02,
        mobile_pinned_fraction: 0.0,
        services: vec!["quizlet".into()],
    });
    let dirs: Vec<PathBuf> =
        diffaudit::loader::write_dataset(&dataset, &root).expect("write dataset");
    let output = std::process::Command::new(env!("CARGO_BIN_EXE_diffaudit"))
        .arg("audit")
        .arg(&dirs[0])
        .args(["--format", "json", "--log-level", "error"])
        .output()
        .expect("run batch CLI");
    assert_eq!(output.status.code(), Some(0));
    let cli_doc = String::from_utf8(output.stdout).expect("CLI output UTF-8");

    // Daemon side: upload the same artifacts and run a default job.
    let (addr, handle) = boot(ServeConfig::default());
    let ids = upload_service(&addr, &capture, false);
    let job = submit(&addr, &job_body(&capture, &ids, &[]));
    let view = poll_to_terminal(&addr, &job);
    assert_eq!(view.get("state").and_then(Json::as_str), Some("clean"));
    let (status, body) = fetch_result(&addr, &job);
    assert_eq!(status, 200);
    let exit = shutdown_and_join(&addr, handle);
    assert_eq!(exit.orphaned, 0);

    assert_eq!(
        body, cli_doc,
        "daemon result and batch CLI JSON must be byte-identical"
    );
    let _ = std::fs::remove_dir_all(&root);
}

/// A burst of 8 concurrent submissions against queue capacity 4 and one
/// (busy) worker: at least 3 must be shed with `429 queue full`, and every
/// accepted job still reaches a terminal state.
#[test]
fn submission_burst_beyond_queue_capacity_sheds_with_429() {
    let (addr, handle) = boot(ServeConfig {
        queue_capacity: 4,
        workers: 1,
        enable_chaos: true,
        ..ServeConfig::default()
    });
    let capture = dataset_service("duolingo");
    let ids = upload_service(&addr, &capture, false);
    // Stalled decodes with a short deadline keep the worker pinned for the
    // whole burst, so admission is decided purely by queue capacity.
    let body = job_body(
        &capture,
        &ids,
        &[
            ("chaos", Json::str("stall-decode")),
            ("deadlineMs", Json::int(400)),
        ],
    );

    let results: Vec<u16> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..8)
            .map(|_| {
                let addr = addr.as_str();
                let body = body.as_str();
                scope.spawn(move || {
                    let (status, _) =
                        client::request_text(addr, "POST", "/api/v1/jobs", body.as_bytes())
                            .expect("submit");
                    status
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("join"))
            .collect()
    });
    let accepted = results.iter().filter(|&&s| s == 202).count();
    let shed = results.iter().filter(|&&s| s == 429).count();
    assert_eq!(accepted + shed, 8, "unexpected statuses: {results:?}");
    assert!(
        shed >= 3,
        "8 submissions vs capacity 4 + 1 worker must shed >=3, got {shed}"
    );
    assert!(
        accepted >= 4,
        "the queue must still admit jobs, got {accepted}"
    );

    // Server-side shed accounting must equal the client's observed 429s.
    // Asserting on the shared in-process global recorder is safe here
    // because this is the only in-process test that sheds load.
    let (status, text) =
        client::request_text(&addr, "GET", "/api/v1/metrics", &[]).expect("metrics");
    assert_eq!(status, 200);
    let counted = diffaudit_json::parse(&text)
        .expect("metrics JSON")
        .get("counters")
        .and_then(|c| c.get("serve.queue.shed"))
        .and_then(Json::as_i64)
        .unwrap_or(0);
    assert_eq!(
        counted as usize, shed,
        "serve.queue.shed must count exactly the observed 429s"
    );

    // Every accepted job reaches a terminal state; shed ones left no record.
    let (status, text) = client::request_text(&addr, "GET", "/api/v1/jobs", &[]).expect("list");
    assert_eq!(status, 200);
    let listed = diffaudit_json::parse(&text)
        .expect("list JSON")
        .get("jobs")
        .and_then(|j| j.as_arr().map(<[Json]>::len))
        .expect("jobs array");
    assert_eq!(
        listed, accepted,
        "shed submissions must not leave job records"
    );

    let exit = shutdown_and_join(&addr, handle);
    assert_eq!(exit.orphaned, 0);
    assert_eq!(exit.jobs_finished, accepted);
}

/// A stalled decoder is cut off at its deadline and lands as `salvaged`
/// with `timeout:` drop reasons (or `failed` under strict policy), while a
/// concurrent healthy job on the other worker completes clean.
#[test]
fn stalled_decoder_times_out_at_deadline_while_concurrent_jobs_complete() {
    let (addr, handle) = boot(ServeConfig {
        workers: 2,
        enable_chaos: true,
        ..ServeConfig::default()
    });
    let capture = dataset_service("duolingo");
    let ids = upload_service(&addr, &capture, false);

    let started = Instant::now();
    let stalled = submit(
        &addr,
        &job_body(
            &capture,
            &ids,
            &[
                ("chaos", Json::str("stall-decode")),
                ("deadlineMs", Json::int(300)),
            ],
        ),
    );
    let healthy = submit(&addr, &job_body(&capture, &ids, &[]));

    let healthy_view = poll_to_terminal(&addr, &healthy);
    assert_eq!(
        healthy_view.get("state").and_then(Json::as_str),
        Some("clean"),
        "the stalled job must not poison its neighbour"
    );

    let stalled_view = poll_to_terminal(&addr, &stalled);
    assert!(
        started.elapsed() < Duration::from_secs(30),
        "deadline must cut the stall off, not let it run forever"
    );
    assert_eq!(
        stalled_view.get("state").and_then(Json::as_str),
        Some("salvaged"),
        "timed-out units are ledger drops, so the policy verdict is salvaged"
    );
    let (status, body) = fetch_result(&addr, &stalled);
    assert_eq!(status, 206);
    let doc = diffaudit_json::parse(&body).expect("salvaged result JSON");
    let reasons: Vec<String> = collect_drop_reasons(&doc);
    assert!(!reasons.is_empty(), "expected ledger drops in {body}");
    assert!(
        reasons.iter().all(|r| r.starts_with("timeout:")),
        "every drop must carry the timeout reason code: {reasons:?}"
    );

    // The same stall under strict policy is a hard failure (exit-style 1).
    let strict = submit(
        &addr,
        &job_body(
            &capture,
            &ids,
            &[
                ("chaos", Json::str("stall-decode")),
                ("deadlineMs", Json::int(300)),
                ("strict", Json::Bool(true)),
            ],
        ),
    );
    let strict_view = poll_to_terminal(&addr, &strict);
    assert_eq!(
        strict_view.get("state").and_then(Json::as_str),
        Some("failed")
    );
    assert_eq!(strict_view.get("exitStyle").and_then(Json::as_i64), Some(1));

    let exit = shutdown_and_join(&addr, handle);
    assert_eq!(exit.orphaned, 0);
}

fn collect_drop_reasons(doc: &Json) -> Vec<String> {
    let mut reasons = Vec::new();
    let services = doc
        .get("degradation")
        .and_then(|d| d.get("services"))
        .and_then(Json::as_arr)
        .unwrap_or(&[]);
    for service in services {
        for unit in service.get("units").and_then(Json::as_arr).unwrap_or(&[]) {
            for drop in unit.get("drops").and_then(Json::as_arr).unwrap_or(&[]) {
                if let Some(reason) = drop.get("reason").and_then(Json::as_str) {
                    reasons.push(reason.to_string());
                }
            }
        }
    }
    reasons
}

/// A job that panics is contained: its record says `panicked` (HTTP 500),
/// the single worker survives to run the next job, and the daemon still
/// drains cleanly.
#[test]
fn panicking_job_is_contained_and_the_worker_survives() {
    let (addr, handle) = boot(ServeConfig {
        workers: 1,
        enable_chaos: true,
        ..ServeConfig::default()
    });
    let capture = dataset_service("duolingo");
    let ids = upload_service(&addr, &capture, false);

    let doomed = submit(
        &addr,
        &job_body(&capture, &ids, &[("chaos", Json::str("panic"))]),
    );
    let view = poll_to_terminal(&addr, &doomed);
    assert_eq!(view.get("state").and_then(Json::as_str), Some("panicked"));
    assert_eq!(view.get("exitStyle").and_then(Json::as_i64), Some(1));
    let (status, body) = fetch_result(&addr, &doomed);
    assert_eq!(status, 500);
    assert!(
        body.contains("job panicked"),
        "panic result must carry an error document: {body}"
    );

    // The same (only) worker must still be alive to take the next job.
    let follow_up = submit(&addr, &job_body(&capture, &ids, &[]));
    let view = poll_to_terminal(&addr, &follow_up);
    assert_eq!(view.get("state").and_then(Json::as_str), Some("clean"));

    let exit = shutdown_and_join(&addr, handle);
    assert_eq!(exit.orphaned, 0);
    assert_eq!(exit.jobs_finished, 2);
}

/// Shutdown finishes in-flight and queued jobs before the daemon exits,
/// and the listener actually closes.
#[test]
fn graceful_drain_completes_queued_jobs() {
    let (addr, handle) = boot(ServeConfig {
        workers: 1,
        drain_deadline_ms: 60_000,
        ..ServeConfig::default()
    });
    let capture = dataset_service("duolingo");
    let ids = upload_service(&addr, &capture, false);
    let first = submit(&addr, &job_body(&capture, &ids, &[]));
    let second = submit(&addr, &job_body(&capture, &ids, &[]));
    assert!(!first.is_empty() && !second.is_empty());

    // Shut down while both jobs are still pending on the single worker.
    let exit = shutdown_and_join(&addr, handle);
    assert_eq!(
        exit.jobs_finished, 2,
        "drain must complete queued jobs, not abandon them"
    );
    assert_eq!(exit.orphaned, 0);
    assert!(
        std::net::TcpStream::connect(&addr).is_err(),
        "listener must be closed after drain"
    );
}

/// Transport-level robustness: garbage, oversized, and unknown requests
/// get error statuses; the daemon keeps serving afterwards.
#[test]
fn malformed_requests_get_4xx_and_never_kill_the_daemon() {
    let (addr, handle) = boot(ServeConfig::default());

    // Raw garbage on the socket → 400.
    let mut stream = std::net::TcpStream::connect(&addr).expect("connect");
    stream.write_all(b"\x00\xfegarbage\r\n\r\n").expect("write");
    stream
        .shutdown(std::net::Shutdown::Write)
        .expect("half-close");
    let mut response = String::new();
    stream.read_to_string(&mut response).expect("read");
    assert!(response.starts_with("HTTP/1.1 400 "), "{response}");

    // Declared body beyond the 16 MiB default bound → 413 without reading
    // the body.
    let mut stream = std::net::TcpStream::connect(&addr).expect("connect");
    stream
        .write_all(b"POST /api/v1/traces HTTP/1.1\r\nContent-Length: 99999999\r\n\r\n")
        .expect("write");
    let mut response = String::new();
    stream.read_to_string(&mut response).expect("read");
    assert!(response.starts_with("HTTP/1.1 413 "), "{response}");

    // Unknown endpoint, wrong method, missing resources, bad params.
    let (status, _) = client::request_text(&addr, "GET", "/nope", &[]).expect("req");
    assert_eq!(status, 404);
    let (status, _) = client::request_text(&addr, "DELETE", "/api/v1/jobs", &[]).expect("req");
    assert_eq!(status, 405);
    let (status, _) = client::request_text(&addr, "GET", "/api/v1/jobs/j-999", &[]).expect("req");
    assert_eq!(status, 404);
    let (status, _) =
        client::request_text(&addr, "GET", "/api/v1/jobs/j-999/result", &[]).expect("req");
    assert_eq!(status, 404);
    let (status, _) = client::request_text(
        &addr,
        "POST",
        "/api/v1/traces?platform=gameboy&kind=logged-in&category=child",
        b"not empty",
    )
    .expect("req");
    assert_eq!(status, 400);
    let (status, _) =
        client::request_text(&addr, "POST", "/api/v1/jobs", b"{not json").expect("req");
    assert_eq!(status, 400);
    // Chaos options are rejected when the daemon was not started with
    // chaos enabled.
    let capture = dataset_service("duolingo");
    let ids = upload_service(&addr, &capture, false);
    let (status, text) = client::request_text(
        &addr,
        "POST",
        "/api/v1/jobs",
        job_body(&capture, &ids, &[("chaos", Json::str("panic"))]).as_bytes(),
    )
    .expect("req");
    assert_eq!(status, 400, "{text}");

    // After all of that, the daemon still works end to end.
    let (status, text) = client::request_text(&addr, "GET", "/healthz", &[]).expect("health");
    assert_eq!(status, 200);
    assert!(text.contains("\"ok\""));
    let job = submit(&addr, &job_body(&capture, &ids, &[]));
    let view = poll_to_terminal(&addr, &job);
    assert_eq!(view.get("state").and_then(Json::as_str), Some("clean"));

    let exit = shutdown_and_join(&addr, handle);
    assert_eq!(exit.orphaned, 0);
}

// ------------------------------------------- live telemetry (subprocess)

/// One parsed exposition sample: the full series key (base name plus its
/// literal label block, if any) and the value.
struct ExpoSample {
    series: String,
    value: f64,
}

/// A deliberately independent, minimal Prometheus text-format parser —
/// NOT the `diffaudit_obs::parse_exposition` the CLI uses — so the wire
/// format itself is under test, not just round-tripping through one
/// implementation.
fn parse_expo_lines(text: &str) -> Vec<ExpoSample> {
    let mut samples = Vec::new();
    for line in text.lines() {
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let (series, value) = line.rsplit_once(' ').unwrap_or_else(|| {
            panic!("exposition line has no value separator: {line:?}");
        });
        let value: f64 = value
            .parse()
            .unwrap_or_else(|_| panic!("unparseable sample value in {line:?}"));
        samples.push(ExpoSample {
            series: series.to_string(),
            value,
        });
    }
    samples
}

fn expo_value(samples: &[ExpoSample], series: &str) -> Option<f64> {
    samples.iter().find(|s| s.series == series).map(|s| s.value)
}

/// The live-telemetry contract, exercised against a daemon subprocess (a
/// subprocess because the assertions need a recorder this test binary's
/// other tests cannot touch): `GET /metrics` parses under concurrent
/// scraping while clean, damaged, and stalled jobs run; `_total` counters
/// never move backwards; the queue-depth gauge goes nonzero under load
/// and every lifecycle gauge returns to zero once the jobs drain; and the
/// scraped clean job's result stays byte-identical to the batch CLI.
#[test]
fn metrics_exposition_stays_consistent_under_concurrent_scraping() {
    use std::io::BufRead;
    use std::sync::atomic::{AtomicBool, Ordering};

    let mut child = std::process::Command::new(env!("CARGO_BIN_EXE_diffaudit"))
        .args([
            "serve",
            "--port",
            "0",
            "--queue",
            "8",
            "--workers",
            "1",
            "--chaos",
            "--log-level",
            "error",
        ])
        .stdout(std::process::Stdio::piped())
        .spawn()
        .expect("spawn daemon subprocess");
    let stdout = child.stdout.take().expect("daemon stdout");
    let mut lines = std::io::BufReader::new(stdout).lines();
    let banner = lines
        .next()
        .expect("daemon prints its address")
        .expect("read banner");
    let addr = banner
        .strip_prefix("listening on http://")
        .unwrap_or_else(|| panic!("unexpected banner {banner:?}"))
        .to_string();

    let clean = dataset_service("duolingo");
    let damaged = dataset_service("tiktok");
    let clean_ids = upload_service(&addr, &clean, false);
    let damaged_ids = upload_service(&addr, &damaged, true);

    // One worker: the stalled job pins it for its 800ms deadline while
    // the clean and damaged jobs queue behind — the scraper below must
    // observe a nonzero queue-depth gauge in that window.
    let stalled_job = submit(
        &addr,
        &job_body(
            &clean,
            &clean_ids,
            &[
                ("chaos", Json::str("stall-decode")),
                ("deadlineMs", Json::int(800)),
            ],
        ),
    );
    let clean_job = submit(&addr, &job_body(&clean, &clean_ids, &[]));
    let damaged_job = submit(&addr, &job_body(&damaged, &damaged_ids, &[]));

    let stop = AtomicBool::new(false);
    let (max_depth, scrapes) = std::thread::scope(|scope| {
        let scraper = scope.spawn(|| {
            let mut last_totals: std::collections::HashMap<String, f64> =
                std::collections::HashMap::new();
            let mut max_depth: f64 = 0.0;
            let mut scrapes = 0u64;
            while !stop.load(Ordering::SeqCst) {
                let (status, body) =
                    client::request_text(&addr, "GET", "/metrics", &[]).expect("scrape");
                assert_eq!(status, 200);
                let samples = parse_expo_lines(&body);
                assert!(
                    expo_value(&samples, "diffaudit_uptime_seconds").is_some(),
                    "exposition must carry the uptime gauge"
                );
                for sample in &samples {
                    let base = sample.series.split('{').next().unwrap_or("");
                    if !base.ends_with("_total") {
                        continue;
                    }
                    if let Some(previous) = last_totals.get(&sample.series) {
                        assert!(
                            sample.value >= *previous,
                            "counter {} moved backwards: {} -> {}",
                            sample.series,
                            previous,
                            sample.value
                        );
                    }
                    last_totals.insert(sample.series.clone(), sample.value);
                }
                if let Some(depth) = expo_value(&samples, "serve_queue_depth") {
                    max_depth = max_depth.max(depth);
                }
                scrapes += 1;
                std::thread::sleep(Duration::from_millis(5));
            }
            (max_depth, scrapes)
        });

        let stalled_view = poll_to_terminal(&addr, &stalled_job);
        assert_eq!(
            stalled_view.get("state").and_then(Json::as_str),
            Some("salvaged")
        );
        let clean_view = poll_to_terminal(&addr, &clean_job);
        assert_eq!(
            clean_view.get("state").and_then(Json::as_str),
            Some("clean")
        );
        let damaged_view = poll_to_terminal(&addr, &damaged_job);
        assert_eq!(
            damaged_view.get("state").and_then(Json::as_str),
            Some("salvaged")
        );
        stop.store(true, Ordering::SeqCst);
        scraper.join().expect("scraper must not panic")
    });
    assert!(scrapes >= 10, "expected sustained scraping, got {scrapes}");
    assert!(
        max_depth >= 1.0,
        "queue-depth gauge never went nonzero while jobs were queued"
    );

    // All jobs terminal: every lifecycle gauge must be back at zero (the
    // busy-worker gauge decrements before the terminal phase is written,
    // so terminal phases imply the worker is already accounted free).
    let (status, body) = client::request_text(&addr, "GET", "/metrics", &[]).expect("scrape");
    assert_eq!(status, 200);
    let samples = parse_expo_lines(&body);
    for gauge in [
        "serve_queue_depth",
        "serve_jobs_in_flight",
        "serve_workers_busy",
    ] {
        assert_eq!(
            expo_value(&samples, gauge),
            Some(0.0),
            "{gauge} must return to zero after the jobs drain"
        );
    }

    // The daemon samples its own RSS/CPU from /proc at boot, so on Linux
    // the exposition must carry the process resource series; elsewhere the
    // sampler degrades and the series are absent by design.
    if std::path::Path::new("/proc/self/statm").exists() {
        let rss = expo_value(&samples, "diffaudit_process_resident_bytes")
            .expect("daemon must export diffaudit_process_resident_bytes");
        assert!(rss > 0.0, "resident bytes must be positive, got {rss}");
        let cpu = expo_value(&samples, "diffaudit_process_cpu_seconds_total")
            .expect("daemon must export diffaudit_process_cpu_seconds_total");
        assert!(cpu >= 0.0, "cpu seconds must be non-negative, got {cpu}");
    }

    // Concurrent scraping must not perturb job results: the clean job's
    // document is byte-identical to the batch CLI on the same artifacts.
    let root = std::env::temp_dir().join(format!("diffaudit-serve-scrape-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&root);
    std::fs::create_dir_all(&root).expect("temp dir");
    let dataset = generate_dataset(&DatasetOptions {
        seed: 21,
        volume_scale: 0.02,
        mobile_pinned_fraction: 0.0,
        services: vec!["duolingo".into()],
    });
    let dirs: Vec<PathBuf> =
        diffaudit::loader::write_dataset(&dataset, &root).expect("write dataset");
    let output = std::process::Command::new(env!("CARGO_BIN_EXE_diffaudit"))
        .arg("audit")
        .arg(&dirs[0])
        .args(["--format", "json", "--log-level", "error"])
        .output()
        .expect("run batch CLI");
    assert_eq!(output.status.code(), Some(0));
    let cli_doc = String::from_utf8(output.stdout).expect("CLI output UTF-8");
    let (status, daemon_doc) = fetch_result(&addr, &clean_job);
    assert_eq!(status, 200);
    assert_eq!(
        daemon_doc, cli_doc,
        "scraping must not perturb the audit document"
    );
    let _ = std::fs::remove_dir_all(&root);

    let (status, _) =
        client::request_text(&addr, "POST", "/api/v1/shutdown", &[]).expect("shutdown");
    assert_eq!(status, 202);
    let exit = child.wait().expect("daemon exit");
    assert_eq!(exit.code(), Some(0), "daemon must drain cleanly");
}

/// Regression test for the `obs tail` restart stall: a client polling
/// with a cursor from a previous daemon incarnation (higher than the new
/// daemon's ring sequence) must receive the daemon's *own* ring position
/// back, not an echo of the stale cursor — echoing would let the client
/// poll past the new head forever. `client::next_cursor` then detects the
/// regression and resyncs.
#[test]
fn events_cursor_resyncs_after_a_ring_reset() {
    let (addr, handle) = boot(ServeConfig::default());

    // A cursor far beyond anything this daemon's ring has issued — the
    // client's view of a previous, longer-lived incarnation.
    let stale: u64 = 1 << 40;
    let (status, body) =
        client::request_text(&addr, "GET", &format!("/api/v1/events?since={stale}"), &[])
            .expect("events poll");
    assert_eq!(status, 200);
    let doc = diffaudit_json::parse(&body).expect("events JSON");
    assert_eq!(
        doc.get("events").and_then(Json::as_arr).map(|a| a.len()),
        Some(0),
        "nothing in the ring is newer than the stale cursor"
    );
    let server_cursor = doc
        .get("cursor")
        .and_then(Json::as_i64)
        .expect("cursor field") as u64;
    assert!(
        server_cursor < stale,
        "server must report its own ring position ({server_cursor}), not echo the stale cursor"
    );

    // The client helper detects the regression and adopts the new head...
    let (next, resynced) = client::next_cursor(stale, server_cursor);
    assert!(resynced, "a cursor below ours must trigger a resync");
    assert_eq!(next, server_cursor);

    // ...and from the resynced cursor, polling proceeds normally.
    let (status, body) =
        client::request_text(&addr, "GET", &format!("/api/v1/events?since={next}"), &[])
            .expect("events poll after resync");
    assert_eq!(status, 200);
    let doc = diffaudit_json::parse(&body).expect("events JSON");
    let follow_up = doc
        .get("cursor")
        .and_then(Json::as_i64)
        .expect("cursor field") as u64;
    let (_, resynced) = client::next_cursor(next, follow_up);
    assert!(!resynced, "a forward-moving cursor must not resync");

    let exit = shutdown_and_join(&addr, handle);
    assert_eq!(exit.orphaned, 0);
}

/// `/result` on a queued or running job answers 409 with the current
/// state, not a partial document.
#[test]
fn result_of_an_unfinished_job_is_409() {
    let (addr, handle) = boot(ServeConfig {
        workers: 1,
        enable_chaos: true,
        ..ServeConfig::default()
    });
    let capture = dataset_service("duolingo");
    let ids = upload_service(&addr, &capture, false);
    let job = submit(
        &addr,
        &job_body(
            &capture,
            &ids,
            &[
                ("chaos", Json::str("stall-decode")),
                ("deadlineMs", Json::int(2000)),
            ],
        ),
    );
    let (status, text) = fetch_result(&addr, &job);
    assert_eq!(status, 409, "{text}");
    assert!(text.contains("not finished"), "{text}");

    poll_to_terminal(&addr, &job);
    let (status, _) = fetch_result(&addr, &job);
    assert_eq!(status, 206);

    let exit = shutdown_and_join(&addr, handle);
    assert_eq!(exit.orphaned, 0);
}
