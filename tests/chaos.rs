//! Chaos suite: drive the salvage pipeline across the full fault-operator ×
//! seed grid and assert the three degradation invariants:
//!
//! 1. **No panics** — every corrupted input decodes to a value or a typed
//!    error (a panic aborts the test process, so completion is the proof).
//! 2. **Ledger conservation** — `processed + dropped == total` at every
//!    stage, for every operator, seed, and corruption rate.
//! 3. **Monotone degradation** — for lossy operators, raising the corruption
//!    rate never *recovers* audit signal: the number of recovered exchanges
//!    and the number of observed Table-4 cells are non-increasing in the
//!    rate (fault selection is nested by construction, so the survivors at a
//!    higher rate are a subset of the survivors at a lower rate).
//!
//! At rate 0 every operator must be the identity: the salvage decode output
//! equals the strict decode and the ledger is clean.

use diffaudit::diff::ObservedGrid;
use diffaudit::pipeline::{ClassificationMode, LoadedUnit, Pipeline, ServiceInput};
use diffaudit_nettrace::fault::{FaultOp, FaultSpec};
use diffaudit_nettrace::pcapng::inject_secrets;
use diffaudit_nettrace::{
    decode_auto, decode_auto_salvage, decode_auto_salvage_ctl, har_to_exchanges_salvage, KeyLog,
    SalvageLog,
};
use diffaudit_services::{generate_dataset, DatasetOptions, GeneratedDataset};

const SEEDS: [u64; 2] = [3, 11];
const RATES: [f64; 4] = [0.0, 0.05, 0.25, 0.6];

fn dataset() -> GeneratedDataset {
    generate_dataset(&DatasetOptions {
        seed: 21,
        volume_scale: 0.02,
        mobile_pinned_fraction: 0.0,
        services: vec!["tiktok".into()],
    })
}

/// Decode every artifact of the dataset's single service with `fault`
/// applied (`None` = pristine), tallying all damage into one ledger.
fn salvaged_input(
    dataset: &GeneratedDataset,
    fault: Option<FaultSpec>,
) -> (ServiceInput, SalvageLog) {
    let capture = &dataset.services[0];
    let mut log = SalvageLog::new();
    let mut units = Vec::new();
    for artifact in &capture.artifacts {
        if let Some(har) = &artifact.har {
            let text = match &fault {
                Some(spec) => spec.apply_har(har),
                None => har.clone(),
            };
            // Document-level damage loses the whole unit; that is still
            // "degradation", just coarser.
            if let Ok(exchanges) = har_to_exchanges_salvage(&text, &mut log) {
                let n = exchanges.len();
                units.push(LoadedUnit {
                    platform: artifact.platform,
                    kind: artifact.kind,
                    category: artifact.category,
                    exchanges,
                    opaque_snis: Vec::new(),
                    packet_count: n,
                    flow_count: n,
                });
            }
        } else if let Some(pcap) = &artifact.pcap {
            let bytes = match &fault {
                Some(spec) => spec.apply_pcap(pcap),
                None => pcap.clone(),
            };
            let keylog = match &artifact.keylog {
                Some(text) => {
                    let text = match &fault {
                        Some(spec) => spec.apply_keylog(text),
                        None => text.clone(),
                    };
                    KeyLog::parse_salvage(&text, &mut log)
                }
                None => KeyLog::new(),
            };
            if let Ok(decoded) = decode_auto_salvage(&bytes, &keylog, &mut log) {
                units.push(LoadedUnit {
                    platform: artifact.platform,
                    kind: artifact.kind,
                    category: artifact.category,
                    exchanges: decoded.exchanges,
                    opaque_snis: decoded.opaque.into_iter().filter_map(|o| o.sni).collect(),
                    packet_count: decoded.packet_count,
                    flow_count: decoded.flow_count,
                });
            }
        }
    }
    let input = ServiceInput {
        name: capture.spec.name.to_string(),
        slug: capture.spec.slug.to_string(),
        first_party_domains: capture
            .spec
            .first_party_domains
            .iter()
            .map(|d| d.to_string())
            .collect(),
        units,
    };
    (input, log)
}

/// The audit signal recovered from a (possibly damaged) input: total
/// exchanges and observed Table-4 cells.
fn recovered_signal(dataset: &GeneratedDataset, input: ServiceInput) -> (usize, usize) {
    let exchanges: usize = input.units.iter().map(|u| u.exchanges.len()).sum();
    let outcome = Pipeline::new(ClassificationMode::Oracle(dataset.key_truth.clone()))
        .run_inputs(vec![input]);
    let cells = match outcome.services.first() {
        Some(service) => ObservedGrid::build(service).cells().len(),
        None => 0,
    };
    (exchanges, cells)
}

#[test]
fn every_operator_is_identity_at_rate_zero() {
    let dataset = dataset();
    let (strict, clean_log) = salvaged_input(&dataset, None);
    assert!(
        clean_log.is_clean(),
        "pristine decode must have a clean ledger"
    );
    let strict_exchanges: Vec<_> = strict.units.iter().map(|u| u.exchanges.clone()).collect();
    for op in FaultOp::ALL {
        for seed in SEEDS {
            let spec = FaultSpec {
                op,
                seed,
                rate: 0.0,
            };
            let (input, log) = salvaged_input(&dataset, Some(spec));
            assert!(log.is_clean(), "{op} seed {seed}: rate 0 must be clean");
            assert!(log.conserved());
            let exchanges: Vec<_> = input.units.iter().map(|u| u.exchanges.clone()).collect();
            assert_eq!(
                exchanges, strict_exchanges,
                "{op} seed {seed}: rate 0 must be the identity"
            );
        }
    }
}

#[test]
fn every_operator_never_panics_and_conserves_the_ledger() {
    let dataset = dataset();
    for op in FaultOp::ALL {
        for seed in SEEDS {
            for rate in RATES {
                let spec = FaultSpec { op, seed, rate };
                let (_, log) = salvaged_input(&dataset, Some(spec));
                assert!(
                    log.conserved(),
                    "{op} seed {seed} rate {rate}: ledger must conserve"
                );
            }
        }
    }
}

#[test]
fn lossy_operators_degrade_monotonically() {
    let dataset = dataset();
    for op in FaultOp::LOSSY {
        for seed in SEEDS {
            let mut last: Option<(usize, usize)> = None;
            for rate in RATES {
                let spec = FaultSpec { op, seed, rate };
                let (input, log) = salvaged_input(&dataset, Some(spec));
                assert!(log.conserved());
                let (exchanges, cells) = recovered_signal(&dataset, input);
                if let Some((prev_exchanges, prev_cells)) = last {
                    assert!(
                        exchanges <= prev_exchanges,
                        "{op} seed {seed} rate {rate}: recovered {exchanges} exchanges, \
                         more than {prev_exchanges} at the lower rate"
                    );
                    assert!(
                        cells <= prev_cells,
                        "{op} seed {seed} rate {rate}: observed {cells} Table-4 cells, \
                         more than {prev_cells} at the lower rate"
                    );
                }
                last = Some((exchanges, cells));
            }
        }
    }
}

#[test]
fn rearranging_operators_lose_no_payload() {
    // Reordering, duplication, and overlapping retransmissions rearrange
    // the capture without destroying payload: TCP reassembly must recover
    // every exchange.
    let dataset = dataset();
    let (strict, _) = salvaged_input(&dataset, None);
    let strict_total: usize = strict.units.iter().map(|u| u.exchanges.len()).sum();
    for op in [
        FaultOp::SegmentReorder,
        FaultOp::SegmentDuplicate,
        FaultOp::SegmentOverlap,
    ] {
        for seed in SEEDS {
            let spec = FaultSpec {
                op,
                seed,
                rate: 0.3,
            };
            let (input, log) = salvaged_input(&dataset, Some(spec));
            assert!(log.conserved());
            let total: usize = input.units.iter().map(|u| u.exchanges.len()).sum();
            assert_eq!(
                total, strict_total,
                "{op} seed {seed}: rearrangement must not lose exchanges"
            );
        }
    }
}

#[test]
fn misalignment_operators_still_recover_most_of_the_audit() {
    // Lying length fields and record desync damage the reader's framing, so
    // resync can lose (or occasionally resurrect) neighbouring records —
    // recovery is not monotone, but it must stay substantial and the ledger
    // must account for every skipped byte range.
    let dataset = dataset();
    let (strict, _) = salvaged_input(&dataset, None);
    let strict_total: usize = strict.units.iter().map(|u| u.exchanges.len()).sum();
    for op in [FaultOp::LyingLength, FaultOp::RecordDesync] {
        for seed in SEEDS {
            let spec = FaultSpec {
                op,
                seed,
                rate: 0.3,
            };
            let (input, log) = salvaged_input(&dataset, Some(spec));
            assert!(log.conserved());
            assert!(
                log.total_dropped() > 0,
                "{op} seed {seed}: framing damage must be visible in the ledger"
            );
            let total: usize = input.units.iter().map(|u| u.exchanges.len()).sum();
            assert!(
                total >= strict_total / 2,
                "{op} seed {seed}: salvaged only {total} of {strict_total} exchanges"
            );
            assert!(
                total < strict_total,
                "{op} seed {seed}: framing damage at rate 0.3 should lose something"
            );
        }
    }
}

#[test]
fn a_stalled_decoder_is_cut_off_at_the_deadline_across_the_fault_grid() {
    // Decoder-stall operator: every cancellation checkpoint costs
    // wall-clock (the chaos probe sleeps), so a short deadline expires
    // mid-decode. The salvage decoders must cut the unit off at the
    // deadline — never panic or wedge — for every fault operator, and
    // the partial ledger accumulated up to the cut must still conserve.
    use diffaudit_nettrace::capture::DecodeError;
    use diffaudit_util::cancel::{CancelToken, Ctl, Deadline, Interrupt};
    use std::sync::Arc;
    use std::time::Duration;

    let dataset = dataset();
    let capture = &dataset.services[0];
    let artifact = capture
        .artifacts
        .iter()
        .find(|a| a.pcap.is_some())
        .expect("dataset has a pcap artifact");
    let pcap = artifact.pcap.as_ref().expect("pcap bytes");
    let keylog = match &artifact.keylog {
        Some(text) => KeyLog::parse(text),
        None => KeyLog::new(),
    };
    // Deadline shorter than one stalled checkpoint: the decoder gets the
    // container open, then the first per-record check already trips.
    let stalled_ctl = || {
        Ctl::new(
            CancelToken::new(),
            Deadline::within(Duration::from_millis(1)),
        )
        .with_probe(Arc::new(|| {
            std::thread::sleep(Duration::from_millis(3));
        }))
    };

    // The stall must actually bite on the pristine capture — otherwise
    // the grid below proves nothing.
    let mut pristine_log = SalvageLog::new();
    let err = decode_auto_salvage_ctl(pcap, &keylog, &mut pristine_log, &stalled_ctl())
        .expect_err("a stalled decode must be interrupted, not complete");
    assert!(
        matches!(err, DecodeError::Interrupted(Interrupt::TimedOut)),
        "pristine stall must read as a timeout, got: {err:?}"
    );
    assert!(pristine_log.conserved());

    for op in FaultOp::ALL {
        for seed in SEEDS {
            let spec = FaultSpec {
                op,
                seed,
                rate: 0.25,
            };
            let damaged = spec.apply_pcap(pcap);
            let mut log = SalvageLog::new();
            match decode_auto_salvage_ctl(&damaged, &keylog, &mut log, &stalled_ctl()) {
                Err(DecodeError::Interrupted(i)) => assert!(
                    matches!(i, Interrupt::TimedOut),
                    "{op} seed {seed}: a deadline stall must surface as a timeout, got {i:?}"
                ),
                // An unusable container (or one damaged down to nothing)
                // can finish or fail before the first checkpoint; both
                // are legal as long as the ledger below conserves.
                Ok(_) | Err(_) => {}
            }
            assert!(
                log.conserved(),
                "{op} seed {seed}: ledger must conserve at the stall cut-off"
            );
        }
    }
}

#[test]
fn a_stalled_load_surfaces_as_timeout_drops_even_on_damaged_units() {
    // The serve daemon's salvage loader path: when the deadline expires
    // while units are still queued, every remaining unit — damaged or
    // not — must land in the degradation ledger with a `timeout:` reason
    // code (the interrupt wins over whatever decode damage the bytes
    // also carry), and the ledger must conserve the full unit count.
    use diffaudit::loader::{load_memory_service, MemoryArtifact, MemoryService, MemoryUnit};
    use diffaudit_util::cancel::{CancelToken, Ctl, Deadline};
    use std::time::Duration;

    let dataset = dataset();
    let capture = &dataset.services[0];
    let spec = FaultSpec {
        op: FaultOp::BitFlip,
        seed: 3,
        rate: 0.25,
    };
    let units: Vec<MemoryUnit> = capture
        .artifacts
        .iter()
        .enumerate()
        .map(|(i, artifact)| {
            let art = match (&artifact.har, &artifact.pcap) {
                (Some(har), _) => MemoryArtifact::Har(spec.apply_har(har)),
                (None, Some(pcap)) => MemoryArtifact::Capture {
                    bytes: spec.apply_pcap(pcap),
                    keylog: artifact.keylog.clone(),
                },
                (None, None) => unreachable!("artifact has neither HAR nor pcap"),
            };
            MemoryUnit {
                label: format!("unit-{i}"),
                platform: artifact.platform,
                kind: artifact.kind,
                category: artifact.category,
                artifact: art,
            }
        })
        .collect();
    let total = units.len();
    assert!(total > 0);
    let svc = MemoryService {
        name: capture.spec.name.to_string(),
        slug: capture.spec.slug.to_string(),
        first_party_domains: capture
            .spec
            .first_party_domains
            .iter()
            .map(|d| d.to_string())
            .collect(),
        units,
    };
    let ctl = Ctl::new(
        CancelToken::new(),
        Deadline::within(Duration::ZERO), // already expired: a stall past its budget
    );
    let scope = diffaudit_obs::Scope::job("chaos.stall");
    let (input, ledger) = load_memory_service(svc, 2, &scope, &ctl);
    assert!(
        input.units.is_empty(),
        "an expired deadline must drop every unit"
    );
    let merged = ledger.merged();
    assert!(merged.conserved());
    assert_eq!(ledger.units.len(), total);
    for unit in &ledger.units {
        assert!(
            unit.log
                .drops()
                .iter()
                .any(|d| d.reason.starts_with("timeout:")),
            "damaged unit cut at the deadline must carry the timeout code: {:?}",
            unit.log.drops()
        );
    }
    let _ = scope.finish();
}

#[test]
fn pcapng_with_secrets_survives_the_fault_grid() {
    // The pcapng path (Decryption Secrets Block embedded in the container)
    // must honour the same invariants. Container-agnostic operators damage
    // the bytes; record-structure operators are identity on pcapng.
    let dataset = dataset();
    let capture = &dataset.services[0];
    let artifact = capture
        .artifacts
        .iter()
        .find(|a| a.pcap.is_some() && a.keylog.is_some())
        .expect("dataset has a pcap+keylog artifact");
    let pcap = artifact.pcap.as_ref().unwrap();
    let keylog = KeyLog::parse(artifact.keylog.as_ref().unwrap());
    let pcapng = inject_secrets(pcap, &keylog).expect("secrets injection");

    // Pristine pcapng decodes cleanly and matches the pcap+keylog decode.
    let mut clean_log = SalvageLog::new();
    let clean = decode_auto_salvage(&pcapng, &KeyLog::new(), &mut clean_log).unwrap();
    let strict = decode_auto(pcap, &keylog).unwrap();
    assert_eq!(clean.exchanges, strict.exchanges);
    assert!(clean_log.is_clean());

    for op in FaultOp::ALL {
        for seed in SEEDS {
            for rate in RATES {
                let spec = FaultSpec { op, seed, rate };
                let damaged = spec.apply_pcap(&pcapng);
                let mut log = SalvageLog::new();
                let _ = decode_auto_salvage(&damaged, &KeyLog::new(), &mut log);
                assert!(
                    log.conserved(),
                    "pcapng {op} seed {seed} rate {rate}: ledger must conserve"
                );
            }
        }
    }
}
