//! The paper's headline findings, asserted as executable claims over the
//! reproduced dataset (§1 contributions, §4 key takeaways, §4.2).

use diffaudit::audit::{audit_service, AuditRule};
use diffaudit::diff::{age_similarity, ObservedGrid, PlatformDiff};
use diffaudit::linkability;
use diffaudit::pipeline::{AuditOutcome, ClassificationMode, Pipeline};
use diffaudit::stats::summarize;
use diffaudit_blocklist::DestinationClass;
use diffaudit_ontology::Level2;
use diffaudit_services::{generate_dataset, service_by_slug, DatasetOptions, TraceCategory};

fn full_outcome() -> AuditOutcome {
    let dataset = generate_dataset(&DatasetOptions {
        seed: 2023,
        volume_scale: 0.06,
        mobile_pinned_fraction: 0.12,
        services: Vec::new(),
    });
    Pipeline::new(ClassificationMode::Oracle(dataset.key_truth.clone())).run(&dataset)
}

/// §4.1.1: "All of the services engaged in data collection and/or sharing
/// prior to consent and age disclosure."
#[test]
fn all_services_process_data_before_consent() {
    let outcome = full_outcome();
    for service in &outcome.services {
        let flows = service.flows(TraceCategory::LoggedOut);
        assert!(
            !flows.is_empty(),
            "{} has no logged-out flows",
            service.name
        );
    }
}

/// §4.1.1: "All but one of the services (YouTube) was observed sharing
/// identifiers and personal information with third party ATS while
/// logged-out."
#[test]
fn all_but_youtube_share_with_ats_pre_consent() {
    let outcome = full_outcome();
    for service in &outcome.services {
        let flows = service.flows(TraceCategory::LoggedOut);
        let shares_ats = Level2::TABLE4_ROWS
            .iter()
            .any(|&g| flows.has_group_class(g, DestinationClass::ThirdPartyAts));
        if service.slug.as_str() == "youtube" {
            assert!(!shares_ats, "YouTube must not share with third-party ATS");
        } else {
            assert!(
                shares_ats,
                "{} must share with ATS logged out",
                service.name
            );
        }
    }
}

/// §4.1.2 key takeaway: "No service exhibited significantly different data
/// processing treatment of the child and adolescent users compared to the
/// adult users."
#[test]
fn no_service_differentiates_by_age() {
    let outcome = full_outcome();
    for service in &outcome.services {
        let child = age_similarity(service, TraceCategory::Child, TraceCategory::Adult);
        let adolescent = age_similarity(service, TraceCategory::Adolescent, TraceCategory::Adult);
        assert!(
            child >= 0.6 && adolescent >= 0.7,
            "{}: child/adult {child:.2}, adolescent/adult {adolescent:.2}",
            service.name
        );
    }
}

/// §4.1.2 platform differences: mobile-only flows exist only for Roblox,
/// TikTok, Minecraft, Duolingo and all involve third parties; web-only
/// flows exist for every service.
#[test]
fn platform_differences_match_paper() {
    let outcome = full_outcome();
    for service in &outcome.services {
        let grid = ObservedGrid::build(service);
        let diff = PlatformDiff::build(&grid);
        if !diff.mobile_only.is_empty() {
            assert!(
                ["roblox", "tiktok", "minecraft", "duolingo"].contains(&service.slug.as_str()),
                "{} has unexpected mobile-only flows",
                service.name
            );
            assert!(
                diff.mobile_only_all_third_party(),
                "{}: mobile-only flows must involve third parties",
                service.name
            );
        }
        assert!(
            !diff.web_only.is_empty(),
            "{} should exhibit web-only flows",
            service.name
        );
    }
}

/// §4.2: all services except YouTube sent linkable data to third parties in
/// every trace category; Quizlet has the highest counts for adolescent,
/// adult, and logged-out; child counts do not exceed adult counts.
#[test]
fn linkability_findings_match_paper() {
    let outcome = full_outcome();
    let counts: Vec<(String, Vec<usize>)> = outcome
        .services
        .iter()
        .map(|s| {
            (
                s.slug.clone(),
                TraceCategory::ALL
                    .iter()
                    .map(|&c| linkability::linkable_third_party_count(s, c))
                    .collect(),
            )
        })
        .collect();
    for (slug, per_trace) in &counts {
        if *slug == "youtube" {
            assert!(per_trace.iter().all(|&c| c == 0), "YouTube must be zero");
        } else {
            assert!(
                per_trace.iter().all(|&c| c > 0),
                "{slug} must send linkable data in every trace: {per_trace:?}"
            );
        }
    }
    // Paper: "most of the services sharing linkable data types with a
    // smaller number of third parties for the child category compared to
    // ... the adolescent and adult categories" — a majority claim, plus the
    // aggregate ordering.
    let child_below_adult = counts
        .iter()
        .filter(|(s, p)| *s != "youtube" && p[0] <= p[2])
        .count();
    assert!(
        child_below_adult >= 3,
        "most services must have child ≤ adult: {counts:?}"
    );
    let total = |idx: usize| counts.iter().map(|(_, p)| p[idx]).sum::<usize>();
    assert!(
        total(0) < total(2),
        "aggregate child ({}) must be below adult ({})",
        total(0),
        total(2)
    );
}

/// Fig. 3 / Fig. 4 dominance claims need realistic traffic volume: the
/// paper's Quizlet counts (219/234 third parties) reflect hour-long traces.
/// At 30% volume over the three largest-fan-out services, Quizlet must have
/// the most linkable third parties in the adolescent, adult and logged-out
/// traces, and the dataset's largest linkable set must belong to Quizlet's
/// adult trace (the paper's 13-type set).
#[test]
fn quizlet_dominance_at_volume() {
    let dataset = generate_dataset(&DatasetOptions {
        seed: 2023,
        volume_scale: 0.3,
        mobile_pinned_fraction: 0.12,
        services: vec!["minecraft".into(), "quizlet".into(), "roblox".into()],
    });
    let outcome =
        Pipeline::new(ClassificationMode::Oracle(dataset.key_truth.clone())).run(&dataset);
    let counts: Vec<(String, Vec<usize>)> = outcome
        .services
        .iter()
        .map(|s| {
            (
                s.slug.clone(),
                TraceCategory::ALL
                    .iter()
                    .map(|&c| linkability::linkable_third_party_count(s, c))
                    .collect(),
            )
        })
        .collect();
    let quizlet = counts.iter().find(|(s, _)| *s == "quizlet").unwrap();
    for (slug, per_trace) in &counts {
        if *slug == "quizlet" {
            continue;
        }
        for idx in [1usize, 2, 3] {
            assert!(
                quizlet.1[idx] > per_trace[idx],
                "Quizlet must dominate trace {idx}: quizlet {:?} vs {slug} {per_trace:?}",
                quizlet.1
            );
        }
    }

    let mut best: (usize, &str, TraceCategory) = (0, "", TraceCategory::Child);
    for service in &outcome.services {
        for trace in TraceCategory::ALL {
            let (size, _) = linkability::largest_linkable_set(service, trace);
            if size > best.0 {
                best = (size, service.slug.as_str(), trace);
            }
        }
    }
    assert_eq!(best.1, "quizlet", "largest set owner: {best:?}");
    assert!(
        best.0 >= 10,
        "Quizlet's largest set should be large: {}",
        best.0
    );
    let (q_adult, set) = linkability::largest_linkable_set(
        outcome
            .services
            .iter()
            .find(|s| s.slug.as_str() == "quizlet")
            .unwrap(),
        TraceCategory::Adult,
    );
    assert!(q_adult >= 10, "Quizlet adult set: {q_adult}");
    assert!(set.iter().any(|c| c.is_identifier()));
    assert!(set.iter().any(|c| !c.is_identifier()));
}

/// §4.1.2: privacy-policy inconsistencies exist for every service except
/// YouTube ("All but one of the services engaged in data processing
/// practices that were not disclosed in their privacy policy").
#[test]
fn policy_inconsistencies_all_but_youtube() {
    let outcome = full_outcome();
    for service in &outcome.services {
        let spec = service_by_slug(&service.slug).unwrap();
        let findings = audit_service(service, &spec);
        let undisclosed = findings
            .iter()
            .any(|f| f.rule == AuditRule::UndisclosedFlow);
        if service.slug.as_str() == "youtube" {
            assert!(
                !undisclosed,
                "YouTube's policy must be consistent with its behavior"
            );
        } else {
            assert!(undisclosed, "{} must have undisclosed flows", service.name);
        }
    }
}

/// Table 1 shape: Quizlet contacts the most domains/eSLDs, YouTube the
/// fewest; per-service eSLD ordering follows the paper (Quizlet ≫ rest,
/// Roblox/TikTok/YouTube smallest).
#[test]
fn dataset_summary_shape_matches_table1() {
    let outcome = full_outcome();
    let summary = summarize(&outcome);
    assert_eq!(summary.services.len(), 6);
    let get = |name: &str| {
        summary
            .services
            .iter()
            .find(|s| s.name == name)
            .unwrap_or_else(|| panic!("missing {name}"))
    };
    let quizlet = get("Quizlet");
    for other in ["Duolingo", "Minecraft", "Roblox", "TikTok", "YouTube"] {
        assert!(
            quizlet.eslds > get(other).eslds,
            "Quizlet eSLDs must dominate {other}"
        );
        assert!(
            quizlet.domains > get(other).domains,
            "Quizlet domains must dominate {other}"
        );
    }
    assert!(get("YouTube").eslds < get("Duolingo").eslds);
    // Packets-per-flow ordering (paper: YouTube richest flows, Quizlet and
    // TikTok leanest).
    let ppf = |name: &str| get(name).packets as f64 / get(name).tcp_flows as f64;
    assert!(ppf("YouTube") > ppf("Quizlet"));
    assert!(ppf("Minecraft") > ppf("TikTok"));
    // Headline counts exist at every scale.
    assert!(summary.unique_data_types > 500);
    assert!(summary.unique_data_flows > 1000);
}
