//! Integration tests for the observability surface of the `diffaudit` CLI:
//! `--trace-out` / `--metrics-out` / `--log-level` / `-v`.
//!
//! These drive the real binary on real capture directories and assert the
//! three contracts the obs layer makes:
//!
//! 1. emitted trace/metrics files parse with `diffaudit-json` and name the
//!    pipeline stages the run actually went through;
//! 2. the `salvage.*` counters in the metrics document are conservation-
//!    consistent with the degradation ledger exported on stdout;
//! 3. observability never perturbs the audit itself — stdout stays
//!    byte-identical and the exit-code contract is unchanged.

use diffaudit::loader::write_dataset;
use diffaudit_json::{parse, Json};
use diffaudit_services::{generate_dataset, DatasetOptions};
use std::path::{Path, PathBuf};
use std::process::Command;

fn bin() -> Command {
    Command::new(env!("CARGO_BIN_EXE_diffaudit"))
}

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("diffaudit-obs-test-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

/// Write the synthetic tiktok capture to disk and return its service dir.
fn capture_dir(root: &Path) -> PathBuf {
    let dataset = generate_dataset(&DatasetOptions {
        seed: 33,
        volume_scale: 0.02,
        mobile_pinned_fraction: 0.0,
        services: vec!["tiktok".into()],
    });
    let dirs = write_dataset(&dataset, root).unwrap();
    dirs.into_iter().next().unwrap()
}

/// Flip a few spread-out bytes in one pcap so decode drops records but the
/// file header stays intact.
fn corrupt_one_pcap(service_dir: &Path) {
    let victim = std::fs::read_dir(service_dir)
        .unwrap()
        .filter_map(|e| e.ok().map(|e| e.path()))
        .find(|p| p.extension().is_some_and(|x| x == "pcap"))
        .expect("a pcap artifact to corrupt");
    let mut bytes = std::fs::read(&victim).unwrap();
    let len = bytes.len();
    assert!(len > 100, "pcap too small to corrupt meaningfully");
    for pos in [len / 3, len / 2, 2 * len / 3] {
        bytes[pos] ^= 0xFF;
    }
    std::fs::write(&victim, bytes).unwrap();
}

struct Run {
    code: Option<i32>,
    stdout: String,
    stderr: String,
}

fn run(args: &[&str]) -> Run {
    let output = bin().args(args).output().unwrap();
    Run {
        code: output.status.code(),
        stdout: String::from_utf8_lossy(&output.stdout).into_owned(),
        stderr: String::from_utf8_lossy(&output.stderr).into_owned(),
    }
}

/// Counter value from a parsed metrics document (zero when absent).
fn counter(metrics: &Json, name: &str) -> i64 {
    metrics
        .get("counters")
        .and_then(|c| c.get(name))
        .and_then(Json::as_i64)
        .unwrap_or(0)
}

#[test]
fn trace_and_metrics_files_parse_and_cover_the_pipeline_stages() {
    let root = temp_dir("files");
    let dir = capture_dir(&root);
    let trace_path = root.join("trace.jsonl");
    let metrics_path = root.join("metrics.json");
    let result = run(&[
        "audit",
        dir.to_str().unwrap(),
        "--trace-out",
        trace_path.to_str().unwrap(),
        "--metrics-out",
        metrics_path.to_str().unwrap(),
        "-v",
    ]);
    assert_eq!(result.code, Some(0), "stderr: {}", result.stderr);
    assert!(
        result.stderr.contains("pipeline run report"),
        "-v must print the run report, got:\n{}",
        result.stderr
    );

    // The metrics document parses and names the stages the run went through.
    let metrics = parse(&std::fs::read_to_string(&metrics_path).unwrap()).unwrap();
    assert_eq!(
        metrics.get("schema").and_then(Json::as_str),
        Some("diffaudit-obs/v1")
    );
    let spans = metrics.get("spans").and_then(Json::as_obj).unwrap();
    for stage in [
        "audit",
        "audit.load",
        "audit.findings",
        "audit.render",
        "loader.dir",
        "loader.unit",
        "pipeline",
        "pipeline.classify",
    ] {
        assert!(
            spans.iter().any(|(name, _)| name == stage),
            "metrics missing span {stage}"
        );
    }
    assert!(counter(&metrics, "pipeline.keys.unique") > 0);
    assert!(counter(&metrics, "loader.units.loaded") > 0);
    assert_eq!(counter(&metrics, "loader.units.dropped"), 0);

    // Every histogram is internally conserved: bucket counts sum to `count`.
    let histograms = metrics.get("histograms").and_then(Json::as_obj).unwrap();
    assert!(!histograms.is_empty(), "run must record histograms");
    for (name, h) in histograms {
        let count = h.get("count").and_then(Json::as_i64).unwrap();
        let bucket_sum: i64 = h
            .get("buckets")
            .and_then(Json::as_arr)
            .unwrap()
            .iter()
            .map(|b| b.get("count").and_then(Json::as_i64).unwrap())
            .sum();
        assert_eq!(bucket_sum, count, "histogram {name} loses observations");
    }

    // The trace is line-delimited JSON with monotone sequence numbers, and
    // records the top-level pipeline span.
    let trace = std::fs::read_to_string(&trace_path).unwrap();
    let mut last_seq = -1i64;
    let mut saw_pipeline_span = false;
    let mut lines = 0usize;
    for line in trace.lines() {
        let record = parse(line).unwrap_or_else(|e| panic!("bad trace line {line:?}: {e}"));
        lines += 1;
        let seq = record.get("seq").and_then(Json::as_i64).unwrap();
        assert!(seq > last_seq, "trace seq must be strictly increasing");
        last_seq = seq;
        match record.get("kind").and_then(Json::as_str) {
            Some("event") => {
                assert!(record.get("level").and_then(Json::as_str).is_some());
                assert!(record.get("msg").and_then(Json::as_str).is_some());
            }
            Some("span") => {
                assert!(record.get("durUs").and_then(Json::as_i64).unwrap() >= 0);
                if record.get("name").and_then(Json::as_str) == Some("pipeline") {
                    saw_pipeline_span = true;
                }
            }
            other => panic!("unknown trace kind {other:?} in {line:?}"),
        }
    }
    assert!(lines > 0, "trace must not be empty");
    assert!(saw_pipeline_span, "trace missing the pipeline span");
    let _ = std::fs::remove_dir_all(&root);
}

#[test]
fn salvage_counters_match_the_degradation_ledger() {
    let root = temp_dir("ledger");
    let dir = capture_dir(&root);
    corrupt_one_pcap(&dir);
    let metrics_path = root.join("metrics.json");
    let result = run(&[
        "audit",
        dir.to_str().unwrap(),
        "--format",
        "json",
        "--metrics-out",
        metrics_path.to_str().unwrap(),
    ]);
    assert_eq!(result.code, Some(2), "damaged input within policy exits 2");

    let report = parse(&result.stdout).unwrap();
    let stages = report
        .get("degradation")
        .and_then(|d| d.get("stages"))
        .and_then(Json::as_obj)
        .expect("salvaged report exports per-stage tallies");
    let metrics = parse(&std::fs::read_to_string(&metrics_path).unwrap()).unwrap();

    // Every ledger stage is mirrored 1:1 into the salvage.* counters.
    let mut dropped_total = 0i64;
    for (label, counts) in stages {
        let processed = counts.get("processed").and_then(Json::as_i64).unwrap();
        let dropped = counts.get("dropped").and_then(Json::as_i64).unwrap();
        dropped_total += dropped;
        assert_eq!(
            counter(&metrics, &format!("salvage.{label}.processed")),
            processed,
            "salvage.{label}.processed diverges from the ledger"
        );
        assert_eq!(
            counter(&metrics, &format!("salvage.{label}.dropped")),
            dropped,
            "salvage.{label}.dropped diverges from the ledger"
        );
    }
    assert!(dropped_total > 0, "corruption must register in the ledger");
    let _ = std::fs::remove_dir_all(&root);
}

#[test]
fn clean_run_mirrors_a_zero_drop_ledger() {
    let root = temp_dir("cleanledger");
    let dir = capture_dir(&root);
    let metrics_path = root.join("metrics.json");
    let result = run(&[
        "audit",
        dir.to_str().unwrap(),
        "--metrics-out",
        metrics_path.to_str().unwrap(),
    ]);
    assert_eq!(result.code, Some(0));
    let metrics = parse(&std::fs::read_to_string(&metrics_path).unwrap()).unwrap();
    let counters = metrics.get("counters").and_then(Json::as_obj).unwrap();
    let mut salvage_processed = 0i64;
    for (name, value) in counters {
        if let Some(rest) = name.strip_prefix("salvage.") {
            let value = value.as_i64().unwrap();
            if rest.ends_with(".dropped") {
                assert_eq!(value, 0, "clean run must not report drops in {name}");
            } else {
                salvage_processed += value;
            }
        }
    }
    assert!(
        salvage_processed > 0,
        "clean run still accounts for processed records"
    );
    let _ = std::fs::remove_dir_all(&root);
}

#[test]
fn stdout_is_byte_identical_with_and_without_observability() {
    let root = temp_dir("identical");
    let dir = capture_dir(&root);
    let plain = run(&["audit", dir.to_str().unwrap(), "--format", "json"]);
    assert_eq!(plain.code, Some(0));
    let observed = run(&[
        "audit",
        dir.to_str().unwrap(),
        "--format",
        "json",
        "--log-level",
        "debug",
        "--trace-out",
        root.join("t.jsonl").to_str().unwrap(),
        "--metrics-out",
        root.join("m.json").to_str().unwrap(),
        "-v",
    ]);
    assert_eq!(observed.code, Some(0));
    assert_eq!(
        plain.stdout, observed.stdout,
        "observability must not perturb the exported report"
    );
    let _ = std::fs::remove_dir_all(&root);
}

/// Copy a metrics snapshot with `uptimeUs` and every span's `totalUs`
/// multiplied by `factor`; histograms are untouched so bucket conservation
/// still holds and only wall-time deltas drive the diff verdict.
fn inflate_snapshot(doc: &Json, factor: i64) -> Json {
    let mut out = doc.clone();
    let uptime = doc.get("uptimeUs").and_then(Json::as_i64).unwrap();
    out.set("uptimeUs", Json::int(uptime * factor));
    let mut spans = Json::obj();
    for (name, stats) in doc.get("spans").and_then(Json::as_obj).unwrap() {
        let total = stats.get("totalUs").and_then(Json::as_i64).unwrap();
        spans.set(
            name.clone(),
            stats.clone().with("totalUs", Json::int(total * factor)),
        );
    }
    out.set("spans", spans);
    out
}

#[test]
fn obs_report_and_self_diff_round_trip() {
    // One audit produces both obs artifacts; `obs report` reconstructs the
    // span tree from the trace and `obs diff` of the snapshot against itself
    // is all-zero and exits 0.
    let root = temp_dir("roundtrip");
    let dir = capture_dir(&root);
    let trace_path = root.join("trace.jsonl");
    let metrics_path = root.join("metrics.json");
    let audit = run(&[
        "audit",
        dir.to_str().unwrap(),
        "--trace-out",
        trace_path.to_str().unwrap(),
        "--metrics-out",
        metrics_path.to_str().unwrap(),
    ]);
    assert_eq!(audit.code, Some(0), "stderr: {}", audit.stderr);

    let report = run(&["obs", "report", trace_path.to_str().unwrap()]);
    assert_eq!(report.code, Some(0), "stderr: {}", report.stderr);
    for section in [
        "== trace report ==",
        "span tree (total / self / calls / % of roots):",
        "root audit: total ",
        "critical path:",
        "hotspots (top 10 by self time):",
    ] {
        assert!(
            report.stdout.contains(section),
            "obs report missing {section:?}, got:\n{}",
            report.stdout
        );
    }
    // The tree names the stages the audit actually went through.
    for stage in ["audit", "audit.load", "pipeline", "pipeline.classify"] {
        assert!(
            report.stdout.contains(stage),
            "obs report missing stage {stage}"
        );
    }

    let selfdiff = run(&[
        "obs",
        "diff",
        metrics_path.to_str().unwrap(),
        metrics_path.to_str().unwrap(),
        "--fail-over",
        "50",
    ]);
    assert_eq!(selfdiff.code, Some(0), "stderr: {}", selfdiff.stderr);
    assert!(
        selfdiff.stdout.contains("verdict: ok"),
        "self-diff must be ok, got:\n{}",
        selfdiff.stdout
    );
    assert!(
        selfdiff.stdout.contains("counters: ") && selfdiff.stdout.contains(", 0 changed"),
        "self-diff must report zero counter deltas, got:\n{}",
        selfdiff.stdout
    );
    let _ = std::fs::remove_dir_all(&root);
}

/// End-to-end resource profiling: an audit under `--res-sample-ms` keeps
/// stdout byte-identical, its trace renders the `obs report --resources`
/// view (per-stage peak RSS / ΔRSS / CPU / throughput plus conservation
/// lines), and its metrics snapshot drives the `--fail-rss-over` gate —
/// exit 0 on self-diff, exit 2 on a synthetic peak-RSS regression. On a
/// box without `/proc` the run still succeeds and the report degrades to
/// "resources unavailable".
#[test]
fn resource_profiling_reports_and_gates_end_to_end() {
    let root = temp_dir("resources");
    let dir = capture_dir(&root);
    let plain = run(&["audit", dir.to_str().unwrap(), "--format", "json"]);
    assert_eq!(plain.code, Some(0), "stderr: {}", plain.stderr);

    let trace_path = root.join("trace.jsonl");
    let metrics_path = root.join("metrics.json");
    let profiled = run(&[
        "audit",
        dir.to_str().unwrap(),
        "--format",
        "json",
        "--res-sample-ms",
        "5",
        "--trace-out",
        trace_path.to_str().unwrap(),
        "--metrics-out",
        metrics_path.to_str().unwrap(),
    ]);
    assert_eq!(profiled.code, Some(0), "stderr: {}", profiled.stderr);
    assert_eq!(
        plain.stdout, profiled.stdout,
        "resource profiling must not perturb the exported report"
    );

    let have_proc = Path::new("/proc/self/statm").exists();
    let report = run(&["obs", "report", trace_path.to_str().unwrap(), "--resources"]);
    assert_eq!(report.code, Some(0), "stderr: {}", report.stderr);
    assert!(
        report.stdout.contains("== resource report =="),
        "missing resource report header:\n{}",
        report.stdout
    );
    if have_proc {
        for section in [
            "stage resources (peak RSS / ΔRSS / CPU / bytes in / throughput):",
            "root audit: cpu ",
            "root audit: rss ",
        ] {
            assert!(
                report.stdout.contains(section),
                "obs report --resources missing {section:?}, got:\n{}",
                report.stdout
            );
        }
        // The decode stages carry byte accounting, so at least one stage
        // row derives a bytes/sec throughput.
        assert!(
            report.stdout.contains("B/s"),
            "no stage throughput in:\n{}",
            report.stdout
        );
    } else {
        assert!(
            report.stdout.contains("resources unavailable"),
            "without /proc the report must degrade, got:\n{}",
            report.stdout
        );
    }

    // Self-diff under the RSS gate is clean by definition.
    let selfdiff = run(&[
        "obs",
        "diff",
        metrics_path.to_str().unwrap(),
        metrics_path.to_str().unwrap(),
        "--fail-rss-over",
        "50",
    ]);
    assert_eq!(selfdiff.code, Some(0), "stderr: {}", selfdiff.stderr);
    assert!(
        selfdiff.stdout.contains("verdict: ok"),
        "self-diff must be ok, got:\n{}",
        selfdiff.stdout
    );

    // Synthetic regression: triple every stage's peak RSS (well past the
    // 50% gate and the 4MiB noise floor for a paper-scale run).
    if have_proc {
        let doc = parse(&std::fs::read_to_string(&metrics_path).unwrap()).unwrap();
        let mut inflated = doc.clone();
        let mut resources = Json::obj();
        for (name, stats) in doc
            .get("resources")
            .and_then(Json::as_obj)
            .expect("profiled snapshot must carry a resources section")
        {
            let peak = stats.get("peakRssB").and_then(Json::as_i64).unwrap();
            resources.set(
                name.clone(),
                stats.clone().with("peakRssB", Json::int(peak * 3)),
            );
        }
        inflated.set("resources", resources);
        let inflated_path = root.join("inflated.json");
        std::fs::write(&inflated_path, inflated.to_pretty_string()).unwrap();

        let gated = run(&[
            "obs",
            "diff",
            metrics_path.to_str().unwrap(),
            inflated_path.to_str().unwrap(),
            "--fail-rss-over",
            "50",
        ]);
        assert_eq!(
            gated.code,
            Some(2),
            "tripled peak RSS must regress; stdout:\n{}\nstderr: {}",
            gated.stdout,
            gated.stderr
        );
        assert!(
            gated.stdout.contains("verdict: regressed"),
            "gated diff verdict, got:\n{}",
            gated.stdout
        );
        assert!(
            gated.stderr.contains("rss:"),
            "regression list must name the rss series, got: {}",
            gated.stderr
        );

        // The shrink direction is an improvement, not a regression.
        let improved = run(&[
            "obs",
            "diff",
            inflated_path.to_str().unwrap(),
            metrics_path.to_str().unwrap(),
            "--fail-rss-over",
            "50",
        ]);
        assert_eq!(improved.code, Some(0), "stderr: {}", improved.stderr);
    }
    let _ = std::fs::remove_dir_all(&root);
}

#[test]
fn obs_diff_flags_a_synthetic_regression_but_not_an_improvement() {
    let root = temp_dir("regression");
    let dir = capture_dir(&root);
    let metrics_path = root.join("metrics.json");
    let audit = run(&[
        "audit",
        dir.to_str().unwrap(),
        "--metrics-out",
        metrics_path.to_str().unwrap(),
    ]);
    assert_eq!(audit.code, Some(0), "stderr: {}", audit.stderr);

    let base = parse(&std::fs::read_to_string(&metrics_path).unwrap()).unwrap();
    let inflated_path = root.join("inflated.json");
    std::fs::write(
        &inflated_path,
        inflate_snapshot(&base, 10).to_pretty_string(),
    )
    .unwrap();

    // 10x slower trips a 50% gate: exit 2 and a regressed verdict.
    let slower = run(&[
        "obs",
        "diff",
        metrics_path.to_str().unwrap(),
        inflated_path.to_str().unwrap(),
        "--fail-over",
        "50",
    ]);
    assert_eq!(slower.code, Some(2), "stderr: {}", slower.stderr);
    assert!(
        slower.stdout.contains("verdict: regressed"),
        "inflated snapshot must regress, got:\n{}",
        slower.stdout
    );

    // The reverse direction is an improvement, not a regression.
    let faster = run(&[
        "obs",
        "diff",
        inflated_path.to_str().unwrap(),
        metrics_path.to_str().unwrap(),
        "--fail-over",
        "50",
    ]);
    assert_eq!(faster.code, Some(0), "stderr: {}", faster.stderr);
    assert!(faster.stdout.contains("verdict: ok"));

    // Without --fail-over the same delta is informational only.
    let advisory = run(&[
        "obs",
        "diff",
        metrics_path.to_str().unwrap(),
        inflated_path.to_str().unwrap(),
    ]);
    assert_eq!(advisory.code, Some(0), "stderr: {}", advisory.stderr);
    let _ = std::fs::remove_dir_all(&root);
}

#[test]
fn obs_report_salvages_a_partially_malformed_trace() {
    let root = temp_dir("malformed");
    let dir = capture_dir(&root);
    let trace_path = root.join("trace.jsonl");
    let audit = run(&[
        "audit",
        dir.to_str().unwrap(),
        "--trace-out",
        trace_path.to_str().unwrap(),
    ]);
    assert_eq!(audit.code, Some(0), "stderr: {}", audit.stderr);

    // Corrupt the trace: garbage lines interleaved with the real tail.
    let mut text = std::fs::read_to_string(&trace_path).unwrap();
    text.push_str("this is not json\n");
    text.push_str("{\"seq\":1,\"kind\":\"span\"}\n");
    std::fs::write(&trace_path, text).unwrap();

    let report = run(&["obs", "report", trace_path.to_str().unwrap()]);
    assert_eq!(
        report.code,
        Some(2),
        "salvaged report exits 2; stderr: {}",
        report.stderr
    );
    assert!(
        report.stdout.contains("(2 malformed lines skipped)"),
        "report must count skipped lines, got:\n{}",
        report.stdout
    );
    // The surviving records still yield a full tree.
    assert!(report.stdout.contains("root audit: total "));

    // A file with no usable record at all is a hard failure.
    let hopeless = root.join("hopeless.jsonl");
    std::fs::write(&hopeless, "junk\nmore junk\n").unwrap();
    let dead = run(&["obs", "report", hopeless.to_str().unwrap()]);
    assert_eq!(dead.code, Some(1));
    let _ = std::fs::remove_dir_all(&root);
}

#[test]
fn log_level_gates_stderr_and_bad_values_are_usage_errors() {
    let root = temp_dir("levels");
    let dir = capture_dir(&root);
    // error-level: the clean audit's info progress lines are suppressed.
    let quiet = run(&["audit", dir.to_str().unwrap(), "--log-level", "error"]);
    assert_eq!(quiet.code, Some(0));
    assert!(
        quiet.stderr.is_empty(),
        "--log-level error must silence progress lines, got:\n{}",
        quiet.stderr
    );
    // default (info): progress lines show.
    let chatty = run(&["audit", dir.to_str().unwrap()]);
    assert_eq!(chatty.code, Some(0));
    assert!(
        chatty.stderr.contains("loaded capture directory"),
        "default level must show progress, got:\n{}",
        chatty.stderr
    );
    // A bad level value is a usage error, same contract as any bad flag.
    let bad = run(&["audit", dir.to_str().unwrap(), "--log-level", "loud"]);
    assert_eq!(bad.code, Some(1));
    let _ = std::fs::remove_dir_all(&root);
}
