//! Parallel-execution determinism suite: the `--threads` knob must change
//! wall-clock behavior only, never results.
//!
//! Four contracts, each checked serial-vs-parallel on the same seed:
//!
//! 1. **CLI invariance** — `diffaudit audit` produces byte-identical stdout
//!    (text and JSON exports) at `--threads 1` and `--threads 4`.
//! 2. **Metrics invariance** — every counter and every data-valued (non
//!    `.us`) histogram in `--metrics-out` is identical across thread
//!    counts; timing histograms may differ in durations but not in sample
//!    counts.
//! 3. **Library invariance** — `Pipeline::with_threads` and parallel
//!    dataset generation yield identical outcomes/artifacts.
//! 4. **Conservation under concurrency** — with PR 2 chaos operators
//!    applied at rate > 0, the salvage loader's degradation ledger stays
//!    conservation-consistent and identical to the serial ledger, and the
//!    `salvage.*` counters keep mirroring the exported ledger.

use diffaudit::audit::audit_service;
use diffaudit::export::outcome_to_json;
use diffaudit::loader::{load_capture_dir_salvage_threads, write_dataset};
use diffaudit::pipeline::{ClassificationMode, Pipeline};
use diffaudit::{AuditFinding, DegradationLedger};
use diffaudit_json::{parse, Json};
use diffaudit_nettrace::fault::{FaultOp, FaultSpec};
use diffaudit_services::{
    generate_dataset, generate_dataset_threads, service_by_slug, DatasetOptions, GeneratedDataset,
};
use std::path::{Path, PathBuf};
use std::process::Command;

const PARALLEL: usize = 4;

fn bin() -> Command {
    Command::new(env!("CARGO_BIN_EXE_diffaudit"))
}

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "diffaudit-parallel-test-{tag}-{}",
        std::process::id()
    ));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

/// Write the synthetic tiktok capture to disk and return its service dir.
fn capture_dir(root: &Path) -> PathBuf {
    let dataset = generate_dataset(&DatasetOptions {
        seed: 33,
        volume_scale: 0.02,
        mobile_pinned_fraction: 0.0,
        services: vec!["tiktok".into()],
    });
    let dirs = write_dataset(&dataset, root).unwrap();
    dirs.into_iter().next().unwrap()
}

struct Run {
    code: Option<i32>,
    stdout: String,
    stderr: String,
}

fn run(args: &[&str]) -> Run {
    let output = bin().args(args).output().unwrap();
    Run {
        code: output.status.code(),
        stdout: String::from_utf8_lossy(&output.stdout).into_owned(),
        stderr: String::from_utf8_lossy(&output.stderr).into_owned(),
    }
}

fn audit_with_threads(dir: &Path, threads: usize, extra: &[&str]) -> Run {
    let threads = threads.to_string();
    let mut args = vec!["audit", dir.to_str().unwrap(), "--threads", &threads];
    args.extend_from_slice(extra);
    run(&args)
}

/// Damage every artifact in a service directory with one fault operator,
/// dispatching on extension exactly as the loader will read them back.
fn damage_dir(dir: &Path, spec: &FaultSpec) {
    let mut paths: Vec<PathBuf> = std::fs::read_dir(dir)
        .unwrap()
        .filter_map(|e| e.ok().map(|e| e.path()))
        .collect();
    paths.sort();
    for path in paths {
        let Some(ext) = path.extension().and_then(|x| x.to_str()) else {
            continue;
        };
        match ext {
            "har" => {
                let text = std::fs::read_to_string(&path).unwrap();
                std::fs::write(&path, spec.apply_har(&text)).unwrap();
            }
            "pcap" => {
                let bytes = std::fs::read(&path).unwrap();
                std::fs::write(&path, spec.apply_pcap(&bytes)).unwrap();
            }
            "keys" => {
                let text = std::fs::read_to_string(&path).unwrap();
                std::fs::write(&path, spec.apply_keylog(&text)).unwrap();
            }
            _ => {}
        }
    }
}

/// Counter value from a parsed metrics document (zero when absent).
fn counter(metrics: &Json, name: &str) -> i64 {
    metrics
        .get("counters")
        .and_then(|c| c.get(name))
        .and_then(Json::as_i64)
        .unwrap_or(0)
}

/// Oracle-mode findings for every service in the outcome, in audit order.
fn findings_for(outcome: &diffaudit::pipeline::AuditOutcome) -> Vec<AuditFinding> {
    let mut findings = Vec::new();
    for service in &outcome.services {
        if let Some(spec) = service_by_slug(&service.slug) {
            findings.extend(audit_service(service, &spec));
        }
    }
    findings
}

#[test]
fn cli_stdout_is_thread_count_invariant() {
    let root = temp_dir("stdout");
    let dir = capture_dir(&root);
    for format in [&[][..], &["--format", "json"][..]] {
        let serial = audit_with_threads(&dir, 1, format);
        let parallel = audit_with_threads(&dir, PARALLEL, format);
        assert_eq!(serial.code, Some(0), "stderr: {}", serial.stderr);
        assert_eq!(parallel.code, Some(0), "stderr: {}", parallel.stderr);
        assert_eq!(
            serial.stdout, parallel.stdout,
            "--threads must not change the exported report ({format:?})"
        );
    }
    // A bad thread count is a usage error, same contract as any bad flag.
    let bad = run(&["audit", dir.to_str().unwrap(), "--threads", "0"]);
    assert_eq!(bad.code, Some(1));
    let _ = std::fs::remove_dir_all(&root);
}

#[test]
fn metrics_counters_are_thread_count_invariant() {
    let root = temp_dir("metrics");
    let dir = capture_dir(&root);
    let serial_path = root.join("m1.json");
    let parallel_path = root.join("m4.json");
    let serial = audit_with_threads(&dir, 1, &["--metrics-out", serial_path.to_str().unwrap()]);
    let parallel = audit_with_threads(
        &dir,
        PARALLEL,
        &["--metrics-out", parallel_path.to_str().unwrap()],
    );
    assert_eq!(serial.code, Some(0), "stderr: {}", serial.stderr);
    assert_eq!(parallel.code, Some(0), "stderr: {}", parallel.stderr);

    let m1 = parse(&std::fs::read_to_string(&serial_path).unwrap()).unwrap();
    let m4 = parse(&std::fs::read_to_string(&parallel_path).unwrap()).unwrap();

    // Counters carry no timing, so the maps must match exactly.
    assert_eq!(
        m1.get("counters").unwrap().to_pretty_string(),
        m4.get("counters").unwrap().to_pretty_string(),
        "counters must be identical across thread counts"
    );

    // Data-valued histograms (record counts, sizes) must match exactly;
    // latency histograms (`*.us`) may shift buckets but never lose or gain
    // observations.
    let h1 = m1.get("histograms").and_then(Json::as_obj).unwrap();
    let h4 = m4.get("histograms").and_then(Json::as_obj).unwrap();
    assert_eq!(
        h1.iter().map(|(n, _)| n.as_str()).collect::<Vec<_>>(),
        h4.iter().map(|(n, _)| n.as_str()).collect::<Vec<_>>(),
        "both runs must record the same histogram set"
    );
    for ((name, serial_h), (_, parallel_h)) in h1.iter().zip(h4.iter()) {
        if name.ends_with(".us") {
            assert_eq!(
                serial_h.get("count").and_then(Json::as_i64),
                parallel_h.get("count").and_then(Json::as_i64),
                "latency histogram {name} must keep its sample count"
            );
        } else {
            assert_eq!(
                serial_h.to_pretty_string(),
                parallel_h.to_pretty_string(),
                "data histogram {name} must be identical across thread counts"
            );
        }
    }

    // The per-unit stage spans fire once per unit regardless of threads.
    let units = counter(&m1, "loader.units.loaded");
    assert!(units > 0);
    for doc in [&m1, &m4] {
        for span in ["pipeline.unit.extract", "loader.unit"] {
            let count = doc
                .get("spans")
                .and_then(|s| s.get(span))
                .and_then(|s| s.get("count"))
                .and_then(Json::as_i64)
                .unwrap_or(0);
            assert_eq!(count, units, "span {span} must fire once per unit");
        }
    }
    let _ = std::fs::remove_dir_all(&root);
}

#[test]
fn pipeline_outcome_is_thread_count_invariant() {
    let dataset = generate_dataset(&DatasetOptions {
        seed: 1_207,
        volume_scale: 0.03,
        mobile_pinned_fraction: 0.12,
        services: Vec::new(),
    });
    // Oracle mode isolates the merge order from classifier noise; the
    // ensemble run additionally proves the classifier sees the unique key
    // set in the same (sorted) order either way.
    for pipeline in [
        Pipeline::new(ClassificationMode::Oracle(dataset.key_truth.clone())),
        Pipeline::paper_default(1_207),
    ] {
        let serial = pipeline.clone().with_threads(1).run(&dataset);
        let parallel = pipeline.with_threads(PARALLEL).run(&dataset);
        assert_eq!(serial.unique_raw_keys, parallel.unique_raw_keys);
        assert_eq!(
            outcome_to_json(&serial, &findings_for(&serial)).to_pretty_string(),
            outcome_to_json(&parallel, &findings_for(&parallel)).to_pretty_string(),
            "full audit document must be identical across thread counts"
        );
    }
}

#[test]
fn dataset_generation_is_thread_count_invariant() {
    let options = DatasetOptions {
        seed: 77,
        volume_scale: 0.03,
        mobile_pinned_fraction: 0.2,
        services: vec!["roblox".into(), "duolingo".into()],
    };
    let generate_with =
        |threads: usize| -> GeneratedDataset { generate_dataset_threads(&options, threads) };
    let serial = generate_with(1);
    let parallel = generate_with(PARALLEL);
    assert_eq!(serial.services.len(), parallel.services.len());
    for (s, p) in serial.services.iter().zip(parallel.services.iter()) {
        assert_eq!(s.spec.slug, p.spec.slug);
        assert_eq!(s.artifacts.len(), p.artifacts.len());
        for (a, b) in s.artifacts.iter().zip(p.artifacts.iter()) {
            assert_eq!(
                a.har, b.har,
                "{}: HAR text must be byte-identical",
                s.spec.slug
            );
            assert_eq!(
                a.pcap, b.pcap,
                "{}: pcap must be byte-identical",
                s.spec.slug
            );
            assert_eq!(
                a.keylog, b.keylog,
                "{}: keylog must be byte-identical",
                s.spec.slug
            );
            assert_eq!(a.exchange_count, b.exchange_count);
        }
    }
    assert_eq!(serial.key_truth, parallel.key_truth);
}

#[test]
fn degradation_ledger_is_conserved_and_identical_under_concurrency() {
    // PR 2 chaos operators at rate > 0: the parallel salvage loader must
    // produce the exact same ledger (same drops, same reasons, same order)
    // as the serial one, and both must conserve.
    let root = temp_dir("chaos");
    let dir = capture_dir(&root);
    damage_dir(
        &dir,
        &FaultSpec {
            op: FaultOp::TailTruncate,
            seed: 11,
            rate: 0.25,
        },
    );

    let load_with = |threads: usize| {
        load_capture_dir_salvage_threads(&dir, threads)
            .expect("salvage load succeeds on damaged dir")
    };
    let (serial_input, serial_ledger) = load_with(1);
    let (parallel_input, parallel_ledger) = load_with(PARALLEL);

    for ledger in [&serial_ledger, &parallel_ledger] {
        assert!(ledger.merged().conserved(), "ledger must conserve");
    }
    assert!(
        serial_ledger.merged().total_dropped() > 0,
        "rate 0.25 damage must register in the ledger"
    );

    // Deep ledger equality via the export document: per-unit tallies, drop
    // reasons, and unit order all match.
    let to_json = |ledger| {
        let mut run = DegradationLedger::new();
        run.services.push(ledger);
        run.to_json().to_pretty_string()
    };
    assert_eq!(
        to_json(serial_ledger),
        to_json(parallel_ledger),
        "degradation ledger must be identical across thread counts"
    );

    // The salvaged audit input is identical too.
    assert_eq!(serial_input.units.len(), parallel_input.units.len());
    for (s, p) in serial_input.units.iter().zip(parallel_input.units.iter()) {
        assert_eq!(s.exchanges, p.exchanges);
        assert_eq!(s.opaque_snis, p.opaque_snis);
        assert_eq!(s.packet_count, p.packet_count);
        assert_eq!(s.flow_count, p.flow_count);
    }
    let _ = std::fs::remove_dir_all(&root);
}

#[test]
fn salvage_counters_mirror_the_ledger_under_concurrency() {
    // End-to-end over the CLI: with 4 worker threads merging per-thread
    // recorders, the salvage.* counters must still equal the degradation
    // ledger exported on stdout — and the whole report must match serial.
    let root = temp_dir("counters");
    let dir = capture_dir(&root);
    damage_dir(
        &dir,
        &FaultSpec {
            op: FaultOp::BitFlip,
            seed: 3,
            rate: 0.05,
        },
    );
    let serial_metrics = root.join("m1.json");
    let parallel_metrics = root.join("m4.json");
    let serial = audit_with_threads(
        &dir,
        1,
        &[
            "--format",
            "json",
            "--metrics-out",
            serial_metrics.to_str().unwrap(),
        ],
    );
    let parallel = audit_with_threads(
        &dir,
        PARALLEL,
        &[
            "--format",
            "json",
            "--metrics-out",
            parallel_metrics.to_str().unwrap(),
        ],
    );
    assert_eq!(serial.code, parallel.code, "exit codes must match");
    assert_eq!(
        serial.stdout, parallel.stdout,
        "salvaged report must be identical across thread counts"
    );

    let report = parse(&parallel.stdout).unwrap();
    let stages = report
        .get("degradation")
        .and_then(|d| d.get("stages"))
        .and_then(Json::as_obj)
        .expect("salvaged report exports per-stage tallies");
    let metrics = parse(&std::fs::read_to_string(&parallel_metrics).unwrap()).unwrap();
    let mut dropped_total = 0i64;
    for (label, counts) in stages {
        let processed = counts.get("processed").and_then(Json::as_i64).unwrap();
        let dropped = counts.get("dropped").and_then(Json::as_i64).unwrap();
        dropped_total += dropped;
        assert_eq!(
            counter(&metrics, &format!("salvage.{label}.processed")),
            processed,
            "salvage.{label}.processed diverges from the ledger at --threads {PARALLEL}"
        );
        assert_eq!(
            counter(&metrics, &format!("salvage.{label}.dropped")),
            dropped,
            "salvage.{label}.dropped diverges from the ledger at --threads {PARALLEL}"
        );
    }
    assert!(dropped_total > 0, "corruption must register in the ledger");
    let _ = std::fs::remove_dir_all(&root);
}
