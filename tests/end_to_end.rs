//! Closed-loop end-to-end tests: the full pipeline must recover the
//! behavior encoded in each service spec.
//!
//! This is the verification the real study could not perform — the paper
//! had no ground truth for the services it measured; our simulators *are*
//! the ground truth, so any disagreement between the encoded grid and the
//! recovered grid is a pipeline bug.

use diffaudit::diff::ObservedGrid;
use diffaudit::pipeline::{ClassificationMode, Pipeline};
use diffaudit_services::{generate_dataset, service_by_slug, DatasetOptions};

fn dataset(services: &[&str], seed: u64, scale: f64) -> diffaudit_services::GeneratedDataset {
    generate_dataset(&DatasetOptions {
        seed,
        volume_scale: scale,
        mobile_pinned_fraction: 0.12,
        services: services.iter().map(|s| s.to_string()).collect(),
    })
}

/// With oracle labels, every service's grid activity must match its spec
/// exactly — no missing cells, no spurious cells.
#[test]
fn oracle_grid_recovery_all_six_services() {
    let dataset = dataset(&[], 424_242, 0.06);
    let outcome =
        Pipeline::new(ClassificationMode::Oracle(dataset.key_truth.clone())).run(&dataset);
    assert_eq!(outcome.services.len(), 6);
    for service in &outcome.services {
        let spec = service_by_slug(&service.slug).expect("catalog service");
        let grid = ObservedGrid::build(service);
        let (missing, spurious) = grid.compare_activity(&spec);
        assert!(
            missing.is_empty(),
            "{}: pipeline missed encoded flows: {missing:?}",
            service.name
        );
        assert!(
            spurious.is_empty(),
            "{}: pipeline invented flows: {spurious:?}",
            service.name
        );
    }
}

/// Grid recovery must hold across seeds (not a lucky RNG draw).
#[test]
fn oracle_grid_recovery_is_seed_robust() {
    for seed in [1, 99, 31_337] {
        let dataset = dataset(&["minecraft"], seed, 0.05);
        let outcome =
            Pipeline::new(ClassificationMode::Oracle(dataset.key_truth.clone())).run(&dataset);
        let spec = service_by_slug("minecraft").unwrap();
        let grid = ObservedGrid::build(&outcome.services[0]);
        let (missing, spurious) = grid.compare_activity(&spec);
        assert!(
            missing.is_empty() && spurious.is_empty(),
            "seed {seed}: missing {missing:?}, spurious {spurious:?}"
        );
    }
}

/// With the GPT-4-simulator ensemble (the paper's configuration) the grid
/// is noisy but must still contain every encoded cell, and classifier noise
/// may add only a bounded number of spurious cells.
#[test]
fn ensemble_grid_recovery_with_bounded_noise() {
    let dataset = dataset(&["roblox"], 7, 0.05);
    let outcome = Pipeline::paper_default(7).run(&dataset);
    let spec = service_by_slug("roblox").unwrap();
    let grid = ObservedGrid::build(&outcome.services[0]);
    let (missing, spurious) = grid.compare_activity(&spec);
    assert!(
        missing.is_empty(),
        "ensemble labeling missed encoded flows: {missing:?}"
    );
    // 96 cells total (4 traces × 6 groups × 4 actions); systematic
    // misclassifications can only create spurious activity in cells whose
    // destination class is already contacted, bounding the spill.
    assert!(
        spurious.len() <= 30,
        "too much classifier spill: {} spurious cells: {spurious:?}",
        spurious.len()
    );
}

/// The same dataset decoded twice must produce identical outcomes, and the
/// same options must produce identical datasets (bit-stable reproduction).
#[test]
fn pipeline_is_deterministic() {
    let d1 = dataset(&["duolingo"], 5, 0.04);
    let d2 = dataset(&["duolingo"], 5, 0.04);
    let o1 = Pipeline::new(ClassificationMode::Oracle(d1.key_truth.clone())).run(&d1);
    let o2 = Pipeline::new(ClassificationMode::Oracle(d2.key_truth.clone())).run(&d2);
    assert_eq!(o1.unique_raw_keys, o2.unique_raw_keys);
    let g1 = ObservedGrid::build(&o1.services[0]);
    let g2 = ObservedGrid::build(&o2.services[0]);
    assert_eq!(g1.cells(), g2.cells());
}

/// Mobile pinning hides payloads but never destinations: every opaque flow
/// must surface an SNI, and pinning must not erase grid cells.
#[test]
fn pinning_degrades_gracefully() {
    let heavy_pinning = generate_dataset(&DatasetOptions {
        seed: 3,
        volume_scale: 0.05,
        mobile_pinned_fraction: 0.5,
        services: vec!["quizlet".into()],
    });
    let outcome = Pipeline::new(ClassificationMode::Oracle(heavy_pinning.key_truth.clone()))
        .run(&heavy_pinning);
    let service = &outcome.services[0];
    let opaque_total: usize = service.units.iter().map(|u| u.opaque_snis.len()).sum();
    assert!(opaque_total > 0, "50% pinning must produce opaque flows");
    // The web platform is unaffected, so category-level activity holds.
    let spec = service_by_slug("quizlet").unwrap();
    let grid = ObservedGrid::build(service);
    let (missing, _) = grid.compare_activity(&spec);
    assert!(
        missing.is_empty(),
        "missing despite web coverage: {missing:?}"
    );
}
