//! Integration tests for the `diffaudit audit` exit-code contract, driving
//! the real binary on real capture directories:
//!
//! - `0` — clean run, every record processed;
//! - `1` — hard failure (unusable input, `--strict` with drops, `--max-drop`
//!   exceeded, bad usage);
//! - `2` — salvaged: the audit was produced but some records were dropped.

use diffaudit::loader::write_dataset;
use diffaudit_services::{generate_dataset, DatasetOptions};
use std::path::{Path, PathBuf};
use std::process::Command;

fn bin() -> Command {
    Command::new(env!("CARGO_BIN_EXE_diffaudit"))
}

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("diffaudit-cli-test-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

/// Write the synthetic tiktok capture to disk and return its service dir.
fn capture_dir(root: &Path) -> PathBuf {
    let dataset = generate_dataset(&DatasetOptions {
        seed: 21,
        volume_scale: 0.02,
        mobile_pinned_fraction: 0.0,
        services: vec!["tiktok".into()],
    });
    let dirs = write_dataset(&dataset, root).unwrap();
    dirs.into_iter().next().unwrap()
}

/// Flip a few spread-out bytes in one pcap so decode drops records but the
/// file header stays intact.
fn corrupt_one_pcap(service_dir: &Path) {
    let victim = std::fs::read_dir(service_dir)
        .unwrap()
        .filter_map(|e| e.ok().map(|e| e.path()))
        .find(|p| p.extension().is_some_and(|x| x == "pcap"))
        .expect("a pcap artifact to corrupt");
    let mut bytes = std::fs::read(&victim).unwrap();
    let len = bytes.len();
    assert!(len > 100, "pcap too small to corrupt meaningfully");
    for pos in [len / 3, len / 2, 2 * len / 3] {
        bytes[pos] ^= 0xFF;
    }
    std::fs::write(&victim, bytes).unwrap();
}

fn run_audit(args: &[&str]) -> (Option<i32>, String) {
    let output = bin().arg("audit").args(args).output().unwrap();
    (
        output.status.code(),
        String::from_utf8_lossy(&output.stdout).into_owned(),
    )
}

#[test]
fn clean_directory_exits_zero_with_no_degradation_section() {
    let root = temp_dir("clean");
    let dir = capture_dir(&root);
    let (code, stdout) = run_audit(&[dir.to_str().unwrap(), "--format", "json"]);
    assert_eq!(code, Some(0));
    assert!(
        !stdout.contains("\"degradation\""),
        "clean run must not emit a degradation section"
    );
    // Strict mode changes nothing on a clean run.
    let (code, _) = run_audit(&[dir.to_str().unwrap(), "--strict"]);
    assert_eq!(code, Some(0));
    let _ = std::fs::remove_dir_all(&root);
}

#[test]
fn corrupted_directory_salvages_with_exit_two() {
    let root = temp_dir("salvaged");
    let dir = capture_dir(&root);
    corrupt_one_pcap(&dir);
    let (code, stdout) = run_audit(&[dir.to_str().unwrap(), "--format", "json"]);
    assert_eq!(code, Some(2), "damaged input within policy must exit 2");
    assert!(
        stdout.contains("\"degradation\""),
        "salvaged run must export the degradation ledger"
    );
    let _ = std::fs::remove_dir_all(&root);
}

#[test]
fn strict_mode_turns_drops_into_hard_failure() {
    let root = temp_dir("strict");
    let dir = capture_dir(&root);
    corrupt_one_pcap(&dir);
    let (code, _) = run_audit(&[dir.to_str().unwrap(), "--strict"]);
    assert_eq!(code, Some(1));
    let _ = std::fs::remove_dir_all(&root);
}

#[test]
fn max_drop_bounds_the_tolerated_degradation() {
    let root = temp_dir("maxdrop");
    let dir = capture_dir(&root);
    corrupt_one_pcap(&dir);
    // Zero tolerance: any drop is a hard failure.
    let (code, _) = run_audit(&[dir.to_str().unwrap(), "--max-drop", "0"]);
    assert_eq!(code, Some(1));
    // Generous tolerance: the same damage is salvageable.
    let (code, _) = run_audit(&[dir.to_str().unwrap(), "--max-drop", "99"]);
    assert_eq!(code, Some(2));
    let _ = std::fs::remove_dir_all(&root);
}

#[test]
fn unusable_input_and_bad_usage_exit_one() {
    let root = temp_dir("hardfail");
    // A directory with no manifest is a hard failure, not a salvage.
    let empty = root.join("empty");
    std::fs::create_dir_all(&empty).unwrap();
    let (code, _) = run_audit(&[empty.to_str().unwrap()]);
    assert_eq!(code, Some(1));
    // Bad usage too.
    let (code, _) = run_audit(&["--no-such-flag"]);
    assert_eq!(code, Some(1));
    let (code, _) = run_audit(&[]);
    assert_eq!(code, Some(1));
    // And an out-of-range --max-drop.
    let (code, _) = run_audit(&["somedir", "--max-drop", "150"]);
    assert_eq!(code, Some(1));
    let _ = std::fs::remove_dir_all(&root);
}

#[test]
fn clean_output_is_byte_identical_with_and_without_salvage_flags() {
    let root = temp_dir("identical");
    let dir = capture_dir(&root);
    let (code, plain) = run_audit(&[dir.to_str().unwrap(), "--format", "json"]);
    assert_eq!(code, Some(0));
    let (code, flagged) = run_audit(&[
        dir.to_str().unwrap(),
        "--format",
        "json",
        "--max-drop",
        "50",
    ]);
    assert_eq!(code, Some(0));
    assert_eq!(
        plain, flagged,
        "salvage flags must not perturb a clean run's report"
    );
    let _ = std::fs::remove_dir_all(&root);
}
