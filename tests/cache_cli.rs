//! Integration tests for the persistent classification cache as seen from
//! the `diffaudit audit` CLI:
//!
//! - the report is byte-identical with the cache disabled, cold, and warm
//!   (the cache may only change *when* work happens, never its result);
//! - a warm run really is served from the cache (hits == keys, no misses,
//!   no inserts) — checked through the `--metrics-out` counters;
//! - a cache whose lock is held by a live process degrades to read-only
//!   without perturbing the audit;
//! - a damaged cache log salvages: the run completes, the degradation
//!   ledger carries the `cache:` drop, and the exit code is 2.

use diffaudit::loader::write_dataset;
use diffaudit_json::{parse, Json};
use diffaudit_services::{generate_dataset, DatasetOptions};
use std::path::{Path, PathBuf};
use std::process::Command;

fn bin() -> Command {
    Command::new(env!("CARGO_BIN_EXE_diffaudit"))
}

fn temp_dir(tag: &str) -> PathBuf {
    let dir =
        std::env::temp_dir().join(format!("diffaudit-cache-cli-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

/// Write the synthetic tiktok capture to disk and return its service dir.
fn capture_dir(root: &Path) -> PathBuf {
    let dataset = generate_dataset(&DatasetOptions {
        seed: 21,
        volume_scale: 0.02,
        mobile_pinned_fraction: 0.0,
        services: vec!["tiktok".into()],
    });
    let dirs = write_dataset(&dataset, root).unwrap();
    dirs.into_iter().next().unwrap()
}

/// Run `diffaudit audit` with the given extra args, returning the exit
/// code, stdout, and the parsed `--metrics-out` snapshot.
fn run_audit(dir: &Path, extra: &[&str], metrics_path: &Path) -> (Option<i32>, String, Json) {
    let output = bin()
        .arg("audit")
        .arg(dir)
        .args(["--format", "json", "--metrics-out"])
        .arg(metrics_path)
        .args(extra)
        .output()
        .unwrap();
    let metrics = parse(&std::fs::read_to_string(metrics_path).unwrap()).unwrap();
    (
        output.status.code(),
        String::from_utf8_lossy(&output.stdout).into_owned(),
        metrics,
    )
}

fn counter(metrics: &Json, name: &str) -> i64 {
    metrics
        .pointer(&format!("/counters/{name}"))
        .and_then(Json::as_i64)
        .unwrap_or(0)
}

#[test]
fn stdout_is_byte_identical_disabled_cold_and_warm() {
    let root = temp_dir("identity");
    let dir = capture_dir(&root);
    let cache = root.join("cache");
    let metrics = root.join("metrics.json");
    let cache_flag = ["--cache-dir", cache.to_str().unwrap()];

    let (code, uncached, snapshot) = run_audit(&dir, &[], &metrics);
    assert_eq!(code, Some(0));
    assert_eq!(
        counter(&snapshot, "pipeline.classify.cache.hit")
            + counter(&snapshot, "pipeline.classify.cache.miss"),
        0,
        "no --cache-dir means no cache probes at all"
    );

    let (code, cold, snapshot) = run_audit(&dir, &cache_flag, &metrics);
    assert_eq!(code, Some(0));
    assert_eq!(uncached, cold, "cold cache must not change the report");
    let cold_misses = counter(&snapshot, "pipeline.classify.cache.miss");
    assert!(cold_misses > 0, "first cached run starts cold");
    assert_eq!(
        counter(&snapshot, "pipeline.classify.cache.insert"),
        cold_misses,
        "every cold miss is inserted"
    );

    let (code, warm, snapshot) = run_audit(&dir, &cache_flag, &metrics);
    assert_eq!(code, Some(0));
    assert_eq!(uncached, warm, "warm cache must not change the report");
    assert_eq!(
        counter(&snapshot, "pipeline.classify.cache.hit"),
        cold_misses,
        "warm run must hit every key the cold run inserted"
    );
    assert_eq!(counter(&snapshot, "pipeline.classify.cache.miss"), 0);
    assert_eq!(counter(&snapshot, "pipeline.classify.cache.insert"), 0);
    let _ = std::fs::remove_dir_all(&root);
}

#[test]
fn held_lock_degrades_to_read_only_without_perturbing_the_audit() {
    let root = temp_dir("lock");
    let dir = capture_dir(&root);
    let cache = root.join("cache");
    let metrics = root.join("metrics.json");
    // A lock naming this (live) test process: the CLI must treat the cache
    // as owned elsewhere and fall back to read-only.
    std::fs::create_dir_all(&cache).unwrap();
    std::fs::write(
        cache.join("cache.lock"),
        format!("{}\n", std::process::id()),
    )
    .unwrap();

    let (code, baseline, _) = run_audit(&dir, &[], &metrics);
    assert_eq!(code, Some(0));
    let (code, locked, snapshot) =
        run_audit(&dir, &["--cache-dir", cache.to_str().unwrap()], &metrics);
    assert_eq!(code, Some(0));
    assert_eq!(
        baseline, locked,
        "read-only cache must not change the report"
    );
    assert!(counter(&snapshot, "pipeline.classify.cache.miss") > 0);
    assert_eq!(
        counter(&snapshot, "pipeline.classify.cache.insert"),
        0,
        "a contended cache must refuse inserts"
    );
    assert!(
        !cache.join("classify.log").exists(),
        "read-only opener must not create the log"
    );
    let _ = std::fs::remove_dir_all(&root);
}

#[test]
fn damaged_cache_log_salvages_with_exit_two() {
    let root = temp_dir("damaged");
    let dir = capture_dir(&root);
    let cache = root.join("cache");
    let metrics = root.join("metrics.json");
    let cache_flag = ["--cache-dir", cache.to_str().unwrap()];

    let (code, clean, _) = run_audit(&dir, &cache_flag, &metrics);
    assert_eq!(code, Some(0));

    // Flip one byte inside the first record's payload: a checksum failure
    // that salvage skips while keeping the rest of the log.
    let log = cache.join("classify.log");
    let mut bytes = std::fs::read(&log).unwrap();
    let flip_at = 8 + 4 + 8 + 1 + 2; // header + len + fingerprint + label + 2
    bytes[flip_at] ^= 0xFF;
    std::fs::write(&log, bytes).unwrap();

    let (code, stdout, snapshot) = run_audit(&dir, &cache_flag, &metrics);
    assert_eq!(code, Some(2), "cache damage within policy must exit 2");
    assert!(
        stdout.contains("\"degradation\""),
        "salvaged run must export the degradation ledger"
    );
    assert!(
        stdout.contains("cache:"),
        "the ledger must carry the cache: drop reason"
    );
    assert_eq!(counter(&snapshot, "salvage.cache.dropped"), 1);
    // The skipped record misses and is re-inserted; everything else hits.
    assert_eq!(counter(&snapshot, "pipeline.classify.cache.miss"), 1);
    assert_eq!(counter(&snapshot, "pipeline.classify.cache.insert"), 1);

    // The report body itself is unchanged apart from the degradation
    // section the salvaged run appends.
    let clean_doc = parse(&clean).unwrap();
    let damaged_doc = parse(&stdout).unwrap();
    assert_eq!(
        clean_doc.pointer("/services"),
        damaged_doc.pointer("/services"),
        "cache damage must not change audit results"
    );

    // Under --strict the same damage is a hard failure.
    let (code, _, _) = run_audit(
        &dir,
        &["--cache-dir", cache.to_str().unwrap(), "--strict"],
        &metrics,
    );
    assert_eq!(code, Some(1));
    let _ = std::fs::remove_dir_all(&root);
}
