//! Quickstart: audit one simulated service end to end.
//!
//! ```sh
//! cargo run -p diffaudit --example quickstart
//! ```
//!
//! Generates a small synthetic capture of the TikTok simulator (HAR for
//! web, pcap + TLS key log for mobile), runs the full DiffAudit pipeline
//! (decode → extract → classify → destination analysis → data flows), and
//! prints the Table 4-style differential grid plus the audit findings.

use diffaudit::audit::audit_service;
use diffaudit::diff::ObservedGrid;
use diffaudit::pipeline::{ClassificationMode, Pipeline};
use diffaudit::report::{render_findings, render_table4};
use diffaudit_services::{generate_dataset, service_by_slug, DatasetOptions};

fn main() {
    // 1. Generate a capture campaign for one service at 5% of paper volume.
    let options = DatasetOptions {
        seed: 2023,
        volume_scale: 0.05,
        mobile_pinned_fraction: 0.12,
        services: vec!["tiktok".into()],
    };
    println!("Generating synthetic capture (TikTok simulator)...");
    let dataset = generate_dataset(&options);
    let capture = &dataset.services[0];
    println!(
        "  {} units ({} exchanges total)\n",
        capture.artifacts.len(),
        capture
            .artifacts
            .iter()
            .map(|a| a.exchange_count)
            .sum::<usize>()
    );

    // 2. Run the pipeline. Oracle mode uses the generator's ground-truth
    //    labels (swap in `Pipeline::paper_default(seed)` for the GPT-4
    //    simulator ensemble).
    let pipeline = Pipeline::new(ClassificationMode::Oracle(dataset.key_truth.clone()));
    let outcome = pipeline.run(&dataset);
    let service = &outcome.services[0];
    println!(
        "Pipeline: {} unique raw data types extracted, {} destinations contacted\n",
        outcome.unique_raw_keys,
        service.all_fqdns().len()
    );

    // 3. Differential grid (Table 4) and audit findings.
    let grid = ObservedGrid::build(service);
    println!("{}", render_table4(service, &grid));
    let spec = service_by_slug("tiktok").expect("catalog service");
    println!("Audit findings:");
    print!("{}", render_findings(&audit_service(service, &spec)));
}
