//! Data-type classification showcase.
//!
//! ```sh
//! cargo run -p diffaudit --example classify_datatypes [key ...]
//! ```
//!
//! Classifies raw payload keys (command-line arguments, or a built-in demo
//! set) with every classifier in the stack — the GPT-4 simulator at several
//! temperatures, the majority ensemble, and the four baselines — and prints
//! the raw Chat-Completions-style model response for the first batch.

use diffaudit_classifier::fewshot::FewShot;
use diffaudit_classifier::fuzzy::{FuzzyBert, FuzzyTfIdf};
use diffaudit_classifier::llm::{ChatMessage, LlmClassifier, LlmOptions, SYSTEM_PROMPT};
use diffaudit_classifier::zeroshot::ZeroShot;
use diffaudit_classifier::{Classifier, ConfidenceAggregation, MajorityEnsemble};

const DEMO_KEYS: [&str; 10] = [
    "email_address",
    "advertisingId",
    "os_ver",
    "rtt",
    "user_dob",
    "IsOptOutEmailShown",
    "pers_ad_show_third_part_measurement",
    "gamertag",
    "X-Forwarded-Lang",
    "zq7_blk",
];

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let keys: Vec<&str> = if args.is_empty() {
        DEMO_KEYS.to_vec()
    } else {
        args.iter().map(String::as_str).collect()
    };

    // The raw Chat-Completions-shaped interaction, exactly as the paper
    // drives GPT-4 (Appendix C).
    let model = LlmClassifier::new(LlmOptions {
        temperature: 0.0,
        seed: 7,
    });
    let response = model.chat_completion(&[
        ChatMessage {
            role: "system",
            content: SYSTEM_PROMPT.to_string(),
        },
        ChatMessage {
            role: "user",
            content: keys.join("\n"),
        },
    ]);
    println!("=== GPT-4 simulator raw response (temperature 0) ===");
    print!("{response}");

    // Compare every classifier on each key.
    println!("\n=== classifier comparison ===");
    let mut classifiers: Vec<Box<dyn Classifier>> = vec![
        Box::new(MajorityEnsemble::new(7, ConfidenceAggregation::Average)),
        Box::new(FuzzyTfIdf::new()),
        Box::new(FuzzyBert::new()),
        Box::new(FewShot::new()),
        Box::new(ZeroShot::new()),
    ];
    for key in &keys {
        println!("\n{key:?}:");
        for clf in classifiers.iter_mut() {
            match clf.classify(key) {
                Some((category, confidence)) => println!(
                    "  {:<14} {} ({confidence:.2})",
                    clf.name(),
                    category.label()
                ),
                None => println!("  {:<14} (abstained)", clf.name()),
            }
        }
    }
}
