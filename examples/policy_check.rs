//! Privacy-policy consistency check for one service.
//!
//! ```sh
//! cargo run -p diffaudit --example policy_check [slug]
//! ```
//!
//! Compares the observed data flows of a service (default: duolingo)
//! against its structured privacy policy, trace category by trace category,
//! reproducing the paper's §4.1.2 policy analysis: Duolingo's policy says
//! third-party behavioral tracking is disabled for users under 16, yet the
//! child and adolescent traces carry flows to third-party ATS.

use diffaudit::pipeline::{ClassificationMode, Pipeline};
use diffaudit_services::{generate_dataset, service_by_slug, DatasetOptions, TraceCategory};

fn main() {
    let slug = std::env::args().nth(1).unwrap_or_else(|| "duolingo".into());
    let spec = match service_by_slug(&slug) {
        Some(s) => s,
        None => {
            eprintln!("unknown service {slug:?}; try duolingo, minecraft, quizlet, roblox, tiktok, youtube");
            std::process::exit(2);
        }
    };
    println!("Policy check: {} ({})", spec.name, spec.policy.url);
    println!("\nPolicy statements on record:");
    for statement in &spec.policy.statements {
        println!("  \"{statement}\"");
    }

    let dataset = generate_dataset(&DatasetOptions {
        seed: 2023,
        volume_scale: 0.05,
        mobile_pinned_fraction: 0.12,
        services: vec![slug.clone()],
    });
    let outcome =
        Pipeline::new(ClassificationMode::Oracle(dataset.key_truth.clone())).run(&dataset);
    let service = &outcome.services[0];

    for trace in TraceCategory::ALL {
        println!("\n{} trace:", trace);
        let flows = service.flows(trace);
        let mut disclosed = 0;
        let mut undisclosed = Vec::new();
        for (group, class) in flows.group_class_set() {
            if spec.policy.discloses(group, class, trace) {
                disclosed += 1;
            } else {
                undisclosed.push((group, class));
            }
        }
        println!("  {disclosed} observed flow type(s) disclosed by the policy");
        if undisclosed.is_empty() {
            println!("  no undisclosed flows — policy is consistent with behavior");
        } else {
            println!("  {} UNDISCLOSED flow type(s):", undisclosed.len());
            for (group, class) in undisclosed {
                println!("    {} → {}", group.label(), class.label());
            }
        }
    }
}
