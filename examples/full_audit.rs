//! Full audit: all six general-audience services, every report.
//!
//! ```sh
//! cargo run --release -p diffaudit --example full_audit [scale]
//! ```
//!
//! The optional positional argument scales traffic volume (default 0.1;
//! pass 1.0 for paper-scale — use `--release`).

use diffaudit::audit::audit_service;
use diffaudit::diff::{age_similarity, ObservedGrid};
use diffaudit::pipeline::{ClassificationMode, Pipeline};
use diffaudit::report;
use diffaudit::stats::summarize;
use diffaudit_services::{generate_dataset, service_by_slug, DatasetOptions, TraceCategory};

fn main() {
    let scale: f64 = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(0.1);
    println!("Generating all six services at scale {scale}...");
    let dataset = generate_dataset(&DatasetOptions {
        seed: 2023,
        volume_scale: scale,
        mobile_pinned_fraction: 0.12,
        services: Vec::new(),
    });
    let pipeline = Pipeline::new(ClassificationMode::Oracle(dataset.key_truth.clone()));
    let outcome = pipeline.run(&dataset);

    println!("\n{}", report::render_table1(&summarize(&outcome)));
    for service in &outcome.services {
        let grid = ObservedGrid::build(service);
        println!("{}", report::render_table4(service, &grid));
        println!(
            "  age similarity (Jaccard over Table 4 cells): child/adult {:.2}, adolescent/adult {:.2}\n",
            age_similarity(service, TraceCategory::Child, TraceCategory::Adult),
            age_similarity(service, TraceCategory::Adolescent, TraceCategory::Adult),
        );
    }
    println!("{}", report::render_fig3(&outcome));
    println!("{}", report::render_fig4(&outcome));
    println!("{}", report::render_fig5(&outcome, 10));

    println!("Audit findings (all services):");
    let mut all_findings = Vec::new();
    for service in &outcome.services {
        let spec = service_by_slug(&service.slug).expect("catalog service");
        all_findings.extend(audit_service(service, &spec));
    }
    print!("{}", report::render_findings(&all_findings));
    println!("\n{} findings total.", all_findings.len());
}
