//! Capture-substrate walkthrough: the PCAPdroid → Wireshark path in code.
//!
//! ```sh
//! cargo run -p diffaudit --example capture_decode
//! ```
//!
//! Builds a handful of HTTPS exchanges, captures them into genuine pcap
//! bytes plus an `SSLKEYLOGFILE`-format key log (with one certificate-pinned
//! destination whose keys are withheld), writes both artifacts to a temp
//! directory, reads them back, and decodes: the pinned flow stays opaque but
//! still reveals its destination via the TLS SNI — exactly the behavior the
//! paper describes for its mobile captures.

use diffaudit_domains::Url;
use diffaudit_nettrace::{
    decode_pcap, CaptureOptions, CaptureSession, Exchange, HttpRequest, HttpResponse, KeyLog,
};

fn exchange(url: &str, body: &str) -> Exchange {
    Exchange {
        timestamp_ms: 1_696_500_000_000,
        request: HttpRequest::post(
            Url::parse(url).expect("valid URL"),
            "application/json",
            body.as_bytes().to_vec(),
        ),
        response: HttpResponse::ok(),
    }
}

fn main() -> std::io::Result<()> {
    // The pinned fraction is applied per destination host: with 0.35, some
    // hosts' TLS keys never reach the key log.
    let mut session = CaptureSession::new(CaptureOptions {
        seed: 12,
        pinned_fraction: 0.35,
        ..Default::default()
    });
    let exchanges = [
        exchange(
            "https://api.roblox.com/v1/join",
            r#"{"user_id":"u-1","avatar":"x9"}"#,
        ),
        exchange(
            "https://metrics.roblox.com/v2/e",
            r#"{"event":"spawn","session":"s-2"}"#,
        ),
        exchange(
            "https://t.appsflyer.com/collect",
            r#"{"idfa":"ab-12","os":"android 13"}"#,
        ),
        exchange(
            "https://stats.g.doubleclick.net/c",
            r#"{"aid":"zz-7","lang":"en-US"}"#,
        ),
    ];
    for ex in &exchanges {
        session.capture(ex);
    }
    println!(
        "captured {} flows / {} packets ({} certificate-pinned)",
        session.flow_count(),
        session.packet_count(),
        session.pinned_flow_count()
    );
    let (pcap, keylog_text) = session.finish();

    // Write the artifacts like PCAPdroid does, then read them back.
    let dir = std::env::temp_dir().join("diffaudit-capture-demo");
    std::fs::create_dir_all(&dir)?;
    let pcap_path = dir.join("trace.pcap");
    let keylog_path = dir.join("sslkeylog.txt");
    std::fs::write(&pcap_path, &pcap)?;
    std::fs::write(&keylog_path, &keylog_text)?;
    println!("wrote {} ({} bytes)", pcap_path.display(), pcap.len());
    println!(
        "wrote {} ({} sessions)",
        keylog_path.display(),
        KeyLog::parse(&keylog_text).len()
    );

    let pcap_back = std::fs::read(&pcap_path)?;
    let keylog_back = KeyLog::parse(&std::fs::read_to_string(&keylog_path)?);
    let decoded = decode_pcap(&pcap_back, &keylog_back).expect("valid capture");

    println!("\ndecoded {} flows:", decoded.flow_count);
    for ex in &decoded.exchanges {
        println!(
            "  [clear ] {} {} — {} payload bytes",
            ex.request.method,
            ex.request.url,
            ex.request.body.len()
        );
    }
    for opaque in &decoded.opaque {
        println!(
            "  [opaque] SNI {} — {} segments, payload undecryptable (pinned)",
            opaque.sni.as_deref().unwrap_or("<unknown>"),
            opaque.segment_count
        );
    }
    Ok(())
}
